"""Scale sweep: how normalized interactivity depends on instance size.

The paper reports greedy within ~10% of the super-optimal lower bound at
1796 nodes; this reproduction measures ~1.2-1.3 at laptop scales. The
sweep separates two effects:

- with the server count *fixed* (the paper's regime), DGA's normalized
  interactivity drifts down with scale (~1.22 at 200 nodes to ~1.19 at
  1600) while NSA's stays high — partial convergence toward the paper's
  level, the residual being the synthetic matrix's structure rather
  than scale;
- with the server count *proportional* to nodes, every algorithm's
  normalized level is scale-stable.

In both regimes the **gap between algorithms** — the paper's actual
claims — is stable or widening, which is what the benchmark assertions
pin.

Runs execute as :mod:`repro.parallel` trials (one per random
placement), so a worker pool overlaps them; the per-instance lower
bound is hoisted into the instance cache — computed once per placement,
shared by every algorithm scored on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import run_algorithm
from repro.datasets import synthesize_meridian_like
from repro.net.latency import LatencyMatrix
from repro.parallel import TrialPool, instance_cache
from repro.parallel.pool import run_trials, successful_values
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class ScalePoint:
    """Aggregated results at one instance size."""

    n_nodes: int
    n_servers: int
    #: Per-algorithm mean normalized interactivity.
    normalized: Dict[str, float]
    #: Mean (over runs) of D_NSA / D_DGA — the algorithm gap, which
    #: should be roughly scale-invariant.
    nsa_over_dga: float


@dataclass(frozen=True)
class ScaleTrial:
    """One random placement at one instance size."""

    n_servers: int
    algorithms: Tuple[str, ...]
    seed: Optional[int]


def run_scale_trial(
    matrix: LatencyMatrix, trial: ScaleTrial
) -> Dict[str, float]:
    """Worker-side scale trial: raw D per algorithm, plus the bound.

    The lower bound rides in through the instance cache so it is
    derived once per instance, not once per algorithm.
    """
    cached = instance_cache().instance(
        matrix, "random", trial.n_servers, trial.seed
    )
    ds = {
        name: float(run_algorithm(name, cached.problem, seed=trial.seed).d)
        for name in trial.algorithms
    }
    ds["__lower_bound__"] = cached.lower_bound
    return ds


def scale_sweep(
    *,
    sizes: Sequence[int] = (100, 200, 400, 800),
    server_fraction: float = 0.2,
    algorithms: Sequence[str] = ("nearest-server", "greedy", "distributed-greedy"),
    n_runs: int = 5,
    seed: int = 0,
    pool: Optional[TrialPool] = None,
) -> List[ScalePoint]:
    """Sweep instance sizes at a fixed server-to-node ratio.

    Each size gets a fresh Meridian-like matrix (same generator
    parameters — the structure is size-invariant) and ``n_runs`` random
    placements of ``server_fraction * n`` servers.
    """
    if not 0.0 < server_fraction < 1.0:
        raise ValueError("server_fraction must be in (0, 1)")
    points: List[ScalePoint] = []
    for n in sizes:
        matrix = synthesize_meridian_like(n, seed=derive_seed(seed, 41, n))
        k = max(2, int(round(server_fraction * n)))
        trials = [
            ScaleTrial(
                n_servers=k,
                algorithms=tuple(algorithms),
                seed=derive_seed(seed, 42, n, run),
            )
            for run in range(n_runs)
        ]
        outcomes = run_trials(run_scale_trial, trials, matrix=matrix, pool=pool)
        runs = successful_values(outcomes, context=f"scale sweep at n={n}")
        sums: Dict[str, List[float]] = {a: [] for a in algorithms}
        gaps: List[float] = []
        for ds in runs:
            lb = ds["__lower_bound__"]
            for name in algorithms:
                sums[name].append(ds[name] / lb)
            if "nearest-server" in ds and "distributed-greedy" in ds:
                gaps.append(ds["nearest-server"] / ds["distributed-greedy"])
        points.append(
            ScalePoint(
                n_nodes=n,
                n_servers=k,
                normalized={a: float(np.mean(sums[a])) for a in algorithms},
                nsa_over_dga=float(np.mean(gaps)) if gaps else float("nan"),
            )
        )
    return points


def render_scale_sweep(points: Sequence[ScalePoint]) -> str:
    """ASCII table of a scale sweep."""
    from repro.experiments.reporting import format_table

    algorithms = list(points[0].normalized)
    headers = ["nodes", "servers", *algorithms, "NSA/DGA gap"]
    rows = [
        [
            p.n_nodes,
            p.n_servers,
            *[p.normalized[a] for a in algorithms],
            p.nsa_over_dga,
        ]
        for p in points
    ]
    return "Scale sweep: normalized interactivity vs instance size\n" + format_table(
        headers, rows
    )
