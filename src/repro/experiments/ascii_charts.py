"""Plot-free charts: ASCII line/bar rendering for figure series.

The harness deliberately has no plotting dependency; these renderers
give the CLI report a visual summary of each figure that survives
copy-paste into terminals, logs and markdown code blocks.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline of a numeric series."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    low, high = min(vals), max(vals)
    span = high - low
    if span <= 0:
        return _BLOCKS[4] * len(vals)
    out = []
    for v in vals:
        idx = int(round((v - low) / span * (len(_BLOCKS) - 2))) + 1
        out.append(_BLOCKS[idx])
    return "".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return ""
    vals = [float(v) for v in values]
    top = max(vals)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, vals):
        bar_len = 0 if top <= 0 else int(round(value / top * width))
        bar = "█" * bar_len
        lines.append(f"{str(label):<{label_width}}  {bar} {value:.3f}{unit}")
    return "\n".join(lines)


def multi_series_chart(
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    *,
    height: int = 10,
    markers: Optional[str] = None,
) -> str:
    """A character-grid line chart of several series over shared x values.

    Each series gets one marker character; collisions show the later
    series' marker. A y-axis of min/max annotations frames the grid.
    """
    if not series:
        return ""
    names = list(series)
    n_points = len(x_values)
    for name in names:
        if len(series[name]) != n_points:
            raise ValueError(f"series {name!r} length != len(x_values)")
    if markers is None:
        markers = "ox+*#@%&"
    all_vals = [float(v) for vals in series.values() for v in vals]
    low, high = min(all_vals), max(all_vals)
    span = high - low or 1.0
    grid = [[" "] * n_points for _ in range(height)]
    for idx, name in enumerate(names):
        marker = markers[idx % len(markers)]
        for col, value in enumerate(series[name]):
            row = int(round((float(value) - low) / span * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            prefix = f"{high:8.3f} |"
        elif i == height - 1:
            prefix = f"{low:8.3f} |"
        else:
            prefix = " " * 8 + " |"
        lines.append(prefix + " " + "  ".join(row))
    # Repeat columns with two spaces of separation for readability, so
    # the x-axis needs matching spacing.
    axis = " " * 10 + "  ".join("-" for _ in range(n_points))
    lines.append(axis)
    x_line = " " * 10 + "  ".join(str(x)[0] for x in x_values)
    lines.append(x_line + f"   (x: {x_values[0]} .. {x_values[-1]})")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(names)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def render_series_summary(
    title: str, x_values: Sequence[object], series: Dict[str, Sequence[float]]
) -> str:
    """Title + per-series sparkline block (the compact figure view)."""
    width = max(len(name) for name in series)
    lines = [title]
    for name, values in series.items():
        vals = [float(v) for v in values]
        lines.append(
            f"  {name:<{width}}  {sparkline(vals)}  "
            f"[{min(vals):.3f} .. {max(vals):.3f}]"
        )
    return "\n".join(lines)
