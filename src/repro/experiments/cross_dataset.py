"""Cross-dataset comparison: the paper's "similar results on MIT" remark.

§V states "The simulations using the MIT data set show similar results
and are not presented here due to space limitations." This module makes
that claim checkable: run the same sweep on Meridian-like and
MIT-King-like matrices and quantify similarity two ways —

- the **Spearman rank correlation** of the per-(server-count, algorithm)
  normalized-interactivity values across data sets (do the data sets
  order the configurations the same way?), and
- the per-algorithm **mean-ratio** between data sets (are the levels in
  the same ballpark?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import spearman_rank_correlation
from repro.datasets import synthesize_meridian_like, synthesize_mit_like
from repro.experiments.runner import (
    aggregate_sweep,
    placement_trials,
    run_placement_trial,
)
from repro.parallel import TrialPool
from repro.parallel.pool import run_trials
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class CrossDatasetResult:
    """Similarity of the evaluation across the two data sets."""

    server_counts: Tuple[int, ...]
    algorithms: Tuple[str, ...]
    #: (dataset -> algorithm -> series over server counts)
    series: Dict[str, Dict[str, Tuple[float, ...]]]
    #: Spearman correlation of the flattened (count, algorithm) grids.
    rank_correlation: float
    #: Per-algorithm mean(meridian) / mean(mit).
    level_ratios: Dict[str, float]

    def similar(self, *, min_correlation: float = 0.8, max_level_gap: float = 0.3) -> bool:
        """The operational 'similar results' check.

        Orderings strongly correlated and levels within
        ``max_level_gap`` relative difference for every algorithm.
        """
        levels_ok = all(
            abs(ratio - 1.0) <= max_level_gap
            for ratio in self.level_ratios.values()
        )
        return self.rank_correlation >= min_correlation and levels_ok


def compare_datasets(
    *,
    n_nodes: int = 200,
    server_counts: Sequence[int] = (20, 40, 60, 80),
    algorithms: Sequence[str] = (
        "nearest-server",
        "longest-first-batch",
        "greedy",
        "distributed-greedy",
    ),
    n_runs: int = 5,
    seed: int = 0,
    pool: Optional[TrialPool] = None,
) -> CrossDatasetResult:
    """Run the Fig. 7-style sweep on both data sets and compare.

    Each data set's full (server-count x run) trial grid is submitted
    as one batch, so a worker pool overlaps all of a matrix's trials.
    """
    matrices = {
        "meridian": synthesize_meridian_like(n_nodes, seed=derive_seed(seed, 51)),
        "mit": synthesize_mit_like(n_nodes, seed=derive_seed(seed, 52)),
    }
    series: Dict[str, Dict[str, List[float]]] = {
        name: {a: [] for a in algorithms} for name in matrices
    }
    for name, matrix in matrices.items():
        trials = []
        for k in server_counts:
            trials.extend(
                placement_trials(
                    "random", k, algorithms, n_runs=n_runs, seed=seed
                )
            )
        outcomes = run_trials(
            run_placement_trial, trials, matrix=matrix, pool=pool
        )
        for point in aggregate_sweep(trials, outcomes, algorithms):
            for a in algorithms:
                series[name][a].append(point.mean[a])
    flat_meridian = [
        v for a in algorithms for v in series["meridian"][a]
    ]
    flat_mit = [v for a in algorithms for v in series["mit"][a]]
    correlation = spearman_rank_correlation(flat_meridian, flat_mit)
    ratios = {
        a: float(np.mean(series["meridian"][a]) / np.mean(series["mit"][a]))
        for a in algorithms
    }
    return CrossDatasetResult(
        server_counts=tuple(server_counts),
        algorithms=tuple(algorithms),
        series={
            name: {a: tuple(vals) for a, vals in per.items()}
            for name, per in series.items()
        },
        rank_correlation=correlation,
        level_ratios=ratios,
    )


def render_cross_dataset(result: CrossDatasetResult) -> str:
    """ASCII rendering of the comparison."""
    from repro.experiments.reporting import format_table

    rows = []
    for a in result.algorithms:
        rows.append(
            [
                a,
                float(np.mean(result.series["meridian"][a])),
                float(np.mean(result.series["mit"][a])),
                result.level_ratios[a],
            ]
        )
    table = format_table(
        ["algorithm", "meridian (mean norm)", "mit (mean norm)", "ratio"], rows
    )
    return (
        "Cross-dataset comparison (the paper's 'similar results' remark)\n"
        f"rank correlation of configurations: {result.rank_correlation:.3f}\n"
        f"{table}"
    )
