"""Saving and loading experiment results as JSON.

Figure series at paper scale take hours to produce; persisting them lets
reporting, plotting and claim-checking run without recomputation. The
format is plain JSON with a ``kind`` tag and a schema version so files
survive package upgrades (unknown versions are rejected loudly rather
than misparsed).

When a run manifest is ambient (the CLI installs one around every
command — see :mod:`repro.obs.manifest`), :func:`save_result` embeds its
deterministic core under a ``"manifest"`` key, so a results file found
months later records what produced it. Files written without a manifest
(or by older releases) load unchanged; use :func:`load_manifest` to read
the provenance back without deserializing the whole result.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import DatasetError
from repro.experiments.figures import (
    Fig7Series,
    Fig8Series,
    Fig9Trace,
    Fig10Series,
)
from repro.experiments.runner import SweepPoint

PathLike = Union[str, os.PathLike]

#: Bump when the on-disk schema changes incompatibly.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchTable:
    """A generic benchmark results table (kind ``"bench-table"``).

    Benchmarks that are not one of the paper's figures (e.g.
    ``benchmarks/bench_incremental.py``'s old-vs-new sweep) persist
    their measurements through this shape so they share the standard
    JSON envelope (schema version, atomic writes, loud version checks).
    Cells must be JSON scalars.
    """

    #: Benchmark identifier, e.g. ``"bench_incremental"``.
    name: str
    #: Column headers, one per cell of each row.
    columns: Tuple[str, ...]
    #: Measurement rows; ``rows[i][j]`` belongs to ``columns[j]``.
    rows: Tuple[Tuple[Any, ...], ...]
    #: Free-form context (machine, sweep parameters, ...).
    meta: Dict[str, Any] = field(default_factory=dict)

    def column(self, name: str) -> Tuple[Any, ...]:
        """All values of one column, in row order."""
        j = self.columns.index(name)
        return tuple(row[j] for row in self.rows)


FigureResult = Union[
    Fig7Series, Fig8Series, List[Fig9Trace], Fig10Series, BenchTable
]


def _point_to_dict(point: SweepPoint) -> Dict[str, Any]:
    return {
        "x": point.x,
        "mean": dict(point.mean),
        "std": dict(point.std),
        "n_runs": point.n_runs,
    }


def _point_from_dict(data: Dict[str, Any]) -> SweepPoint:
    return SweepPoint(
        x=int(data["x"]),
        mean={k: float(v) for k, v in data["mean"].items()},
        std={k: float(v) for k, v in data["std"].items()},
        n_runs=int(data["n_runs"]),
    )


def to_jsonable(result: FigureResult) -> Dict[str, Any]:
    """Convert a figure result into a JSON-serializable dict."""
    if isinstance(result, Fig7Series):
        body = {
            "kind": "fig7",
            "placement": result.placement,
            "points": [_point_to_dict(p) for p in result.points],
        }
    elif isinstance(result, Fig8Series):
        body = {
            "kind": "fig8",
            "n_servers": result.n_servers,
            "samples": {k: list(v) for k, v in result.samples.items()},
        }
    elif isinstance(result, Fig10Series):
        body = {
            "kind": "fig10",
            "placement": result.placement,
            "n_servers": result.n_servers,
            "points": [_point_to_dict(p) for p in result.points],
        }
    elif isinstance(result, BenchTable):
        body = {
            "kind": "bench-table",
            "name": result.name,
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
            "meta": dict(result.meta),
        }
    elif isinstance(result, list) and all(
        isinstance(t, Fig9Trace) for t in result
    ):
        body = {
            "kind": "fig9",
            "traces": [
                {
                    "placement": t.placement,
                    "n_servers": t.n_servers,
                    "normalized_trace": list(t.normalized_trace),
                    "converged": t.converged,
                }
                for t in result
            ],
        }
    else:
        raise TypeError(f"unsupported result type: {type(result)!r}")
    body["schema_version"] = SCHEMA_VERSION
    return body


def from_jsonable(data: Dict[str, Any]) -> FigureResult:
    """Reconstruct a figure result from its JSON form."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise DatasetError(
            f"unsupported result schema version {version!r} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    kind = data.get("kind")
    if kind == "fig7":
        return Fig7Series(
            placement=data["placement"],
            points=tuple(_point_from_dict(p) for p in data["points"]),
        )
    if kind == "fig8":
        return Fig8Series(
            n_servers=int(data["n_servers"]),
            samples={
                k: tuple(float(x) for x in v)
                for k, v in data["samples"].items()
            },
        )
    if kind == "fig9":
        return [
            Fig9Trace(
                placement=t["placement"],
                n_servers=int(t["n_servers"]),
                normalized_trace=tuple(float(x) for x in t["normalized_trace"]),
                converged=bool(t["converged"]),
            )
            for t in data["traces"]
        ]
    if kind == "bench-table":
        return BenchTable(
            name=data["name"],
            columns=tuple(data["columns"]),
            rows=tuple(tuple(row) for row in data["rows"]),
            meta=dict(data.get("meta", {})),
        )
    if kind == "fig10":
        return Fig10Series(
            placement=data["placement"],
            n_servers=int(data["n_servers"]),
            points=tuple(_point_from_dict(p) for p in data["points"]),
        )
    raise DatasetError(f"unknown result kind {kind!r}")


#: Per-process monotonic counter for temp-file uniqueness (two threads
#: of one process writing the same target get distinct temp names too).
_TMP_COUNTER = itertools.count()


def atomic_write_json(
    path: PathLike,
    payload: Dict[str, Any],
    *,
    indent: Optional[int] = 2,
    sort_keys: bool = True,
) -> None:
    """Write ``payload`` to ``path`` as JSON via a fsync'd temp + rename.

    The JSON is written to a temporary sibling and moved into place
    with :func:`os.replace`, so a crash or interrupt mid-write can
    never leave a truncated file at ``path`` — the previous contents
    (or the absence of the file) survive instead.

    The temporary name embeds the writer's PID and a per-process
    counter, so concurrent writers targeting the same path (parallel
    sweeps persisting into a shared results directory) can never
    collide on the staging file — last rename wins, and every rename
    installs a complete, valid document. Shared by experiment results
    and :mod:`repro.resilience.checkpoint` snapshots.
    """
    tmp_path = f"{os.fspath(path)}.{os.getpid()}-{next(_TMP_COUNTER)}.tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def save_result(path: PathLike, result: FigureResult) -> None:
    """Write a figure result to ``path`` as JSON, atomically.

    Results take hours to produce at paper scale; silently corrupting
    one on an unlucky Ctrl-C is the one failure mode persistence exists
    to prevent — see :func:`atomic_write_json` for the crash-safety
    contract.
    """
    from repro.obs.manifest import current_manifest

    payload = to_jsonable(result)
    manifest = current_manifest()
    if manifest is not None:
        # Deterministic core only by default (REPRO_OBS_MANIFEST=full
        # opts into the volatile section) so byte-identical re-runs of
        # the same profile+seed keep producing byte-identical files.
        payload["manifest"] = manifest.to_dict()
    atomic_write_json(path, payload)


def load_result(path: PathLike) -> FigureResult:
    """Read a figure result previously written by :func:`save_result`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise DatasetError(f"{path}: expected a JSON object at top level")
    return from_jsonable(data)


def load_manifest(path: PathLike) -> Optional[Dict[str, Any]]:
    """The ``"manifest"`` block of a saved result, or ``None``.

    Returns ``None`` both for files written before manifests existed
    and for runs executed without an ambient manifest, so callers can
    treat provenance as strictly optional.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise DatasetError(f"{path}: expected a JSON object at top level")
    manifest = data.get("manifest")
    return dict(manifest) if isinstance(manifest, dict) else None
