"""LaTeX rendering of figure series (for papers citing the reproduction).

Produces ``booktabs``-style tables from the same data objects the text
renderers consume. No LaTeX packages are required beyond ``booktabs``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.experiments.figures import Fig7Series, Fig8Series, Fig9Trace, Fig10Series


def _escape(text: str) -> str:
    """Escape the LaTeX special characters that appear in our labels."""
    replacements = {
        "&": r"\&",
        "%": r"\%",
        "#": r"\#",
        "_": r"\_",
        "{": r"\{",
        "}": r"\}",
    }
    for char, escaped in replacements.items():
        text = text.replace(char, escaped)
    return text


def latex_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    caption: str = "",
    label: str = "",
) -> str:
    """A complete ``table`` environment with booktabs rules."""
    cols = "l" + "r" * (len(headers) - 1)
    lines: List[str] = [
        r"\begin{table}[t]",
        r"\centering",
    ]
    if caption:
        lines.append(rf"\caption{{{_escape(caption)}}}")
    if label:
        lines.append(rf"\label{{{label}}}")
    lines.append(rf"\begin{{tabular}}{{{cols}}}")
    lines.append(r"\toprule")
    lines.append(" & ".join(_escape(str(h)) for h in headers) + r" \\")
    lines.append(r"\midrule")
    for row in rows:
        cells = [
            f"{value:.3f}" if isinstance(value, float) else _escape(str(value))
            for value in row
        ]
        lines.append(" & ".join(cells) + r" \\")
    lines.append(r"\bottomrule")
    lines.append(r"\end{tabular}")
    lines.append(r"\end{table}")
    return "\n".join(lines)


def latex_fig7(series: Fig7Series, **kwargs: str) -> str:
    """Fig. 7 panel as a LaTeX table."""
    algorithms = list(series.points[0].mean)
    headers = ["Servers", *algorithms]
    rows = [[p.x, *[p.mean[a] for a in algorithms]] for p in series.points]
    kwargs.setdefault(
        "caption",
        f"Normalized interactivity vs.\\ number of servers "
        f"({series.placement} placement).",
    )
    return latex_table(headers, rows, **kwargs)


def latex_fig8(
    series: Fig8Series, *, thresholds: Sequence[float] = (1.5, 2.0, 3.0), **kwargs: str
) -> str:
    """Fig. 8 tail probabilities as a LaTeX table."""
    import numpy as np

    headers = ["Algorithm", "Median", *[f"$P(>{t:g})$" for t in thresholds]]
    rows = []
    for name, values in series.samples.items():
        arr = np.asarray(values)
        rows.append(
            [
                name,
                float(np.median(arr)),
                *[f"{(arr > t).mean() * 100:.1f}\\%" for t in thresholds],
            ]
        )
    kwargs.setdefault(
        "caption",
        f"Distribution of normalized interactivity over random "
        f"placements ({series.n_servers} servers).",
    )
    return latex_table(headers, rows, **kwargs)


def latex_fig9(traces: Sequence[Fig9Trace], **kwargs: str) -> str:
    """Fig. 9 milestones as a LaTeX table."""
    headers = ["Placement", "Initial", "After 20", "Final", "Modifications"]
    rows = []
    for t in traces:
        tr = t.normalized_trace
        rows.append(
            [
                t.placement,
                tr[0],
                tr[min(20, len(tr) - 1)],
                tr[-1],
                t.n_modifications,
            ]
        )
    kwargs.setdefault(
        "caption", "Distributed-Greedy convergence over assignment modifications."
    )
    return latex_table(headers, rows, **kwargs)


def latex_fig10(series: Fig10Series, **kwargs: str) -> str:
    """Fig. 10 panel as a LaTeX table."""
    algorithms = list(series.points[0].mean)
    headers = ["Capacity", *algorithms]
    rows = [[p.x, *[p.mean[a] for a in algorithms]] for p in series.points]
    kwargs.setdefault(
        "caption",
        f"Normalized interactivity vs.\\ server capacity "
        f"({series.placement} placement, {series.n_servers} servers).",
    )
    return latex_table(headers, rows, **kwargs)
