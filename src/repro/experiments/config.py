"""Experiment profiles: parameter bundles for the evaluation harness.

The paper's evaluation uses the full Meridian matrix (1796 nodes) with
1000 random-placement runs — hours of compute. Profiles let the same
code run at laptop scale:

- ``quick``  — tiny; used by the test suite and CI (seconds).
- ``default`` — the benchmark default; preserves all qualitative shapes
  (minutes).
- ``paper``  — full-scale parameters matching §V.

Select with ``profile("default")`` or the ``REPRO_PROFILE`` environment
variable in the benchmark harness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class ExperimentProfile:
    """All knobs of the §V experimental setup."""

    name: str
    #: Synthetic dataset size (a client at every node, as in the paper).
    n_nodes: int
    #: Runs averaged for random-placement experiments (paper: 1000).
    n_random_runs: int
    #: Fig. 7 x-axis: numbers of servers (paper: 20..100 step 10).
    server_counts: Tuple[int, ...]
    #: Fig. 8/9/10 use this fixed number of servers (paper: 80).
    fixed_servers: int
    #: Fig. 8: number of random placements for the CDF (paper: 1000).
    fig8_runs: int
    #: Fig. 10 x-axis: per-server capacities (paper: 25..250).
    capacities: Tuple[int, ...]
    #: Dataset generator: ``meridian`` or ``mit``.
    dataset: str = "meridian"
    #: Master seed; every run derives its own child seed.
    seed: int = 2011

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError(f"n_nodes must be >= 2, got {self.n_nodes}")
        if self.n_random_runs < 1:
            raise ValueError("n_random_runs must be >= 1")
        if not self.server_counts:
            raise ValueError("server_counts must be non-empty")
        if max(self.server_counts) > self.n_nodes:
            raise ValueError("cannot place more servers than nodes")
        if self.fixed_servers > self.n_nodes:
            raise ValueError("fixed_servers exceeds n_nodes")
        if self.dataset not in ("meridian", "mit"):
            raise ValueError(f"unknown dataset {self.dataset!r}")

    def scaled_capacities(self) -> Tuple[int, ...]:
        """Capacities scaled from the paper's 1796-node setting.

        The paper sweeps capacity 25..250 with 1796 clients and 80
        servers — i.e. from ~1.1x to ~11x the perfectly balanced load.
        The same *relative* sweep is reproduced for the profile's client
        count so capacity pressure is comparable across scales. Every
        value is floored at the smallest feasible uniform capacity
        ``ceil(|C| / |S|)`` so the sweep always admits an assignment.
        """
        import math

        balanced = self.n_nodes / self.fixed_servers
        paper_balanced = 1796 / 80
        floor = math.ceil(self.n_nodes / self.fixed_servers)
        return tuple(
            max(floor, math.ceil(c * balanced / paper_balanced))
            for c in self.capacities
        )


_PAPER_SERVER_COUNTS = tuple(range(20, 101, 10))
_PAPER_CAPACITIES = (25, 50, 100, 150, 200, 250)

PROFILES: Dict[str, ExperimentProfile] = {
    "quick": ExperimentProfile(
        name="quick",
        n_nodes=120,
        n_random_runs=3,
        server_counts=(10, 20, 30),
        fixed_servers=20,
        fig8_runs=10,
        capacities=_PAPER_CAPACITIES,
    ),
    "bench": ExperimentProfile(
        name="bench",
        n_nodes=250,
        n_random_runs=8,
        server_counts=_PAPER_SERVER_COUNTS,
        fixed_servers=80,
        fig8_runs=40,
        capacities=_PAPER_CAPACITIES,
    ),
    "default": ExperimentProfile(
        name="default",
        n_nodes=400,
        n_random_runs=20,
        server_counts=_PAPER_SERVER_COUNTS,
        fixed_servers=80,
        fig8_runs=60,
        capacities=_PAPER_CAPACITIES,
    ),
    "paper": ExperimentProfile(
        name="paper",
        n_nodes=1796,
        n_random_runs=1000,
        server_counts=_PAPER_SERVER_COUNTS,
        fixed_servers=80,
        fig8_runs=1000,
        capacities=_PAPER_CAPACITIES,
    ),
}


def profile(name: str) -> ExperimentProfile:
    """Look up a profile by name; raises ``KeyError`` with the options."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {', '.join(sorted(PROFILES))}"
        ) from None


def profile_from_env(default: str = "quick") -> ExperimentProfile:
    """The profile named by ``$REPRO_PROFILE``, else ``default``."""
    return profile(os.environ.get("REPRO_PROFILE", default))
