"""Experiment harness: profiles, runners, per-figure generators, claims.

Typical use::

    from repro.experiments import profile, fig7, render_fig7

    series = fig7(profile("default"), "random")
    print(render_fig7(series))
"""

from repro.experiments.ablations import (
    AblationResult,
    ablation_dga_initial,
    ablation_estimated_latencies,
    ablation_greedy_cost,
    ablation_measurement_error,
    ablation_placement_strategies,
    ablation_triangle_violations,
)
from repro.experiments.claims import (
    ClaimResult,
    check_capacity_degradation,
    check_dga_fast_convergence,
    check_fig8_tail,
    check_greedy_beats_simple,
    check_greedy_near_optimal,
    check_nearest_server_worst,
    run_all_claims,
    run_claims_for_profile,
)
from repro.experiments.config import (
    PROFILES,
    ExperimentProfile,
    profile,
    profile_from_env,
)
from repro.experiments.figures import (
    Fig7Series,
    Fig8Series,
    Fig9Trace,
    Fig10Series,
    dataset_for,
    fig7,
    fig8,
    fig9,
    fig10,
)
from repro.experiments.cross_dataset import (
    CrossDatasetResult,
    compare_datasets,
    render_cross_dataset,
)
from repro.experiments.delta_sweep import (
    DeltaSweepPoint,
    delta_sweep,
    render_delta_sweep,
)
from repro.experiments.orchestrator import EvaluationBundle, run_full_evaluation
from repro.experiments.persistence import (
    from_jsonable,
    load_manifest,
    load_result,
    save_result,
    to_jsonable,
)
from repro.experiments.reporting import (
    format_table,
    render_claims,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
)
from repro.experiments.runner import (
    PLACEMENT_NAMES,
    PLACEMENTS,
    AlgorithmScore,
    InstanceResult,
    PlacementTrial,
    SweepPoint,
    aggregate_sweep,
    evaluate_instance,
    placement_trials,
    run_placement_sweep,
    run_placement_trial,
)

__all__ = [
    "AblationResult",
    "ablation_dga_initial",
    "ablation_greedy_cost",
    "ablation_triangle_violations",
    "ablation_estimated_latencies",
    "ablation_measurement_error",
    "ablation_placement_strategies",
    "ExperimentProfile",
    "PROFILES",
    "profile",
    "profile_from_env",
    "AlgorithmScore",
    "InstanceResult",
    "SweepPoint",
    "PlacementTrial",
    "evaluate_instance",
    "placement_trials",
    "run_placement_trial",
    "run_placement_sweep",
    "aggregate_sweep",
    "PLACEMENTS",
    "PLACEMENT_NAMES",
    "dataset_for",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "Fig7Series",
    "Fig8Series",
    "Fig9Trace",
    "Fig10Series",
    "ClaimResult",
    "run_all_claims",
    "run_claims_for_profile",
    "check_greedy_beats_simple",
    "check_greedy_near_optimal",
    "check_nearest_server_worst",
    "check_fig8_tail",
    "check_dga_fast_convergence",
    "check_capacity_degradation",
    "EvaluationBundle",
    "run_full_evaluation",
    "delta_sweep",
    "render_delta_sweep",
    "DeltaSweepPoint",
    "compare_datasets",
    "render_cross_dataset",
    "CrossDatasetResult",
    "save_result",
    "load_result",
    "load_manifest",
    "to_jsonable",
    "from_jsonable",
    "format_table",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig10",
    "render_claims",
]
