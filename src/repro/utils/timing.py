"""Wall-clock timing helper used by the experiment harness."""

from __future__ import annotations

import time
from typing import Optional


class Stopwatch:
    """A tiny context-manager stopwatch.

    Example::

        with Stopwatch() as sw:
            run_algorithm()
        print(sw.elapsed)
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None

    @property
    def elapsed(self) -> float:
        """Seconds elapsed; live while running, frozen after exit."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed
