"""Deprecated shim: :class:`Stopwatch` moved to :mod:`repro.obs.timing`.

This module remains importable so existing callers keep working, but
new code should import from :mod:`repro.obs` (which also offers the
registry-backed :func:`repro.obs.timing.timed`). Attribute access emits
a :class:`DeprecationWarning` once per process and returns the real
object — ``repro.utils.timing.Stopwatch`` *is*
``repro.obs.timing.Stopwatch``, so ``isinstance`` checks keep passing.
"""

from __future__ import annotations

import warnings

_MOVED = ("Stopwatch", "timed")


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.utils.timing.{name} is deprecated; import it from "
            f"repro.obs (the observability package) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.obs import timing

        return getattr(timing, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_MOVED))
