"""Deterministic random number generator plumbing.

Every stochastic component in the package accepts a ``seed`` argument
that may be ``None`` (nondeterministic), an ``int`` (deterministic), or
an already-constructed :class:`numpy.random.Generator`. :func:`ensure_rng`
normalizes all three into a ``Generator``, which keeps experiment code
reproducible without threading generator objects through every call site.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Passing an existing ``Generator`` returns it unchanged, so stateful
    sharing between components is possible when desired.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Used by multi-run experiments so run *i* is reproducible in isolation
    (re-running only run *i* yields the same stream as running all runs).
    """
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's own stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(seed: Optional[int], *components: int) -> Optional[int]:
    """Mix integer components into a base seed.

    Returns ``None`` when ``seed`` is ``None`` (preserving
    nondeterminism); otherwise returns a stable 63-bit integer.
    """
    if seed is None:
        return None
    mixed = np.random.SeedSequence([seed, *components]).generate_state(1)[0]
    return int(mixed) & 0x7FFFFFFFFFFFFFFF
