"""Argument-validation helpers producing uniform error messages."""

from __future__ import annotations

from typing import Any, Type


def require(condition: bool, message: str, error: Type[Exception] = ValueError) -> None:
    """Raise ``error(message)`` unless ``condition`` holds."""
    if not condition:
        raise error(message)


def require_positive(value: Any, name: str) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_in_range(value: Any, low: Any, high: Any, name: str) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
