"""Small cross-cutting helpers: RNG handling, validation, timing.

``Stopwatch`` now lives in :mod:`repro.obs.timing`; the re-export here
(and the :mod:`repro.utils.timing` shim) keep old imports working.
"""

from repro.obs.timing import Stopwatch
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    require,
    require_positive,
    require_in_range,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "require",
    "require_positive",
    "require_in_range",
]
