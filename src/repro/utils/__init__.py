"""Small cross-cutting helpers: RNG handling, validation, timing."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    require,
    require_positive,
    require_in_range,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "require",
    "require_positive",
    "require_in_range",
]
