"""Uniform random server placement."""

from __future__ import annotations

import numpy as np

from repro.net.latency import LatencyMatrix
from repro.placement.base import validate_k
from repro.utils.rng import SeedLike, ensure_rng


def random_placement(
    matrix: LatencyMatrix, k: int, *, seed: SeedLike = None
) -> np.ndarray:
    """Place ``k`` servers uniformly at random without replacement.

    The paper's random-placement experiments average 1000 such draws.
    The returned indices are sorted for deterministic downstream
    iteration order.
    """
    validate_k(matrix, k)
    rng = ensure_rng(seed)
    chosen = rng.choice(matrix.n_nodes, size=k, replace=False)
    return np.sort(chosen).astype(np.int64)
