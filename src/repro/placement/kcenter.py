"""Minimum K-center placement algorithms.

Two algorithms, matching the paper's "K-center-A" and "K-center-B":

- :func:`gonzalez_kcenter` (= **K-center-A**): the classical farthest-
  point-first 2-approximation (Gonzalez 1985; also presented in
  Vazirani's *Approximation Algorithms*, the paper's citation [24]).
  Guarantee: coverage radius at most twice optimal **on metric inputs**.
  Internet latencies are not quite metric, but the algorithm remains a
  strong heuristic.
- :func:`greedy_kcenter` (= **K-center-B**): the greedy heuristic of
  Jamin et al., *Constrained Mirror Placement on the Internet*
  (INFOCOM'01, the paper's citation [14]): in each round add the
  candidate center that minimizes the resulting maximum distance from
  any node to its nearest chosen center.

Both are deterministic given the seed (used only for the choice of the
initial/tie-broken center in Gonzalez, and for tie-breaking in greedy).
"""

from __future__ import annotations

import numpy as np

from repro.net.latency import LatencyMatrix
from repro.placement.base import validate_k
from repro.utils.rng import SeedLike, ensure_rng


def gonzalez_kcenter(
    matrix: LatencyMatrix, k: int, *, seed: SeedLike = None
) -> np.ndarray:
    """Farthest-point-first 2-approximate K-center (**K-center-A**).

    Start from a random node; repeatedly add the node farthest from the
    current center set. O(k * n) time after the O(n) per-round distance
    update.
    """
    validate_k(matrix, k)
    rng = ensure_rng(seed)
    n = matrix.n_nodes
    d = matrix.values
    first = int(rng.integers(0, n))
    centers = [first]
    # dist_to_set[u] = distance from u to its nearest chosen center.
    dist_to_set = d[:, first].copy()
    for _ in range(1, k):
        nxt = int(np.argmax(dist_to_set))
        centers.append(nxt)
        np.minimum(dist_to_set, d[:, nxt], out=dist_to_set)
    return np.sort(np.asarray(centers, dtype=np.int64))


def greedy_kcenter(
    matrix: LatencyMatrix, k: int, *, seed: SeedLike = None
) -> np.ndarray:
    """Greedy K-center heuristic of Jamin et al. (**K-center-B**).

    In each round, evaluate every non-center node as a candidate and add
    the one minimizing the resulting coverage radius. O(k * n^2) with
    fully vectorized candidate evaluation.
    """
    validate_k(matrix, k)
    rng = ensure_rng(seed)
    n = matrix.n_nodes
    d = matrix.values
    chosen = np.zeros(n, dtype=bool)
    centers: list = []
    dist_to_set = np.full(n, np.inf)
    for _ in range(k):
        candidates = np.flatnonzero(~chosen)
        # For candidate c: radius = max_u min(dist_to_set[u], d[u, c]).
        trial = np.minimum(dist_to_set[:, None], d[:, candidates])
        radii = trial.max(axis=0)
        best = float(radii.min())
        ties = candidates[np.flatnonzero(radii == best)]
        pick = int(ties[rng.integers(0, ties.size)]) if ties.size > 1 else int(ties[0])
        centers.append(pick)
        chosen[pick] = True
        np.minimum(dist_to_set, d[:, pick], out=dist_to_set)
    return np.sort(np.asarray(centers, dtype=np.int64))


#: Paper aliases.
kcenter_a = gonzalez_kcenter
kcenter_b = greedy_kcenter
