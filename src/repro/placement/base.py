"""Shared protocol and quality metric for server placement."""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.net.latency import LatencyMatrix
from repro.utils.rng import SeedLike


class PlacementStrategy(Protocol):
    """A server placement strategy.

    Callable taking the latency matrix, the number of servers to place,
    and a seed, returning a 1-D integer array of ``k`` distinct node
    indices.
    """

    def __call__(
        self, matrix: LatencyMatrix, k: int, *, seed: SeedLike = None
    ) -> np.ndarray: ...


def coverage_radius(matrix: LatencyMatrix, centers: np.ndarray) -> float:
    """The K-center objective: max over nodes of distance to the nearest
    center.

    Distance from node ``u`` to center ``s`` is ``d(u, s)`` (node-to-
    server direction, matching how clients reach servers).
    """
    centers = np.asarray(centers, dtype=np.int64)
    if centers.size == 0:
        raise ValueError("need at least one center")
    to_centers = matrix.values[:, centers]
    return float(to_centers.min(axis=1).max())


def validate_k(matrix: LatencyMatrix, k: int) -> None:
    """Raise ``ValueError`` unless ``1 <= k <= n_nodes``."""
    if not 1 <= k <= matrix.n_nodes:
        raise ValueError(
            f"number of servers k={k} must be in [1, {matrix.n_nodes}]"
        )
