"""Additional server placement strategies (beyond the paper's three).

Used by the placement-sensitivity ablation: how much of the final
interactivity is decided by *where the servers are* versus *how clients
are assigned*? Strategies:

- :func:`k_median_placement` — greedy K-median (minimize the *total*
  node-to-nearest-center distance rather than the maximum). K-median
  optimizes the average case, K-center the worst case; DIAs care about
  the worst pair, so K-center should win — the ablation quantifies it.
- :func:`best_of_random_placement` — draw N random placements, keep the
  one with the smallest coverage radius. A cheap, common practical
  baseline.
- :func:`medoid_placement` — the K nodes with the smallest total
  distance to all other nodes ("most central" hosts), a naive strategy
  real operators sometimes use.
"""

from __future__ import annotations

import numpy as np

from repro.net.latency import LatencyMatrix
from repro.placement.base import coverage_radius, validate_k
from repro.placement.random_placement import random_placement
from repro.utils.rng import SeedLike, ensure_rng


def k_median_placement(
    matrix: LatencyMatrix, k: int, *, seed: SeedLike = None
) -> np.ndarray:
    """Greedy K-median: each round add the center minimizing the *sum*
    of node-to-nearest-center distances. O(k n^2), vectorized."""
    validate_k(matrix, k)
    rng = ensure_rng(seed)
    n = matrix.n_nodes
    d = matrix.values
    chosen = np.zeros(n, dtype=bool)
    dist_to_set = np.full(n, np.inf)
    centers = []
    for _ in range(k):
        candidates = np.flatnonzero(~chosen)
        trial = np.minimum(dist_to_set[:, None], d[:, candidates])
        sums = trial.sum(axis=0)
        best = float(sums.min())
        ties = candidates[np.flatnonzero(sums == best)]
        pick = int(ties[rng.integers(0, ties.size)]) if ties.size > 1 else int(ties[0])
        centers.append(pick)
        chosen[pick] = True
        np.minimum(dist_to_set, d[:, pick], out=dist_to_set)
    return np.sort(np.asarray(centers, dtype=np.int64))


def best_of_random_placement(
    matrix: LatencyMatrix, k: int, *, seed: SeedLike = None, draws: int = 16
) -> np.ndarray:
    """Best of ``draws`` random placements by coverage radius."""
    validate_k(matrix, k)
    if draws < 1:
        raise ValueError(f"draws must be >= 1, got {draws}")
    rng = ensure_rng(seed)
    best_servers = None
    best_radius = np.inf
    for _ in range(draws):
        servers = random_placement(matrix, k, seed=rng)
        radius = coverage_radius(matrix, servers)
        if radius < best_radius:
            best_radius = radius
            best_servers = servers
    return best_servers


def medoid_placement(
    matrix: LatencyMatrix, k: int, *, seed: SeedLike = None
) -> np.ndarray:
    """The ``k`` most central nodes by total distance to all others.

    Deterministic; ``seed`` accepted for interface uniformity. Note the
    failure mode this strategy exhibits: all k medoids tend to sit in
    the densest cluster, leaving remote clients poorly covered — the
    ablation makes this visible.
    """
    validate_k(matrix, k)
    totals = matrix.values.sum(axis=0) + matrix.values.sum(axis=1)
    return np.sort(np.argsort(totals, kind="stable")[:k]).astype(np.int64)
