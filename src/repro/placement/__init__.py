"""Server placement strategies (paper §V experimental setup).

The paper places servers three ways:

- **random** — uniform without replacement over all nodes;
- **K-center-A** — the 2-approximation algorithm for minimum K-center
  (parametric-pruning / bottleneck method, Vazirani ch. 5; equivalent
  guarantee to Gonzalez/Hochbaum–Shmoys);
- **K-center-B** — the greedy K-center heuristic of Jamin et al.
  (INFOCOM'01): iteratively add the center that minimizes the resulting
  maximum node-to-nearest-center distance.

Each strategy returns an array of node indices to use as the server set
``S``. Placement quality (the K-center objective) is measured by
:func:`coverage_radius`.
"""

from repro.placement.base import PlacementStrategy, coverage_radius
from repro.placement.extra import (
    best_of_random_placement,
    k_median_placement,
    medoid_placement,
)
from repro.placement.joint import (
    JointResult,
    joint_selection_exhaustive,
    joint_selection_greedy,
)
from repro.placement.kcenter import (
    gonzalez_kcenter,
    greedy_kcenter,
    kcenter_a,
    kcenter_b,
)
from repro.placement.random_placement import random_placement

__all__ = [
    "PlacementStrategy",
    "coverage_radius",
    "random_placement",
    "kcenter_a",
    "kcenter_b",
    "gonzalez_kcenter",
    "greedy_kcenter",
    "k_median_placement",
    "best_of_random_placement",
    "medoid_placement",
    "JointResult",
    "joint_selection_greedy",
    "joint_selection_exhaustive",
]
