"""Joint server selection + client assignment (extension).

The paper treats placement and assignment as separate stages (§VI:
"client assignment complements server placement"). A natural follow-up
question is how much is lost by the decoupling: K-center placement
optimizes the node-to-center radius, which is only a proxy for the
interaction-path objective D that the assignment stage then minimizes.

This module optimizes the *end* objective directly:

- :func:`joint_selection_greedy` — forward selection: grow the server
  set one site at a time, each round adding the candidate whose
  addition minimizes the D achieved by a chosen assignment algorithm;
- :func:`joint_selection_exhaustive` — enumerate all k-subsets (guarded)
  for small instances, as ground truth;
- both return the chosen servers *and* the final assignment.

``benchmarks/bench_joint.py`` measures the gap between decoupled
(K-center + DGA) and joint selection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.algorithms import run_algorithm
from repro.core.assignment import Assignment
from repro.core.problem import ClientAssignmentProblem
from repro.errors import InvalidProblemError
from repro.net.latency import LatencyMatrix
from repro.types import IndexArrayLike, as_index_array
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class JointResult:
    """Outcome of a joint selection run."""

    servers: np.ndarray
    assignment: Assignment
    objective: float
    #: Candidate evaluations performed (assignment-algorithm runs).
    evaluations: int


def _evaluate(
    matrix: LatencyMatrix,
    servers: np.ndarray,
    clients: Optional[np.ndarray],
    algorithm: str,
    seed: SeedLike,
) -> Tuple[Assignment, float]:
    problem = ClientAssignmentProblem(matrix, servers, clients=clients)
    result = run_algorithm(algorithm, problem, seed=seed)
    return result.assignment, result.d


def joint_selection_greedy(
    matrix: LatencyMatrix,
    k: int,
    *,
    candidates: Optional[IndexArrayLike] = None,
    clients: Optional[IndexArrayLike] = None,
    algorithm: str = "greedy",
    seed: SeedLike = 0,
) -> JointResult:
    """Forward-select ``k`` server sites minimizing the achieved D.

    Each round evaluates every remaining candidate by running the
    assignment algorithm on the incremented server set and keeps the
    argmin. O(k · |candidates|) assignment runs.
    """
    cand = (
        np.arange(matrix.n_nodes, dtype=np.int64)
        if candidates is None
        else as_index_array(candidates, "candidates")
    )
    client_arr = None if clients is None else as_index_array(clients, "clients")
    if not 1 <= k <= cand.size:
        raise ValueError(f"k={k} must be in [1, {cand.size}]")

    chosen: list = []
    evaluations = 0
    best_assignment: Optional[Assignment] = None
    best_objective = np.inf
    for _round in range(k):
        round_best = None
        round_obj = np.inf
        round_assignment = None
        for candidate in cand:
            candidate = int(candidate)
            if candidate in chosen:
                continue
            trial = np.asarray(sorted(chosen + [candidate]), dtype=np.int64)
            assignment, objective = _evaluate(
                matrix, trial, client_arr, algorithm, seed
            )
            evaluations += 1
            if objective < round_obj:
                round_obj = objective
                round_best = candidate
                round_assignment = assignment
        chosen.append(round_best)
        best_objective = round_obj
        best_assignment = round_assignment
    servers = np.asarray(sorted(chosen), dtype=np.int64)
    # Note: `round_assignment` was built against the sorted trial set, so
    # its local indices already match `servers`.
    return JointResult(
        servers=servers,
        assignment=best_assignment,
        objective=best_objective,
        evaluations=evaluations,
    )


def joint_selection_exhaustive(
    matrix: LatencyMatrix,
    k: int,
    *,
    candidates: Optional[IndexArrayLike] = None,
    clients: Optional[IndexArrayLike] = None,
    algorithm: str = "greedy",
    seed: SeedLike = 0,
    max_subsets: int = 200_000,
) -> JointResult:
    """Evaluate every k-subset of the candidates (small instances)."""
    cand = (
        np.arange(matrix.n_nodes, dtype=np.int64)
        if candidates is None
        else as_index_array(candidates, "candidates")
    )
    client_arr = None if clients is None else as_index_array(clients, "clients")
    if not 1 <= k <= cand.size:
        raise ValueError(f"k={k} must be in [1, {cand.size}]")
    import math

    total = math.comb(cand.size, k)
    if total > max_subsets:
        raise InvalidProblemError(
            f"{total} subsets exceed max_subsets={max_subsets}; use "
            "joint_selection_greedy"
        )
    best: Optional[JointResult] = None
    evaluations = 0
    for combo in itertools.combinations(sorted(int(c) for c in cand), k):
        servers = np.asarray(combo, dtype=np.int64)
        assignment, objective = _evaluate(
            matrix, servers, client_arr, algorithm, seed
        )
        evaluations += 1
        if best is None or objective < best.objective:
            best = JointResult(
                servers=servers,
                assignment=assignment,
                objective=objective,
                evaluations=evaluations,
            )
    assert best is not None
    return JointResult(
        servers=best.servers,
        assignment=best.assignment,
        objective=best.objective,
        evaluations=evaluations,
    )
