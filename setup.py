"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works on
environments without the ``wheel`` package (legacy ``setup.py develop``
editable installs). All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
