"""Tests for repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis import (
    bootstrap_mean_ci,
    empirical_cdf,
    mean_confidence_interval,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.n == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.median == pytest.approx(3.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0

    def test_singleton(self):
        stats = summarize([7.0])
        assert stats.std == 0.0
        assert stats.p90 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestMeanCI:
    def test_contains_mean(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 2.0, size=200)
        low, high = mean_confidence_interval(sample)
        assert low < sample.mean() < high

    def test_width_shrinks_with_n(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0, 1, size=20)
        large = rng.normal(0, 1, size=2000)
        w_small = np.diff(mean_confidence_interval(small))[0]
        w_large = np.diff(mean_confidence_interval(large))[0]
        assert w_large < w_small

    def test_coverage_simulation(self):
        # ~95% of intervals should contain the true mean.
        rng = np.random.default_rng(2)
        hits = 0
        trials = 200
        for _ in range(trials):
            sample = rng.normal(5.0, 1.0, size=50)
            low, high = mean_confidence_interval(sample, confidence=0.95)
            hits += low <= 5.0 <= high
        assert hits / trials > 0.88

    def test_singleton_degenerate(self):
        assert mean_confidence_interval([3.0]) == (3.0, 3.0)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])


class TestBootstrap:
    def test_contains_mean(self):
        rng = np.random.default_rng(3)
        sample = rng.lognormal(0.0, 0.5, size=100)  # skewed
        low, high = bootstrap_mean_ci(sample, seed=0)
        assert low < sample.mean() < high

    def test_deterministic_per_seed(self):
        sample = [1.0, 2.0, 5.0, 9.0]
        assert bootstrap_mean_ci(sample, seed=4) == bootstrap_mean_ci(sample, seed=4)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.0)


class TestEmpiricalCdf:
    def test_shape_and_range(self):
        x, f = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(f, [1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])
