"""Tests for repro.core.exact (brute force, branch and bound)."""

import numpy as np
import pytest

from repro.algorithms import greedy, nearest_server
from repro.core import (
    ClientAssignmentProblem,
    max_interaction_path_length,
    solve_branch_and_bound,
    solve_bruteforce,
)
from repro.errors import InvalidProblemError
from repro.net.latency import LatencyMatrix


def small_instance(n_nodes, n_servers, n_clients, seed):
    matrix = LatencyMatrix.random_metric(n_nodes, seed=seed)
    rng = np.random.default_rng(seed)
    nodes = rng.permutation(n_nodes)
    servers = nodes[:n_servers]
    clients = nodes[n_servers : n_servers + n_clients]
    return ClientAssignmentProblem(matrix, servers, clients)


class TestBruteforce:
    def test_objective_is_achieved(self):
        problem = small_instance(10, 3, 5, seed=0)
        result = solve_bruteforce(problem)
        assert max_interaction_path_length(result.assignment) == pytest.approx(
            result.objective
        )

    def test_space_limit_enforced(self):
        problem = small_instance(30, 4, 20, seed=1)
        with pytest.raises(InvalidProblemError):
            solve_bruteforce(problem)

    def test_respects_capacities(self):
        problem = small_instance(10, 3, 6, seed=2).with_capacity(2)
        result = solve_bruteforce(problem)
        assert result.assignment.respects_capacities()

    def test_capacity_never_improves_optimum(self):
        problem = small_instance(10, 3, 6, seed=3)
        free = solve_bruteforce(problem).objective
        capped = solve_bruteforce(problem.with_capacity(2)).objective
        assert capped >= free - 1e-9


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bruteforce(self, seed):
        problem = small_instance(12, 3, 6, seed=seed)
        bf = solve_bruteforce(problem)
        bb = solve_branch_and_bound(problem)
        assert bb.objective == pytest.approx(bf.objective)
        assert max_interaction_path_length(bb.assignment) == pytest.approx(
            bb.objective
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bruteforce_capacitated(self, seed):
        problem = small_instance(12, 3, 6, seed=seed).with_capacity(3)
        bf = solve_bruteforce(problem)
        bb = solve_branch_and_bound(problem)
        assert bb.objective == pytest.approx(bf.objective)
        assert bb.assignment.respects_capacities()

    def test_explores_fewer_nodes_than_bruteforce(self):
        problem = small_instance(14, 4, 7, seed=9)
        bf = solve_bruteforce(problem)
        bb = solve_branch_and_bound(problem)
        assert bb.nodes_explored < bf.nodes_explored

    def test_asymmetric_instance(self):
        rng = np.random.default_rng(11)
        d = rng.uniform(1.0, 20.0, size=(9, 9))
        np.fill_diagonal(d, 0.0)
        problem = ClientAssignmentProblem(
            LatencyMatrix(d), servers=[0, 4], clients=[1, 2, 3, 5, 6]
        )
        bf = solve_bruteforce(problem)
        bb = solve_branch_and_bound(problem)
        assert bb.objective == pytest.approx(bf.objective)

    def test_warm_start_prunes(self):
        problem = small_instance(12, 3, 7, seed=4)
        heuristic_d = max_interaction_path_length(greedy(problem))
        cold = solve_branch_and_bound(problem)
        warm = solve_branch_and_bound(
            problem, initial_upper_bound=heuristic_d + 1e-6
        )
        assert warm.objective == pytest.approx(cold.objective)
        assert warm.nodes_explored <= cold.nodes_explored

    def test_max_nodes_guard(self):
        problem = small_instance(14, 4, 8, seed=5)
        with pytest.raises(InvalidProblemError):
            solve_branch_and_bound(problem, max_nodes=3)


class TestHeuristicCalibration:
    @pytest.mark.parametrize("seed", range(5))
    def test_heuristics_never_beat_optimum(self, seed):
        problem = small_instance(12, 3, 6, seed=seed)
        opt = solve_branch_and_bound(problem).objective
        for fn in (nearest_server, greedy):
            assert max_interaction_path_length(fn(problem)) >= opt - 1e-9

    def test_greedy_often_near_optimal_small(self):
        ratios = []
        for seed in range(8):
            problem = small_instance(12, 3, 6, seed=100 + seed)
            opt = solve_branch_and_bound(problem).objective
            ga = max_interaction_path_length(greedy(problem))
            ratios.append(ga / opt)
        assert np.mean(ratios) < 1.25
