"""The paper's worked examples (Figs. 4 and 5) as executable tests."""

import pytest

from repro.algorithms import longest_first_batch, nearest_server
from repro.core import (
    ClientAssignmentProblem,
    max_interaction_path_length,
    solve_bruteforce,
)
from repro.net.topology import approx_ratio_gadget, lfb_gadget


class TestFig4ApproximationRatio:
    """NSA's ratio-3 tightness: D_NSA = 6a - 4eps vs optimal 2a."""

    @pytest.mark.parametrize("a,eps", [(10.0, 1.0), (100.0, 0.5), (7.0, 3.0)])
    def test_nsa_and_optimal_values(self, a, eps):
        g = approx_ratio_gadget(a, eps)
        problem = ClientAssignmentProblem(g.matrix, g.servers, g.clients)
        nsa_d = max_interaction_path_length(nearest_server(problem))
        assert nsa_d == pytest.approx(6 * a - 4 * eps)
        opt = solve_bruteforce(problem).objective
        assert opt == pytest.approx(2 * a)

    def test_ratio_approaches_three(self):
        ratios = []
        for eps in (1.0, 0.1, 0.01):
            g = approx_ratio_gadget(10.0, eps)
            problem = ClientAssignmentProblem(g.matrix, g.servers, g.clients)
            nsa_d = max_interaction_path_length(nearest_server(problem))
            opt = solve_bruteforce(problem).objective
            ratios.append(nsa_d / opt)
        assert ratios == sorted(ratios)  # increasing toward 3
        assert ratios[-1] == pytest.approx(3.0, abs=0.01)
        assert all(r < 3.0 for r in ratios)  # never exceeds the bound

    def test_lfb_matches_nsa_on_fig4(self):
        # The gadget is also tight for LFB (paper §IV-B): both clients
        # are assigned to their nearest servers.
        g = approx_ratio_gadget(10.0, 1.0)
        problem = ClientAssignmentProblem(g.matrix, g.servers, g.clients)
        assert max_interaction_path_length(
            longest_first_batch(problem)
        ) == pytest.approx(max_interaction_path_length(nearest_server(problem)))


class TestFig5LfbBeatsNsa:
    """LFB batches both clients onto s1 and beats NSA.

    Note: the paper's prose reports D_LFB = 9 by considering only the
    c1-c2 path; the paper's own formulation (inequality (3) with
    c_i = c_j) also counts the self-interaction round trip
    2 d(c1, s1) = 10. We implement the formulation, so D_LFB = 10 —
    still strictly better than NSA's 12. Recorded in EXPERIMENTS.md.
    """

    def test_nsa_d(self):
        g = lfb_gadget()
        problem = ClientAssignmentProblem(g.matrix, g.servers, g.clients)
        assert max_interaction_path_length(nearest_server(problem)) == pytest.approx(
            12.0
        )

    def test_lfb_batches_onto_s1(self):
        g = lfb_gadget()
        problem = ClientAssignmentProblem(g.matrix, g.servers, g.clients)
        lfb = longest_first_batch(problem)
        # Both clients on server s1 (local index 0).
        assert list(lfb.server_of) == [0, 0]
        assert max_interaction_path_length(lfb) == pytest.approx(10.0)

    def test_lfb_beats_nsa(self):
        g = lfb_gadget()
        problem = ClientAssignmentProblem(g.matrix, g.servers, g.clients)
        assert max_interaction_path_length(
            longest_first_batch(problem)
        ) < max_interaction_path_length(nearest_server(problem))

    def test_lfb_is_optimal_here(self):
        g = lfb_gadget()
        problem = ClientAssignmentProblem(g.matrix, g.servers, g.clients)
        opt = solve_bruteforce(problem).objective
        assert max_interaction_path_length(
            longest_first_batch(problem)
        ) == pytest.approx(opt)
