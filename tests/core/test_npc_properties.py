"""Property-based tests of the Theorem 1 reduction on random instances."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    REDUCTION_BOUND,
    SetCoverInstance,
    assignment_from_cover,
    cover_from_assignment,
    max_interaction_path_length,
    reduce_set_cover_to_cap,
    solve_gadget_bruteforce,
    verify_reduction_roundtrip,
)

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def set_cover_instances(draw):
    """Random coverable instances with <= 4 elements and <= 4 subsets."""
    universe = draw(st.integers(min_value=1, max_value=4))
    n_subsets = draw(st.integers(min_value=1, max_value=4))
    subsets = []
    for _ in range(n_subsets):
        members = draw(
            st.sets(
                st.integers(min_value=0, max_value=universe - 1),
                min_size=1,
                max_size=universe,
            )
        )
        subsets.append(frozenset(members))
    # Guarantee coverage by adding the full set if needed.
    covered = frozenset().union(*subsets)
    if len(covered) != universe:
        subsets.append(frozenset(range(universe)))
    return SetCoverInstance(universe, tuple(subsets))


class TestReductionProperties:
    @SETTINGS
    @given(set_cover_instances(), st.integers(min_value=2, max_value=3))
    def test_roundtrip_iff(self, instance, k):
        k = min(k, instance.n_subsets)
        if k < 1:
            return
        assert verify_reduction_roundtrip(instance, k)

    @SETTINGS
    @given(set_cover_instances())
    def test_greedy_cover_maps_to_valid_assignment(self, instance):
        cover = instance.greedy_cover()
        k = len(cover)
        problem, layout = reduce_set_cover_to_cap(instance, k)
        assignment = assignment_from_cover(problem, layout, cover)
        assert max_interaction_path_length(assignment) <= REDUCTION_BOUND + 1e-9

    @SETTINGS
    @given(set_cover_instances())
    def test_witness_extraction_is_cover(self, instance):
        k = min(3, instance.n_subsets)
        problem, layout = reduce_set_cover_to_cap(instance, k)
        witness = solve_gadget_bruteforce(problem)
        if witness is None:
            return
        cover = cover_from_assignment(layout, witness)
        assert instance.is_cover(cover)
        assert len(cover) <= k

    @SETTINGS
    @given(set_cover_instances())
    def test_gadget_distances_bounded(self, instance):
        # Every distance in the gadget is at most 3 hops (unit links,
        # dense inter-group connectivity): shortest paths stay small.
        k = min(2, instance.n_subsets)
        problem, _layout = reduce_set_cover_to_cap(instance, k)
        assert problem.matrix.max_latency() <= 4.0 + 1e-9
