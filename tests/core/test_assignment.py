"""Tests for repro.core.assignment (Assignment)."""

import numpy as np
import pytest

from repro.core import Assignment, ClientAssignmentProblem
from repro.errors import InvalidAssignmentError


class TestValidation:
    def test_valid_assignment(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        assert a.server_of_client(0) == 0
        assert a.server_of_client(4) == 1

    def test_wrong_length_rejected(self, tiny_problem):
        with pytest.raises(InvalidAssignmentError):
            Assignment(tiny_problem, [0, 0, 1])

    def test_out_of_range_server_rejected(self, tiny_problem):
        with pytest.raises(InvalidAssignmentError):
            Assignment(tiny_problem, [0, 0, 1, 1, 2])
        with pytest.raises(InvalidAssignmentError):
            Assignment(tiny_problem, [0, 0, 1, 1, -1])

    def test_capacity_violation_rejected(self, tiny_matrix):
        problem = ClientAssignmentProblem(tiny_matrix, servers=[1, 3], capacities=3)
        with pytest.raises(InvalidAssignmentError):
            Assignment(problem, [0, 0, 0, 0, 1])

    def test_capacity_respected_accepted(self, tiny_matrix):
        problem = ClientAssignmentProblem(tiny_matrix, servers=[1, 3], capacities=3)
        a = Assignment(problem, [0, 0, 0, 1, 1])
        assert a.respects_capacities()


class TestImmutability:
    def test_array_read_only(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        with pytest.raises(ValueError):
            a.server_of[0] = 1

    def test_attributes_frozen(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        with pytest.raises(AttributeError):
            a.extra = 1

    def test_defensive_copy_of_input(self, tiny_problem):
        arr = np.zeros(5, dtype=np.int64)
        a = Assignment(tiny_problem, arr)
        arr[0] = 1
        assert a.server_of_client(0) == 0


class TestDerived:
    def test_loads(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        np.testing.assert_array_equal(a.loads(), [2, 3])

    def test_used_servers(self, tiny_problem):
        a = Assignment(tiny_problem, [1, 1, 1, 1, 1])
        np.testing.assert_array_equal(a.used_servers(), [1])

    def test_farthest_client_distance(self, tiny_problem):
        # Servers are global nodes 1 and 3.
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        l = a.farthest_client_distance()
        cs = tiny_problem.client_server
        assert l[0] == max(cs[0, 0], cs[1, 0])
        assert l[1] == max(cs[2, 1], cs[3, 1], cs[4, 1])

    def test_unused_server_has_neg_inf(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 0, 0, 0])
        l = a.farthest_client_distance()
        assert l[1] == -np.inf

    def test_client_distances(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 1, 0, 1, 0])
        dists = a.client_distances()
        cs = tiny_problem.client_server
        expected = [cs[0, 0], cs[1, 1], cs[2, 0], cs[3, 1], cs[4, 0]]
        np.testing.assert_allclose(dists, expected)

    def test_global_server_of_and_mapping(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        np.testing.assert_array_equal(a.global_server_of(), [1, 1, 3, 3, 3])
        mapping = a.as_mapping()
        assert mapping[0] == 1
        assert mapping[4] == 3

    def test_replace(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        b = a.replace(0, 1)
        assert b.server_of_client(0) == 1
        assert a.server_of_client(0) == 0

    def test_equality_and_hash(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        b = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        c = Assignment(tiny_problem, [1, 0, 1, 1, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 0, 0, 0])
        assert "1/2 servers" in repr(a)
