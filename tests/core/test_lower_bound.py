"""Tests for repro.core.lower_bound (super-optimal bound)."""

import numpy as np
import pytest

from repro.algorithms import greedy, nearest_server
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    interaction_lower_bound,
    interaction_lower_bound_bruteforce,
    max_interaction_path_length,
    single_pair_lower_bound,
    solve_branch_and_bound,
)
from repro.net.latency import LatencyMatrix


class TestAgainstBruteforce:
    def test_matches_on_random_instances(self):
        rng = np.random.default_rng(0)
        for trial in range(5):
            n = int(rng.integers(8, 20))
            matrix = LatencyMatrix.random_metric(n, seed=trial)
            k = int(rng.integers(2, 5))
            servers = rng.choice(n, size=k, replace=False)
            problem = ClientAssignmentProblem(matrix, servers)
            fast = interaction_lower_bound(problem)
            slow = interaction_lower_bound_bruteforce(problem)
            assert fast == pytest.approx(slow)

    def test_matches_on_asymmetric(self):
        rng = np.random.default_rng(1)
        d = rng.uniform(1.0, 30.0, size=(10, 10))
        np.fill_diagonal(d, 0.0)
        problem = ClientAssignmentProblem(LatencyMatrix(d), servers=[0, 3, 7])
        assert interaction_lower_bound(problem) == pytest.approx(
            interaction_lower_bound_bruteforce(problem)
        )

    def test_blocking_invariance(self, small_problem):
        a = interaction_lower_bound(small_problem, block_size=3)
        b = interaction_lower_bound(small_problem, block_size=512)
        assert a == pytest.approx(b)


class TestBoundProperty:
    def test_below_every_assignment(self, small_problem):
        lb = interaction_lower_bound(small_problem)
        rng = np.random.default_rng(2)
        for _ in range(20):
            arr = rng.integers(0, small_problem.n_servers, small_problem.n_clients)
            a = Assignment(small_problem, arr)
            assert max_interaction_path_length(a) >= lb - 1e-9

    def test_below_heuristics(self, small_problem):
        lb = interaction_lower_bound(small_problem)
        for fn in (nearest_server, greedy):
            assert max_interaction_path_length(fn(small_problem)) >= lb - 1e-9

    def test_below_optimum(self):
        matrix = LatencyMatrix.random_metric(9, seed=5)
        problem = ClientAssignmentProblem(matrix, servers=[0, 4, 8])
        lb = interaction_lower_bound(problem)
        opt = solve_branch_and_bound(problem).objective
        assert lb <= opt + 1e-9

    def test_single_server_bound_achieved(self, tiny_matrix):
        # With one server the bound is exactly achievable: every client
        # must use that server.
        problem = ClientAssignmentProblem(tiny_matrix, servers=[2])
        lb = interaction_lower_bound(problem)
        a = Assignment(problem, np.zeros(5, dtype=np.int64))
        assert max_interaction_path_length(a) == pytest.approx(lb)


class TestSinglePair:
    def test_consistent_with_global_bound(self, small_problem):
        lb = interaction_lower_bound(small_problem)
        n = small_problem.n_clients
        pair_max = max(
            single_pair_lower_bound(small_problem, i, j)
            for i in range(0, n, 5)
            for j in range(0, n, 5)
        )
        assert pair_max <= lb + 1e-9

    def test_hand_computed(self, tiny_matrix):
        problem = ClientAssignmentProblem(tiny_matrix, servers=[1, 3])
        m = tiny_matrix
        expected = min(
            m.distance(0, 1) + 0 + m.distance(1, 4),
            m.distance(0, 1) + m.distance(1, 3) + m.distance(3, 4),
            m.distance(0, 3) + m.distance(3, 1) + m.distance(1, 4),
            m.distance(0, 3) + 0 + m.distance(3, 4),
        )
        assert single_pair_lower_bound(problem, 0, 4) == pytest.approx(expected)
