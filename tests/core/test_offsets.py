"""Tests for repro.core.offsets (OffsetSchedule, constraints (i)/(ii))."""

import numpy as np
import pytest

from repro.algorithms import greedy, nearest_server
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    OffsetSchedule,
    max_interaction_path_length,
)
from repro.errors import InfeasibleScheduleError


@pytest.fixture
def assignment(small_problem):
    return nearest_server(small_problem)


class TestDeltaSelection:
    def test_default_delta_is_d(self, assignment):
        sched = OffsetSchedule(assignment)
        assert sched.delta == pytest.approx(
            max_interaction_path_length(assignment)
        )
        assert sched.min_achievable_delta == sched.delta

    def test_larger_delta_accepted(self, assignment):
        d = max_interaction_path_length(assignment)
        sched = OffsetSchedule(assignment, delta=2 * d)
        assert sched.delta == pytest.approx(2 * d)

    def test_smaller_delta_rejected(self, assignment):
        d = max_interaction_path_length(assignment)
        with pytest.raises(InfeasibleScheduleError):
            OffsetSchedule(assignment, delta=0.9 * d)


class TestConstraints:
    def test_minimal_schedule_feasible(self, assignment):
        report = OffsetSchedule(assignment).check_constraints()
        assert report.feasible
        assert report.worst_slack_i <= 1e-9
        assert report.worst_slack_ii <= 1e-9

    def test_constraint_i_tight_somewhere(self, assignment):
        # At delta = D, some (client, server) pair must be tight: the
        # offsets are chosen so each server is as far ahead as possible.
        report = OffsetSchedule(assignment).check_constraints()
        assert report.worst_slack_i == pytest.approx(0.0, abs=1e-9)

    def test_feasible_for_many_assignments(self, small_problem):
        rng = np.random.default_rng(0)
        for _ in range(10):
            arr = rng.integers(0, small_problem.n_servers, small_problem.n_clients)
            a = Assignment(small_problem, arr)
            assert OffsetSchedule(a).check_constraints().feasible

    def test_feasible_with_slack_delta(self, assignment):
        d = max_interaction_path_length(assignment)
        report = OffsetSchedule(assignment, delta=1.5 * d).check_constraints()
        assert report.feasible


class TestOffsets:
    def test_client_offsets_zero(self, assignment):
        sched = OffsetSchedule(assignment)
        assert np.all(sched.client_offsets() == 0.0)

    def test_server_offsets_match_paper_formula(self, assignment):
        # Delta_{s,c} = D - max_{c'} (d(c', s_A(c')) + d(s_A(c'), s)).
        problem = assignment.problem
        sched = OffsetSchedule(assignment)
        d_max = sched.delta
        server_of = assignment.server_of
        idx = np.arange(problem.n_clients)
        reach = (
            problem.client_server[idx, server_of][:, None]
            + problem.server_server[server_of, :]
        )
        expected = d_max - reach.max(axis=0)
        np.testing.assert_allclose(sched.server_offsets, expected)

    def test_servers_run_ahead_of_clients(self, assignment):
        # Every server offset must be nonnegative: a server cannot lag
        # its own clients or updates would always be late.
        sched = OffsetSchedule(assignment)
        assert np.all(sched.server_offsets >= -1e-9)

    def test_wall_clock_view_nonnegative(self, assignment):
        assert np.all(OffsetSchedule(assignment).wall_clock_view() >= -1e-9)


class TestInteractionTimes:
    def test_all_equal_delta(self, assignment):
        sched = OffsetSchedule(assignment)
        times = sched.interaction_times()
        assert times.shape == (
            assignment.problem.n_clients,
            assignment.problem.n_clients,
        )
        assert np.all(times == sched.delta)

    def test_average_equals_delta(self, assignment):
        # §II-C: the average interaction time equals the lag delta.
        sched = OffsetSchedule(assignment)
        assert sched.interaction_times().mean() == pytest.approx(sched.delta)


class TestOptimalAssignmentDelta:
    def test_greedy_delta_below_nearest(self, small_problem):
        d_nsa = OffsetSchedule(nearest_server(small_problem)).delta
        d_ga = OffsetSchedule(greedy(small_problem)).delta
        assert d_ga <= d_nsa + 1e-9
