"""Tests for DeploymentPlan (assignment + offsets serialization)."""

import json

import numpy as np
import pytest

from repro.algorithms import greedy
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    DeploymentPlan,
    OffsetSchedule,
    max_interaction_path_length,
)
from repro.datasets.synthetic import small_world_latencies
from repro.errors import DatasetError, InvalidAssignmentError
from repro.net.latency import LatencyMatrix
from repro.placement import random_placement


@pytest.fixture(scope="module")
def solved():
    matrix = small_world_latencies(30, seed=60)
    problem = ClientAssignmentProblem(matrix, random_placement(matrix, 4, seed=1))
    return matrix, greedy(problem)


class TestConstruction:
    def test_from_assignment_minimal_lag(self, solved):
        matrix, assignment = solved
        plan = DeploymentPlan.from_assignment(assignment)
        assert plan.delta == pytest.approx(
            max_interaction_path_length(assignment)
        )
        assert plan.n_nodes == matrix.n_nodes
        assert len(plan.client_assignments) == assignment.problem.n_clients
        assert set(plan.server_offsets) == set(
            int(s) for s in assignment.problem.servers
        )

    def test_from_schedule_with_slack(self, solved):
        _matrix, assignment = solved
        d = max_interaction_path_length(assignment)
        plan = DeploymentPlan.from_schedule(OffsetSchedule(assignment, delta=2 * d))
        assert plan.delta == pytest.approx(2 * d)

    def test_offsets_match_schedule(self, solved):
        _matrix, assignment = solved
        schedule = OffsetSchedule(assignment)
        plan = DeploymentPlan.from_schedule(schedule)
        for node, offset in zip(
            assignment.problem.servers, schedule.server_offsets
        ):
            assert plan.server_offsets[int(node)] == pytest.approx(float(offset))


class TestRoundTrip:
    def test_save_load(self, tmp_path, solved):
        _matrix, assignment = solved
        plan = DeploymentPlan.from_assignment(assignment)
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = DeploymentPlan.load(path)
        assert loaded == plan

    def test_file_is_plain_json(self, tmp_path, solved):
        _matrix, assignment = solved
        path = tmp_path / "plan.json"
        DeploymentPlan.from_assignment(assignment).save(path)
        data = json.loads(path.read_text())
        assert data["kind"] == "deployment-plan"
        assert "delta_ms" in data

    def test_to_assignment_round_trip(self, solved):
        matrix, assignment = solved
        plan = DeploymentPlan.from_assignment(assignment)
        rebuilt = plan.to_assignment(matrix)
        assert rebuilt.as_mapping() == assignment.as_mapping()
        assert max_interaction_path_length(rebuilt) == pytest.approx(
            max_interaction_path_length(assignment)
        )


class TestValidation:
    def test_wrong_matrix_size_rejected(self, solved):
        _matrix, assignment = solved
        plan = DeploymentPlan.from_assignment(assignment)
        other = small_world_latencies(10, seed=0)
        with pytest.raises(InvalidAssignmentError):
            plan.to_assignment(other)

    def test_unknown_server_rejected(self, solved):
        matrix, assignment = solved
        plan = DeploymentPlan.from_assignment(assignment)
        broken = DeploymentPlan(
            delta=plan.delta,
            server_offsets=plan.server_offsets,
            client_assignments={**plan.client_assignments, 0: 9999},
            n_nodes=plan.n_nodes,
        )
        with pytest.raises(InvalidAssignmentError):
            broken.to_assignment(matrix)

    def test_validate_against_same_matrix(self, solved):
        matrix, assignment = solved
        plan = DeploymentPlan.from_assignment(assignment)
        assert plan.validate_against(matrix)

    def test_validate_detects_latency_growth(self, solved):
        matrix, assignment = solved
        plan = DeploymentPlan.from_assignment(assignment)
        inflated = LatencyMatrix(matrix.values * 2.0)
        assert not plan.validate_against(inflated)

    def test_validate_accepts_latency_shrink(self, solved):
        matrix, assignment = solved
        plan = DeploymentPlan.from_assignment(assignment)
        shrunk = LatencyMatrix(matrix.values * 0.5)
        assert plan.validate_against(shrunk)


class TestSchemaErrors:
    @pytest.mark.parametrize(
        "data",
        [
            [],
            {"schema_version": 99, "kind": "deployment-plan"},
            {"schema_version": 1, "kind": "other"},
            {"schema_version": 1, "kind": "deployment-plan"},  # missing keys
        ],
    )
    def test_malformed_rejected(self, data):
        with pytest.raises(DatasetError):
            DeploymentPlan.from_jsonable(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("nope{")
        with pytest.raises(DatasetError):
            DeploymentPlan.load(path)
