"""Randomized property tests for the incremental objective engine.

The engine's contract: after any interleaving of apply/assign/
assign_many/unassign/undo operations, ``d()`` equals the from-scratch
objective, and delta predictions equal the objective that committing
the move would actually produce. The reference here is
``max_interaction_path_length_bruteforce`` — the O(|C|^2) pair
enumeration — so agreement is with the paper's definition, not with the
same server-level reduction the engine uses internally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    DEFAULT_TOP_K,
    IncrementalObjective,
    count_evaluations,
    max_interaction_path_length,
    max_interaction_path_length_bruteforce,
    record_candidate_evaluations,
)
from repro.errors import InvalidAssignmentError, InvalidParameterError
from repro.net.latency import LatencyMatrix


def _random_problem(rng, n, k, *, symmetric, capacities=None):
    values = rng.uniform(1.0, 100.0, size=(n, n))
    if symmetric:
        values = (values + values.T) / 2.0
    np.fill_diagonal(values, 0.0)
    servers = np.sort(rng.choice(n, size=k, replace=False))
    return ClientAssignmentProblem(
        LatencyMatrix(values), servers, capacities=capacities
    )


def _reference_d(problem, server_of):
    return max_interaction_path_length_bruteforce(
        Assignment(problem, server_of.copy())
    )


@pytest.mark.parametrize("symmetric", [False, True], ids=["asymmetric", "symmetric"])
@pytest.mark.parametrize("capacitated", [False, True], ids=["uncap", "cap"])
def test_random_walk_matches_bruteforce(symmetric, capacitated):
    """>= 1000 random apply/undo steps stay consistent with bruteforce.

    Small k (top-3) forces frequent lazy heap rebuilds, exercising the
    drain path rather than just the cached head.
    """
    rng = np.random.default_rng(20260806 + symmetric + 2 * capacitated)
    n, k_servers = 18, 5
    capacities = 6 if capacitated else None
    problem = _random_problem(
        rng, n, k_servers, symmetric=symmetric, capacities=capacities
    )
    if capacitated:
        # Round-robin keeps the start capacity-feasible; the walk's
        # guard preserves feasibility from there.
        server_of = np.arange(n) % k_servers
        rng.shuffle(server_of)
    else:
        server_of = rng.integers(0, k_servers, n)
    engine = IncrementalObjective(problem, server_of, k=3)
    shadow = server_of.copy()
    undo_depth = 0
    checked = 0

    for step in range(1100):
        roll = rng.random()
        if roll < 0.6 or undo_depth == 0:
            c = int(rng.integers(n))
            s = int(rng.integers(k_servers))
            if capacitated and s != shadow[c]:
                loads = np.bincount(shadow, minlength=k_servers)
                if loads[s] >= capacities:
                    continue
            predicted = engine.delta_D(c, s)
            engine.apply(c, s)
            shadow[c] = s
            undo_depth += 1
            assert engine.d() == pytest.approx(predicted, rel=1e-12)
        else:
            engine.undo()
            undo_depth -= 1
            # The shadow only tracks the head of the walk; resync from
            # the engine (undo correctness is asserted via d() below).
            shadow = engine.server_of.copy()
        if step % 37 == 0:
            assert engine.d() == pytest.approx(
                _reference_d(problem, shadow), rel=1e-9
            )
            checked += 1
    assert checked >= 25
    assert engine.verify()
    assert np.array_equal(engine.server_of, shadow)


def test_batch_delta_matches_committed_objective():
    """batch_delta_D[s] equals d() after actually moving there."""
    rng = np.random.default_rng(7)
    problem = _random_problem(rng, 16, 4, symmetric=False)
    server_of = rng.integers(0, 4, 16)
    engine = IncrementalObjective(problem, server_of)
    for c in range(problem.n_clients):
        scores = engine.batch_delta_D(c, respect_capacities=False)
        assert scores.shape == (problem.n_servers,)
        for s in range(problem.n_servers):
            engine.apply(c, s)
            assert engine.d() == pytest.approx(scores[s], rel=1e-12)
            engine.undo()
        assert engine.d() == pytest.approx(
            _reference_d(problem, engine.server_of), rel=1e-9
        )


def test_batch_delta_respects_capacities():
    rng = np.random.default_rng(11)
    problem = _random_problem(rng, 12, 3, symmetric=False, capacities=4)
    server_of = np.repeat(np.arange(3), 4)  # every server saturated
    engine = IncrementalObjective(problem, server_of)
    scores = engine.batch_delta_D(0)
    home = int(engine.server_of[0])
    for s in range(3):
        if s == home:
            assert np.isfinite(scores[s])
        else:
            assert np.isinf(scores[s])


def test_partial_build_assign_many_unassign_undo():
    rng = np.random.default_rng(23)
    problem = _random_problem(rng, 15, 4, symmetric=False)
    engine = IncrementalObjective(problem)
    assert engine.n_assigned == 0
    with pytest.raises(InvalidAssignmentError):
        engine.assignment()

    first = np.arange(0, 8)
    engine.assign_many(first, 1)
    assert engine.n_assigned == 8
    for c in range(8, 15):
        engine.assign(c, int(rng.integers(4)))
    full_d = engine.d()
    assert full_d == pytest.approx(
        _reference_d(problem, engine.server_of), rel=1e-9
    )

    # assign_many is one undo record: a single undo removes the batch.
    for _ in range(7):
        engine.undo()
    engine.undo()
    assert engine.n_assigned == 0

    # unassign shrinks the assigned set and d() tracks the remainder.
    engine.assign_many(np.arange(15), 2)
    engine.unassign(3)
    assert engine.n_assigned == 14
    remaining = np.delete(np.arange(15), 3)
    sub = ClientAssignmentProblem(
        problem.matrix, problem.servers, clients=problem.clients[remaining]
    )
    expected = max_interaction_path_length_bruteforce(
        Assignment(sub, np.full(14, 2))
    )
    assert engine.d() == pytest.approx(expected, rel=1e-9)
    engine.undo()  # restores client 3
    engine.undo()  # removes the batch
    assert engine.n_assigned == 0


def test_d_bit_identical_to_metrics():
    """engine.d() uses the same reduction as max_interaction_path_length."""
    rng = np.random.default_rng(31)
    problem = _random_problem(rng, 20, 5, symmetric=False)
    server_of = rng.integers(0, 5, 20)
    engine = IncrementalObjective(problem, server_of)
    assert engine.d() == max_interaction_path_length(Assignment(problem, server_of))
    for _ in range(50):
        engine.apply(int(rng.integers(20)), int(rng.integers(5)))
        assert engine.d() == max_interaction_path_length(
            Assignment(problem, engine.server_of.copy())
        )


def test_evaluation_counting():
    rng = np.random.default_rng(41)
    problem = _random_problem(rng, 10, 4, symmetric=False)
    engine = IncrementalObjective(problem, rng.integers(0, 4, 10))
    with count_evaluations() as outer:
        engine.batch_delta_D(0, respect_capacities=False)
        with count_evaluations() as inner:
            engine.delta_D(1, 2)
            record_candidate_evaluations(5)
        assert inner.count == 1 + 5
    # Nested counts propagate to the enclosing counter.
    assert outer.count == problem.n_servers + 1 + 5
    assert engine.n_evaluations >= problem.n_servers + 1


def test_parameter_and_state_errors():
    rng = np.random.default_rng(53)
    problem = _random_problem(rng, 8, 3, symmetric=False)
    with pytest.raises(InvalidParameterError):
        IncrementalObjective(problem, k=1)
    engine = IncrementalObjective(problem, rng.integers(0, 3, 8))
    with pytest.raises(InvalidParameterError):
        engine.undo()
    with pytest.raises(InvalidAssignmentError):
        engine.apply(0, 99)
    with pytest.raises(InvalidAssignmentError):
        engine.apply(99, 0)
    no_history = IncrementalObjective(
        problem, rng.integers(0, 3, 8), history=False
    )
    no_history.apply(0, 1)
    with pytest.raises(InvalidParameterError):
        no_history.undo()


def test_default_top_k_exported():
    assert DEFAULT_TOP_K >= 2
