"""Randomized property tests for the incremental objective engine.

The engine's contract: after any interleaving of apply/assign/
assign_many/unassign/undo operations, ``d()`` equals the from-scratch
objective, and delta predictions equal the objective that committing
the move would actually produce. The reference here is
``max_interaction_path_length_bruteforce`` — the O(|C|^2) pair
enumeration — so agreement is with the paper's definition, not with the
same server-level reduction the engine uses internally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    DEFAULT_TOP_K,
    IncrementalObjective,
    count_evaluations,
    max_interaction_path_length,
    max_interaction_path_length_bruteforce,
    record_candidate_evaluations,
)
from repro.errors import InvalidAssignmentError, InvalidParameterError
from repro.net.latency import LatencyMatrix


def _random_problem(rng, n, k, *, symmetric, capacities=None):
    values = rng.uniform(1.0, 100.0, size=(n, n))
    if symmetric:
        values = (values + values.T) / 2.0
    np.fill_diagonal(values, 0.0)
    servers = np.sort(rng.choice(n, size=k, replace=False))
    return ClientAssignmentProblem(
        LatencyMatrix(values), servers, capacities=capacities
    )


def _reference_d(problem, server_of):
    return max_interaction_path_length_bruteforce(
        Assignment(problem, server_of.copy())
    )


@pytest.mark.parametrize("symmetric", [False, True], ids=["asymmetric", "symmetric"])
@pytest.mark.parametrize("capacitated", [False, True], ids=["uncap", "cap"])
def test_random_walk_matches_bruteforce(symmetric, capacitated):
    """>= 1000 random apply/undo steps stay consistent with bruteforce.

    Small k (top-3) forces frequent lazy heap rebuilds, exercising the
    drain path rather than just the cached head.
    """
    rng = np.random.default_rng(20260806 + symmetric + 2 * capacitated)
    n, k_servers = 18, 5
    capacities = 6 if capacitated else None
    problem = _random_problem(
        rng, n, k_servers, symmetric=symmetric, capacities=capacities
    )
    if capacitated:
        # Round-robin keeps the start capacity-feasible; the walk's
        # guard preserves feasibility from there.
        server_of = np.arange(n) % k_servers
        rng.shuffle(server_of)
    else:
        server_of = rng.integers(0, k_servers, n)
    engine = IncrementalObjective(problem, server_of, k=3)
    shadow = server_of.copy()
    undo_depth = 0
    checked = 0

    for step in range(1100):
        roll = rng.random()
        if roll < 0.6 or undo_depth == 0:
            c = int(rng.integers(n))
            s = int(rng.integers(k_servers))
            if capacitated and s != shadow[c]:
                loads = np.bincount(shadow, minlength=k_servers)
                if loads[s] >= capacities:
                    continue
            predicted = engine.delta_D(c, s)
            engine.apply(c, s)
            shadow[c] = s
            undo_depth += 1
            assert engine.d() == pytest.approx(predicted, rel=1e-12)
        else:
            engine.undo()
            undo_depth -= 1
            # The shadow only tracks the head of the walk; resync from
            # the engine (undo correctness is asserted via d() below).
            shadow = engine.server_of.copy()
        if step % 37 == 0:
            assert engine.d() == pytest.approx(
                _reference_d(problem, shadow), rel=1e-9
            )
            checked += 1
    assert checked >= 25
    assert engine.verify()
    assert np.array_equal(engine.server_of, shadow)


def test_batch_delta_matches_committed_objective():
    """batch_delta_D[s] equals d() after actually moving there."""
    rng = np.random.default_rng(7)
    problem = _random_problem(rng, 16, 4, symmetric=False)
    server_of = rng.integers(0, 4, 16)
    engine = IncrementalObjective(problem, server_of)
    for c in range(problem.n_clients):
        scores = engine.batch_delta_D(c, respect_capacities=False)
        assert scores.shape == (problem.n_servers,)
        for s in range(problem.n_servers):
            engine.apply(c, s)
            assert engine.d() == pytest.approx(scores[s], rel=1e-12)
            engine.undo()
        assert engine.d() == pytest.approx(
            _reference_d(problem, engine.server_of), rel=1e-9
        )


def test_batch_delta_respects_capacities():
    rng = np.random.default_rng(11)
    problem = _random_problem(rng, 12, 3, symmetric=False, capacities=4)
    server_of = np.repeat(np.arange(3), 4)  # every server saturated
    engine = IncrementalObjective(problem, server_of)
    scores = engine.batch_delta_D(0)
    home = int(engine.server_of[0])
    for s in range(3):
        if s == home:
            assert np.isfinite(scores[s])
        else:
            assert np.isinf(scores[s])


def test_partial_build_assign_many_unassign_undo():
    rng = np.random.default_rng(23)
    problem = _random_problem(rng, 15, 4, symmetric=False)
    engine = IncrementalObjective(problem)
    assert engine.n_assigned == 0
    with pytest.raises(InvalidAssignmentError):
        engine.assignment()

    first = np.arange(0, 8)
    engine.assign_many(first, 1)
    assert engine.n_assigned == 8
    for c in range(8, 15):
        engine.assign(c, int(rng.integers(4)))
    full_d = engine.d()
    assert full_d == pytest.approx(
        _reference_d(problem, engine.server_of), rel=1e-9
    )

    # assign_many is one undo record: a single undo removes the batch.
    for _ in range(7):
        engine.undo()
    engine.undo()
    assert engine.n_assigned == 0

    # unassign shrinks the assigned set and d() tracks the remainder.
    engine.assign_many(np.arange(15), 2)
    engine.unassign(3)
    assert engine.n_assigned == 14
    remaining = np.delete(np.arange(15), 3)
    sub = ClientAssignmentProblem(
        problem.matrix, problem.servers, clients=problem.clients[remaining]
    )
    expected = max_interaction_path_length_bruteforce(
        Assignment(sub, np.full(14, 2))
    )
    assert engine.d() == pytest.approx(expected, rel=1e-9)
    engine.undo()  # restores client 3
    engine.undo()  # removes the batch
    assert engine.n_assigned == 0


def test_d_bit_identical_to_metrics():
    """engine.d() uses the same reduction as max_interaction_path_length."""
    rng = np.random.default_rng(31)
    problem = _random_problem(rng, 20, 5, symmetric=False)
    server_of = rng.integers(0, 5, 20)
    engine = IncrementalObjective(problem, server_of)
    assert engine.d() == max_interaction_path_length(Assignment(problem, server_of))
    for _ in range(50):
        engine.apply(int(rng.integers(20)), int(rng.integers(5)))
        assert engine.d() == max_interaction_path_length(
            Assignment(problem, engine.server_of.copy())
        )


def test_evaluation_counting():
    rng = np.random.default_rng(41)
    problem = _random_problem(rng, 10, 4, symmetric=False)
    engine = IncrementalObjective(problem, rng.integers(0, 4, 10))
    with count_evaluations() as outer:
        engine.batch_delta_D(0, respect_capacities=False)
        with count_evaluations() as inner:
            engine.delta_D(1, 2)
            record_candidate_evaluations(5)
        assert inner.count == 1 + 5
    # Nested counts propagate to the enclosing counter.
    assert outer.count == problem.n_servers + 1 + 5
    assert engine.n_evaluations >= problem.n_servers + 1


def test_parameter_and_state_errors():
    rng = np.random.default_rng(53)
    problem = _random_problem(rng, 8, 3, symmetric=False)
    with pytest.raises(InvalidParameterError):
        IncrementalObjective(problem, k=1)
    engine = IncrementalObjective(problem, rng.integers(0, 3, 8))
    with pytest.raises(InvalidParameterError):
        engine.undo()
    with pytest.raises(InvalidAssignmentError):
        engine.apply(0, 99)
    with pytest.raises(InvalidAssignmentError):
        engine.apply(99, 0)
    no_history = IncrementalObjective(
        problem, rng.integers(0, 3, 8), history=False
    )
    no_history.apply(0, 1)
    with pytest.raises(InvalidParameterError):
        no_history.undo()


def test_default_top_k_exported():
    assert DEFAULT_TOP_K >= 2


class TestTopListWatermark:
    """Edge cases of the ``_TopList`` eviction watermark (``bound``).

    The list's correctness story: any unlisted member has distance
    <= ``bound``, so the head is trustworthy exactly while
    ``head() >= bound``. These tests pin the transitions where that
    bookkeeping is easiest to get wrong.
    """

    def _top(self, k=3):
        from repro.core.incremental import _TopList

        return _TopList(k)

    def test_eviction_at_exactly_k(self):
        top = self._top(k=3)
        for dist, client in [(10.0, 0), (30.0, 1), (20.0, 2)]:
            top.add(dist, client)
        assert len(top) == 3
        assert top.bound == -np.inf  # nothing skipped or evicted yet
        # The 4th member evicts the smallest and stamps the watermark.
        top.add(25.0, 3)
        assert len(top) == 3
        assert top.clients == [1, 3, 2]
        assert top.bound == 10.0
        assert top.head() == 30.0

    def test_skipped_add_raises_watermark(self):
        top = self._top(k=2)
        top.add(30.0, 0)
        top.add(20.0, 1)
        top.add(5.0, 2)  # not among the top-2: skipped, not inserted
        assert len(top) == 2
        assert top.clients == [0, 1]
        assert top.bound == 5.0
        top.add(1.0, 3)  # below the watermark AND below the tail: skipped
        assert top.bound == 5.0

    def test_partial_drain_then_add_below_watermark(self):
        """After a drain, ``add`` may insert values below the watermark.

        This is exactly why ``bound`` is tracked instead of only
        handling the fully-drained case: the inserted value is *not*
        trustworthy as a maximum (a skipped 18.0 may exist), and
        ``head() >= bound`` is the guard that keeps the head usable.
        """
        top = self._top(k=2)
        top.add(30.0, 0)
        top.add(20.0, 1)
        top.add(18.0, 2)  # skipped; watermark = 18
        assert top.bound == 18.0
        top.discard(1)  # partial drain: one slot opens
        assert len(top) == 1
        top.add(7.0, 3)  # below the watermark, but inserted (list not full)
        assert top.clients == [0, 3]
        # Head is still above the watermark, so it remains the true max.
        assert top.head() == 30.0
        assert top.head() >= top.bound
        top.discard(0)  # now only 7.0 remains, which is < bound = 18:
        assert top.head() < top.bound  # owner must rebuild before trusting

    def test_discard_unlisted_is_noop(self):
        top = self._top(k=2)
        top.add(30.0, 0)
        top.add(20.0, 1)
        top.add(10.0, 2)
        before = top.snapshot()
        top.discard(2)  # client 2 was skipped, not listed
        assert top.snapshot() == before

    def test_rebuild_resets_watermark(self):
        top = self._top(k=2)
        top.add(30.0, 0)
        top.add(20.0, 1)
        top.add(10.0, 2)
        assert top.bound == 10.0
        # Rebuild from <= k members: every member is listed, bound clears.
        top.rebuild(np.array([4.0, 9.0]), np.array([5, 6]))
        assert top.clients == [6, 5]
        assert top.bound == -np.inf
        # Rebuild from > k members: bound is the best *unlisted* distance.
        top.rebuild(np.array([4.0, 9.0, 7.0, 1.0]), np.array([5, 6, 7, 8]))
        assert top.clients == [6, 7]
        assert top.bound == 4.0

    def test_snapshot_restore_round_trip(self):
        top = self._top(k=2)
        top.add(30.0, 0)
        top.add(20.0, 1)
        top.add(10.0, 2)
        state = top.snapshot()
        top.add(40.0, 3)
        top.discard(0)
        top.restore(state)
        assert top.clients == [0, 1]
        assert top.bound == 10.0

    @pytest.mark.parametrize("k", [2, 3])
    def test_unassign_storm_forces_correct_rebuilds(self, k):
        """Draining a server below its watermark stays bruteforce-correct.

        Pile every client onto one server, then unassign the farthest
        ones first — each removal drains the top list's head, pushing it
        below the watermark and forcing ground-truth rebuilds.
        """
        rng = np.random.default_rng(60 + k)
        n, k_servers = 20, 4
        problem = _random_problem(rng, n, k_servers, symmetric=False)
        engine = IncrementalObjective(problem, k=k)
        for c in range(n):
            engine.apply(c, 0)
        # Farthest-first removal order w.r.t. server 0's outbound leg.
        order = np.argsort(-problem.matrix.values[problem.servers[0], :])
        survivors = set(range(n))
        for c in order[: n - 4]:
            engine.unassign(int(c))
            survivors.discard(int(c))
            kept = sorted(survivors)
            # Reference: every ordered survivor pair (a == b included —
            # D's definition takes the max over the full pair grid)
            # routes through server 0.
            s0 = problem.servers[0]
            best = 0.0
            for a in kept:
                for b in kept:
                    best = max(
                        best,
                        problem.matrix.values[a, s0]
                        + problem.matrix.values[s0, b],
                    )
            assert engine.d() == pytest.approx(best, rel=1e-9)
        assert engine.verify()
