"""Backend selection, parity, and regression tests for ``repro.kernels``.

Three layers of guarantees:

- **Resolution** — backend names validate, ``"numpy"`` always works,
  ``"numba"`` raises :class:`~repro.errors.KernelBackendError` when
  numba is absent, ``"auto"`` never raises, and ``import repro`` does
  not require numba at all.
- **Parity** — within one dtype the numpy and numba backends keep
  bit-identical engine state over long random apply/undo/batch walks
  (run only where numba is importable); float32 instances track their
  float64 twins to the matrix rounding.
- **Regression** — a golden walk pins D and candidate-score values
  produced by the pre-kernel engine, so the numpy twin is verifiably
  the historical inline code, not merely a close cousin.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    IncrementalObjective,
    max_interaction_path_length_bruteforce,
)
from repro.errors import InvalidParameterError, KernelBackendError
from repro.kernels import (
    BACKEND_CHOICES,
    KERNEL_NAMES,
    KernelSuite,
    available_backends,
    numba_available,
    resolve_backend,
    validate_backend_name,
)
from repro.net.latency import LatencyMatrix

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not importable in this environment"
)


def _random_problem(rng, n, k, *, dtype=np.float64):
    values = rng.uniform(5.0, 300.0, size=(n, n))
    np.fill_diagonal(values, 0.0)
    servers = np.sort(rng.choice(n, size=k, replace=False))
    return ClientAssignmentProblem(
        LatencyMatrix(values, dtype=dtype), servers
    )


class TestResolution:
    def test_backend_choices(self):
        assert BACKEND_CHOICES == ("auto", "numba", "numpy")
        for name in BACKEND_CHOICES:
            assert validate_backend_name(name) == name

    def test_invalid_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            validate_backend_name("cython")
        with pytest.raises(InvalidParameterError):
            resolve_backend("")

    def test_numpy_always_resolves(self):
        suite = resolve_backend("numpy")
        assert isinstance(suite, KernelSuite)
        assert suite.name == "numpy"
        for kernel in KERNEL_NAMES:
            assert callable(getattr(suite, kernel))

    def test_auto_matches_availability(self):
        expected = "numba" if numba_available() else "numpy"
        assert resolve_backend("auto").name == expected
        assert available_backends()[-1] == "numpy"

    def test_numba_hard_request_raises_when_absent(self):
        if numba_available():
            pytest.skip("numba importable here; the error path is unreachable")
        with pytest.raises(KernelBackendError) as exc_info:
            resolve_backend("numba")
        assert exc_info.value.code == "kernel-backend-unavailable"

    def test_engine_surfaces_backend_choice(self):
        rng = np.random.default_rng(0)
        problem = _random_problem(rng, 20, 4)
        engine = IncrementalObjective(problem, backend="numpy")
        assert engine.backend == "numpy"
        auto = IncrementalObjective(problem)
        assert auto.backend in ("numpy", "numba")
        with pytest.raises(InvalidParameterError):
            IncrementalObjective(problem, backend="fortran")

    def test_import_repro_never_requires_numba(self):
        """``import repro`` and an engine walk succeed with numba blocked.

        A meta-path hook makes ``import numba`` fail before repro is
        imported, proving the lazy-import seam: resolution falls back
        to the numpy twin and nothing at import time touches numba.
        """
        script = """
import sys

class _Block:
    def find_module(self, name, path=None):
        return self if name.split(".")[0] == "numba" else None
    def find_spec(self, name, path=None, target=None):
        if name.split(".")[0] == "numba":
            raise ImportError("numba blocked for test")
        return None

sys.meta_path.insert(0, _Block())
sys.modules.pop("numba", None)

import numpy as np
import repro
from repro.core import ClientAssignmentProblem, IncrementalObjective
from repro.kernels import numba_available, resolve_backend
from repro.net.latency import LatencyMatrix

assert not numba_available()
assert resolve_backend("auto").name == "numpy"
rng = np.random.default_rng(3)
values = rng.uniform(1.0, 50.0, size=(12, 12))
np.fill_diagonal(values, 0.0)
problem = ClientAssignmentProblem(LatencyMatrix(values), [0, 5, 9])
engine = IncrementalObjective(problem)
for c in range(12):
    engine.apply(c, c % 3)
print(engine.d())
"""
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert float(proc.stdout.strip()) > 0.0


class TestObservability:
    def test_per_kernel_counters_accumulate(self):
        from repro.obs.metrics import MetricsRegistry, use_registry

        rng = np.random.default_rng(11)
        problem = _random_problem(rng, 30, 5)
        with use_registry(MetricsRegistry()) as metrics:
            engine = IncrementalObjective(problem, backend="numpy")
            for c in range(30):
                engine.apply(c, c % 5)
            engine.d()
            engine.batch_delta_D(7, respect_capacities=False)
            counters = metrics.snapshot()["counters"]
        name = engine.backend
        kernel_counters = {
            k: v for k, v in counters.items() if k.startswith(f"kernel.{name}.")
        }
        assert kernel_counters, (
            f"no kernel.{name}.* counters recorded: {sorted(counters)}"
        )
        for kernel in ("move_context", "objective_refresh"):
            assert counters[f"kernel.{name}.{kernel}.calls"] >= 1
            assert counters[f"kernel.{name}.{kernel}.seconds"] >= 0.0

    def test_uninstrumented_suite_skips_counters(self):
        from repro.obs.metrics import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as metrics:
            suite = resolve_backend("numpy", instrument=False)
            dists = np.array([3.0, 1.0, 2.0])
            suite.topk_select(dists, 2)
            counters = metrics.snapshot()["counters"]
            assert not any(k.startswith("kernel.") for k in counters)


def _walk(engine, rng, n, k_servers, steps, record_every, shadow=None):
    """A deterministic apply/unassign/undo walk; returns (ds, score_sums)."""
    ds, score_sums = [], []
    for step in range(steps):
        c = int(rng.integers(0, n))
        op = rng.integers(0, 10)
        if op < 6 or engine.n_assigned == 0:
            s = int(rng.integers(0, k_servers))
            engine.apply(c, s)
        elif op < 8 and engine.server_of[c] >= 0:
            engine.unassign(c)
        else:
            engine.apply(c, int(rng.integers(0, k_servers)))
            engine.undo()
        if step % record_every == 0:
            ds.append(engine.d())
            sc = engine.batch_delta_D(
                int(rng.integers(0, n)), respect_capacities=False
            )
            score_sums.append(float(np.sum(sc[np.isfinite(sc)])))
    return ds, score_sums


class TestGoldenWalk:
    """Pinned values produced by the engine *before* the kernel seam.

    If these move, the numpy backend is no longer the byte-identical
    twin of the historical inline code — which is its entire spec.
    """

    GOLDEN_D = [
        431.2161517052526,
        841.5966022305496,
        850.8535700092947,
        858.4626582060398,
        863.757356903467,
        877.4966951117747,
        879.0017144960219,
        879.0017144960219,
    ]
    GOLDEN_SCORE_SUMS = [
        6765.558606687058,
        10099.159226766595,
        10210.242840111534,
        10301.551898472477,
        10365.088282841603,
        10529.960341341295,
        10548.020573952263,
        10548.020573952263,
    ]

    def _engine(self, backend):
        rng = np.random.default_rng(20260808)
        n = 120
        values = rng.uniform(5.0, 300.0, size=(n, n))
        np.fill_diagonal(values, 0.0)
        matrix = LatencyMatrix(values)
        servers = np.sort(rng.choice(n, size=12, replace=False))
        problem = ClientAssignmentProblem(matrix, servers)
        return IncrementalObjective(problem, history=True, backend=backend)

    def test_numpy_backend_is_byte_identical_to_history(self):
        engine = self._engine("numpy")
        ds, score_sums = _walk(
            engine, np.random.default_rng(7), 120, 12, 400, 50
        )
        assert ds == self.GOLDEN_D
        assert score_sums == self.GOLDEN_SCORE_SUMS

    @needs_numba
    def test_numba_backend_matches_golden_walk(self):
        engine = self._engine("numba")
        ds, score_sums = _walk(
            engine, np.random.default_rng(7), 120, 12, 400, 50
        )
        assert ds == pytest.approx(self.GOLDEN_D, rel=1e-12)
        assert score_sums == pytest.approx(self.GOLDEN_SCORE_SUMS, rel=1e-12)


class TestParity:
    @needs_numba
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_walks_bit_identical_across_backends(self, seed):
        """Thousands of steps: both backends keep identical state."""
        rng = np.random.default_rng(900 + seed)
        n, k_servers = 40, 7
        problem = _random_problem(rng, n, k_servers)
        engines = {
            name: IncrementalObjective(problem, k=3, backend=name)
            for name in ("numpy", "numba")
        }
        walks = {
            name: np.random.default_rng(1000 + seed) for name in engines
        }
        for name, engine in engines.items():
            ds, sums = _walk(engine, walks[name], n, k_servers, 1200, 40)
            if name == "numpy":
                ref_ds, ref_sums = ds, sums
        assert ds == ref_ds
        assert sums == ref_sums
        assert engines["numpy"].d() == engines["numba"].d()
        for c in range(n):
            a = engines["numpy"].batch_delta_D(c, respect_capacities=False)
            b = engines["numba"].batch_delta_D(c, respect_capacities=False)
            assert np.array_equal(a, b, equal_nan=True)

    @pytest.mark.parametrize("backend", ["numpy"])
    def test_float32_tracks_float64(self, backend):
        rng = np.random.default_rng(77)
        n, k_servers = 50, 6
        values = rng.uniform(5.0, 300.0, size=(n, n))
        np.fill_diagonal(values, 0.0)
        servers = np.sort(rng.choice(n, size=k_servers, replace=False))
        engines = {}
        for dtype in (np.float64, np.float32):
            problem = ClientAssignmentProblem(
                LatencyMatrix(values, dtype=dtype), servers
            )
            assert problem.dtype == np.dtype(dtype)
            engines[np.dtype(dtype).name] = IncrementalObjective(
                problem, backend=backend
            )
        for name, engine in engines.items():
            _walk(engine, np.random.default_rng(5), n, k_servers, 600, 100)
        d64 = engines["float64"].d()
        d32 = engines["float32"].d()
        assert d32 == pytest.approx(d64, rel=1e-5)
        for c in range(0, n, 7):
            a = engines["float64"].batch_delta_D(c, respect_capacities=False)
            b = engines["float32"].batch_delta_D(c, respect_capacities=False)
            assert np.allclose(a, b, rtol=1e-5, atol=1e-3, equal_nan=True)

    def test_float32_walk_matches_bruteforce(self):
        """The engine's own contract holds on float32 instances too."""
        rng = np.random.default_rng(31)
        n, k_servers = 16, 4
        problem = _random_problem(rng, n, k_servers, dtype=np.float32)
        server_of = rng.integers(0, k_servers, n)
        engine = IncrementalObjective(problem, server_of, k=3)
        shadow = server_of.copy()
        for _ in range(300):
            c = int(rng.integers(n))
            if rng.random() < 0.7:
                s = int(rng.integers(k_servers))
                engine.apply(c, s)
                shadow[c] = s
            elif shadow[c] >= 0:
                engine.unassign(c)
                shadow[c] = -1
        # Bruteforce needs a total assignment; park stragglers first.
        for c in np.flatnonzero(shadow < 0):
            engine.apply(int(c), 0)
            shadow[c] = 0
        reference = max_interaction_path_length_bruteforce(
            Assignment(problem, shadow.copy())
        )
        assert engine.d() == pytest.approx(reference, rel=1e-6)
