"""Weighted instances: super-client loads and capacity gating.

The coreset layer (``repro.scale``) hands the solver a reduced problem
whose clients carry integer weights — each super-client stands for its
cell population. These tests pin the weighted machinery on its own:
the ``weighted_loads`` scatter-add kernel, the engine's weighted load
tracking through apply/undo, and the weight-aware capacity mask.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClientAssignmentProblem
from repro.core.incremental import IncrementalObjective
from repro.datasets.synthetic import small_world_latencies
from repro.errors import InvalidProblemError
from repro.kernels.numpy_backend import weighted_loads


class TestWeightedLoadsKernel:
    def test_scatter_add(self):
        server_of = np.array([0, 2, 0, 1, 2], dtype=np.int64)
        weights = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        assert np.array_equal(
            weighted_loads(server_of, weights, 3), [7, 1, 6]
        )

    def test_unassigned_contribute_nothing(self):
        server_of = np.array([-1, 1, -1, 1], dtype=np.int64)
        weights = np.array([100, 2, 100, 3], dtype=np.int64)
        assert np.array_equal(
            weighted_loads(server_of, weights, 2), [0, 5]
        )

    def test_all_unassigned(self):
        server_of = np.full(4, -1, dtype=np.int64)
        weights = np.ones(4, dtype=np.int64)
        assert np.array_equal(weighted_loads(server_of, weights, 3), [0, 0, 0])

    def test_int64_exact_at_large_weights(self):
        server_of = np.zeros(3, dtype=np.int64)
        weights = np.full(3, 2**40, dtype=np.int64)
        assert weighted_loads(server_of, weights, 1)[0] == 3 * 2**40


@pytest.fixture
def weighted_problem():
    matrix = small_world_latencies(20, seed=13)
    servers = np.array([0, 7, 14], dtype=np.int64)
    clients = np.array([1, 2, 3, 8, 9, 15, 16], dtype=np.int64)
    weights = np.array([5, 1, 2, 8, 1, 3, 4], dtype=np.int64)
    return ClientAssignmentProblem(
        matrix, servers, clients=clients, client_weights=weights,
        capacities=12,
    )


def test_problem_validates_weights():
    matrix = small_world_latencies(10, seed=0)
    servers = np.array([0, 5], dtype=np.int64)
    clients = np.array([1, 2, 3], dtype=np.int64)
    with pytest.raises(InvalidProblemError):
        ClientAssignmentProblem(
            matrix, servers, clients=clients,
            client_weights=np.array([1, 2], dtype=np.int64),
        )
    with pytest.raises(InvalidProblemError):
        ClientAssignmentProblem(
            matrix, servers, clients=clients,
            client_weights=np.array([1, 0, 2], dtype=np.int64),
        )


def test_engine_tracks_weighted_loads(weighted_problem):
    weights = weighted_problem.client_weights
    server_of = np.array([0, 0, 1, 1, 2, 2, 2], dtype=np.int64)
    engine = IncrementalObjective(weighted_problem, server_of)
    expected = weighted_loads(server_of, weights, 3)
    assert np.array_equal(engine.weighted_loads, expected)
    # Counts and weights are tracked separately.
    assert np.array_equal(engine.loads, np.bincount(server_of, minlength=3))

    engine.apply(0, 2)  # move the weight-5 client
    server_of[0] = 2
    assert np.array_equal(
        engine.weighted_loads, weighted_loads(server_of, weights, 3)
    )
    engine.undo()
    server_of[0] = 0
    assert np.array_equal(
        engine.weighted_loads, weighted_loads(server_of, weights, 3)
    )


def test_unweighted_weighted_loads_equal_counts():
    matrix = small_world_latencies(12, seed=1)
    servers = np.array([0, 6], dtype=np.int64)
    clients = np.array([1, 2, 3, 7], dtype=np.int64)
    problem = ClientAssignmentProblem(matrix, servers, clients=clients)
    server_of = np.array([0, 1, 0, 1], dtype=np.int64)
    engine = IncrementalObjective(problem, server_of)
    assert np.array_equal(engine.weighted_loads, engine.loads)


def test_capacity_mask_uses_weights_not_counts(weighted_problem):
    """A destination is infeasible when *weighted* load + w would
    overflow, even with only one resident client."""
    weights = weighted_problem.client_weights
    # Server 1 holds the weight-8 client alone; server 0 the rest but
    # client 0 (weight 5) which sits on server 2.
    server_of = np.array([2, 0, 0, 1, 0, 0, 0], dtype=np.int64)
    engine = IncrementalObjective(weighted_problem, server_of)
    scores = engine.batch_delta_D(0)
    # Moving weight-5 client 0 onto server 1 (weighted load 8, cap 12)
    # would need 13 > 12: masked. Server 0 holds 1+2+1+3+4 = 11, also
    # masked (11 + 5 > 12). Its own home stays feasible.
    assert np.isinf(scores[1])
    assert np.isinf(scores[0])
    assert np.isfinite(scores[2])
    # The weight-1 client 1 fits on server 1 (8 + 1 <= 12).
    assert np.isfinite(engine.batch_delta_D(1)[1])
    assert weights[0] == 5 and weights[1] == 1  # fixture sanity


def test_weighted_solve_respects_capacity():
    from repro.algorithms import distributed_greedy

    matrix = small_world_latencies(30, seed=3)
    servers = np.array([0, 10, 20], dtype=np.int64)
    mask = np.ones(30, dtype=bool)
    mask[servers] = False
    clients = np.flatnonzero(mask).astype(np.int64)
    rng = np.random.default_rng(2)
    weights = rng.integers(1, 4, size=clients.size).astype(np.int64)
    total = int(weights.sum())
    problem = ClientAssignmentProblem(
        matrix, servers, clients=clients, client_weights=weights,
        capacities=total,  # generous: always feasible
    )
    assignment = distributed_greedy(problem)
    loads = weighted_loads(assignment.server_of, weights, servers.size)
    assert int(loads.sum()) == total
    assert np.all(loads <= total)
