"""Tests for repro.core.problem (ClientAssignmentProblem)."""

import numpy as np
import pytest

from repro.core import ClientAssignmentProblem
from repro.errors import CapacityError, InvalidProblemError


class TestConstruction:
    def test_defaults_all_nodes_clients(self, tiny_matrix):
        problem = ClientAssignmentProblem(tiny_matrix, servers=[1, 3])
        assert problem.n_clients == 5
        assert problem.n_servers == 2
        np.testing.assert_array_equal(problem.clients, np.arange(5))

    def test_explicit_clients(self, tiny_matrix):
        problem = ClientAssignmentProblem(tiny_matrix, servers=[1], clients=[0, 4])
        assert problem.n_clients == 2
        np.testing.assert_array_equal(problem.clients, [0, 4])

    def test_empty_servers_rejected(self, tiny_matrix):
        with pytest.raises(InvalidProblemError):
            ClientAssignmentProblem(tiny_matrix, servers=[])

    def test_empty_clients_rejected(self, tiny_matrix):
        with pytest.raises(InvalidProblemError):
            ClientAssignmentProblem(tiny_matrix, servers=[0], clients=[])

    def test_duplicate_servers_rejected(self, tiny_matrix):
        with pytest.raises(InvalidProblemError):
            ClientAssignmentProblem(tiny_matrix, servers=[1, 1])

    def test_duplicate_clients_rejected(self, tiny_matrix):
        with pytest.raises(InvalidProblemError):
            ClientAssignmentProblem(tiny_matrix, servers=[0], clients=[2, 2])

    def test_out_of_range_rejected(self, tiny_matrix):
        with pytest.raises(InvalidProblemError):
            ClientAssignmentProblem(tiny_matrix, servers=[9])
        with pytest.raises(InvalidProblemError):
            ClientAssignmentProblem(tiny_matrix, servers=[0], clients=[-1])

    def test_node_can_be_both_server_and_client(self, tiny_matrix):
        problem = ClientAssignmentProblem(tiny_matrix, servers=[2], clients=[2, 3])
        assert problem.n_clients == 2

    def test_repr(self, tiny_problem):
        assert "|C|=5" in repr(tiny_problem)
        assert "uncapacitated" in repr(tiny_problem)


class TestDistanceViews:
    def test_client_server_slice(self, tiny_matrix):
        problem = ClientAssignmentProblem(tiny_matrix, servers=[1, 3])
        assert problem.client_server.shape == (5, 2)
        assert problem.client_server[0, 0] == tiny_matrix.distance(0, 1)
        assert problem.client_server[4, 1] == tiny_matrix.distance(4, 3)

    def test_server_server_slice(self, tiny_matrix):
        problem = ClientAssignmentProblem(tiny_matrix, servers=[1, 3])
        assert problem.server_server.shape == (2, 2)
        assert problem.server_server[0, 1] == tiny_matrix.distance(1, 3)

    def test_views_are_read_only(self, tiny_problem):
        with pytest.raises(ValueError):
            tiny_problem.client_server[0, 0] = 1.0
        with pytest.raises(ValueError):
            tiny_problem.server_server[0, 0] = 1.0
        with pytest.raises(ValueError):
            tiny_problem.servers[0] = 0


class TestCapacities:
    def test_scalar_capacity_broadcast(self, tiny_matrix):
        problem = ClientAssignmentProblem(
            tiny_matrix, servers=[1, 3], capacities=3
        )
        np.testing.assert_array_equal(problem.capacities, [3, 3])
        assert problem.is_capacitated

    def test_vector_capacity(self, tiny_matrix):
        problem = ClientAssignmentProblem(
            tiny_matrix, servers=[1, 3], capacities=[2, 3]
        )
        np.testing.assert_array_equal(problem.capacities, [2, 3])

    def test_wrong_length_rejected(self, tiny_matrix):
        with pytest.raises(InvalidProblemError):
            ClientAssignmentProblem(tiny_matrix, servers=[1, 3], capacities=[2])

    def test_negative_rejected(self, tiny_matrix):
        with pytest.raises(InvalidProblemError):
            ClientAssignmentProblem(tiny_matrix, servers=[1, 3], capacities=[-1, 9])

    def test_insufficient_total_rejected(self, tiny_matrix):
        with pytest.raises(CapacityError):
            ClientAssignmentProblem(tiny_matrix, servers=[1, 3], capacities=2)

    def test_uncapacitated_copy(self, tiny_matrix):
        problem = ClientAssignmentProblem(tiny_matrix, servers=[1, 3], capacities=3)
        free = problem.uncapacitated()
        assert not free.is_capacitated
        np.testing.assert_array_equal(free.servers, problem.servers)

    def test_uncapacitated_is_identity_when_free(self, tiny_problem):
        assert tiny_problem.uncapacitated() is tiny_problem

    def test_with_capacity(self, tiny_problem):
        capped = tiny_problem.with_capacity(4)
        assert capped.is_capacitated
        assert not tiny_problem.is_capacitated
