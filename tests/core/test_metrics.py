"""Tests for repro.core.metrics (interaction paths, D, etc.)."""

import numpy as np
import pytest

from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    argmax_interaction_path,
    average_interaction_path_length,
    clients_on_longest_paths,
    interaction_path,
    interaction_path_length,
    max_interaction_path_length,
    max_interaction_path_length_bruteforce,
    normalized_interactivity,
)
from repro.net.latency import LatencyMatrix
from repro.placement import random_placement


class TestInteractionPathLength:
    def test_hand_computed(self, tiny_problem):
        # Clients 0..4; servers: local 0 -> node 1, local 1 -> node 3.
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        m = tiny_problem.matrix
        expected = m.distance(0, 1) + m.distance(1, 3) + m.distance(3, 4)
        assert interaction_path_length(a, 0, 4) == pytest.approx(expected)

    def test_self_path_is_round_trip(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        m = tiny_problem.matrix
        assert interaction_path_length(a, 0, 0) == pytest.approx(
            2 * m.distance(0, 1)
        )

    def test_same_server_skips_interserver_leg(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        m = tiny_problem.matrix
        assert interaction_path_length(a, 0, 1) == pytest.approx(
            m.distance(0, 1) + m.distance(1, 1)
        )

    def test_path_object_global_ids(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        path = interaction_path(a, 0, 4)
        assert path.client_a == 0
        assert path.server_a == 1
        assert path.server_b == 3
        assert path.client_b == 4
        assert path.hops() == (0, 1, 3, 4)

    def test_path_hops_collapse_same_server(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        path = interaction_path(a, 0, 1)
        assert path.hops() == (0, 1, 1)


class TestMaxInteractionPathLength:
    def test_matches_bruteforce_random(self, small_problem):
        rng = np.random.default_rng(0)
        for _ in range(20):
            arr = rng.integers(0, small_problem.n_servers, small_problem.n_clients)
            a = Assignment(small_problem, arr)
            fast = max_interaction_path_length(a)
            slow = max_interaction_path_length_bruteforce(a)
            assert fast == pytest.approx(slow)

    def test_matches_bruteforce_asymmetric(self):
        rng = np.random.default_rng(1)
        d = rng.uniform(1.0, 50.0, size=(12, 12))
        np.fill_diagonal(d, 0.0)
        matrix = LatencyMatrix(d)  # asymmetric
        problem = ClientAssignmentProblem(matrix, servers=[0, 5, 9])
        for _ in range(10):
            arr = rng.integers(0, 3, 12)
            a = Assignment(problem, arr)
            assert max_interaction_path_length(a) == pytest.approx(
                max_interaction_path_length_bruteforce(a)
            )

    def test_single_client(self, tiny_matrix):
        problem = ClientAssignmentProblem(tiny_matrix, servers=[1], clients=[4])
        a = Assignment(problem, [0])
        assert max_interaction_path_length(a) == pytest.approx(
            2 * tiny_matrix.distance(4, 1)
        )

    def test_all_same_node(self, tiny_matrix):
        # Client co-located with its server: D = 0 round trip not
        # possible since off-diagonal is positive, but client==server
        # node gives d = 0.
        problem = ClientAssignmentProblem(tiny_matrix, servers=[1], clients=[1])
        a = Assignment(problem, [0])
        assert max_interaction_path_length(a) == 0.0


class TestArgmax:
    def test_argmax_achieves_max(self, small_problem):
        rng = np.random.default_rng(2)
        for _ in range(10):
            arr = rng.integers(0, small_problem.n_servers, small_problem.n_clients)
            a = Assignment(small_problem, arr)
            path = argmax_interaction_path(a)
            assert path.length == pytest.approx(max_interaction_path_length(a))


class TestClientsOnLongestPaths:
    def test_witnesses_are_involved(self, small_problem):
        rng = np.random.default_rng(3)
        arr = rng.integers(0, small_problem.n_servers, small_problem.n_clients)
        a = Assignment(small_problem, arr)
        d_max = max_interaction_path_length(a)
        involved = clients_on_longest_paths(a)
        assert involved.size >= 1
        # Every reported client must participate in a path of length D.
        for c in involved:
            lengths = [
                max(
                    interaction_path_length(a, int(c), other),
                    interaction_path_length(a, other, int(c)),
                )
                for other in range(small_problem.n_clients)
            ]
            assert max(lengths) == pytest.approx(d_max)

    def test_non_witnesses_are_not_involved(self, small_problem):
        rng = np.random.default_rng(4)
        arr = rng.integers(0, small_problem.n_servers, small_problem.n_clients)
        a = Assignment(small_problem, arr)
        d_max = max_interaction_path_length(a)
        involved = set(clients_on_longest_paths(a).tolist())
        for c in range(small_problem.n_clients):
            if c in involved:
                continue
            lengths = [
                max(
                    interaction_path_length(a, c, other),
                    interaction_path_length(a, other, c),
                )
                for other in range(small_problem.n_clients)
            ]
            assert max(lengths) < d_max - 1e-12


class TestAverage:
    def test_matches_bruteforce(self, small_problem):
        rng = np.random.default_rng(5)
        arr = rng.integers(0, small_problem.n_servers, small_problem.n_clients)
        a = Assignment(small_problem, arr)
        n = small_problem.n_clients
        total = sum(
            interaction_path_length(a, i, j) for i in range(n) for j in range(n)
        )
        assert average_interaction_path_length(a) == pytest.approx(total / n**2)

    def test_average_below_max(self, small_problem):
        rng = np.random.default_rng(6)
        arr = rng.integers(0, small_problem.n_servers, small_problem.n_clients)
        a = Assignment(small_problem, arr)
        assert average_interaction_path_length(a) <= max_interaction_path_length(a)


class TestNormalized:
    def test_normalization(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        d = max_interaction_path_length(a)
        assert normalized_interactivity(a, d) == pytest.approx(1.0)
        assert normalized_interactivity(a, d / 2) == pytest.approx(2.0)

    def test_nonpositive_bound_rejected(self, tiny_problem):
        a = Assignment(tiny_problem, [0, 0, 1, 1, 1])
        with pytest.raises(ValueError):
            normalized_interactivity(a, 0.0)


class TestPerClientInteractivity:
    def test_matches_bruteforce(self, small_problem):
        from repro.core.metrics import per_client_interactivity

        rng = np.random.default_rng(7)
        arr = rng.integers(0, small_problem.n_servers, small_problem.n_clients)
        a = Assignment(small_problem, arr)
        fast = per_client_interactivity(a)
        n = small_problem.n_clients
        for c in range(n):
            slow = max(
                max(
                    interaction_path_length(a, c, other),
                    interaction_path_length(a, other, c),
                )
                for other in range(n)
            )
            assert fast[c] == pytest.approx(slow)

    def test_max_equals_d(self, small_problem):
        from repro.core.metrics import per_client_interactivity

        rng = np.random.default_rng(8)
        arr = rng.integers(0, small_problem.n_servers, small_problem.n_clients)
        a = Assignment(small_problem, arr)
        assert per_client_interactivity(a).max() == pytest.approx(
            max_interaction_path_length(a)
        )

    def test_argmax_clients_match_longest_path_set(self, small_problem):
        from repro.core.metrics import per_client_interactivity

        rng = np.random.default_rng(9)
        arr = rng.integers(0, small_problem.n_servers, small_problem.n_clients)
        a = Assignment(small_problem, arr)
        values = per_client_interactivity(a)
        d = max_interaction_path_length(a)
        from_values = set(np.flatnonzero(values >= d - 1e-9).tolist())
        from_paths = set(clients_on_longest_paths(a).tolist())
        assert from_values == from_paths
