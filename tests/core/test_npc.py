"""Tests for repro.core.npc (Theorem 1's set-cover reduction)."""

import itertools

import numpy as np
import pytest

from repro.core import (
    Assignment,
    REDUCTION_BOUND,
    SetCoverInstance,
    assignment_from_cover,
    cover_from_assignment,
    max_interaction_path_length,
    reduce_set_cover_to_cap,
    solve_gadget_bruteforce,
    verify_reduction_roundtrip,
)


@pytest.fixture
def paper_instance():
    """The instance of the paper's Fig. 3: P = {p1..p4}, Q1={p1},
    Q2={p2}, Q3={p3,p4}."""
    return SetCoverInstance.from_lists(4, [[0], [1], [2, 3]])


class TestSetCoverInstance:
    def test_valid_instance(self, paper_instance):
        assert paper_instance.universe == 4
        assert paper_instance.n_subsets == 3

    def test_rejects_uncovered_elements(self):
        with pytest.raises(ValueError):
            SetCoverInstance.from_lists(3, [[0], [1]])

    def test_rejects_empty_subset(self):
        with pytest.raises(ValueError):
            SetCoverInstance.from_lists(2, [[0, 1], []])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SetCoverInstance.from_lists(2, [[0, 5]])

    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            SetCoverInstance.from_lists(0, [[0]])

    def test_is_cover(self, paper_instance):
        assert paper_instance.is_cover([0, 1, 2])
        assert not paper_instance.is_cover([0, 1])

    def test_minimum_cover_bruteforce(self, paper_instance):
        cover = paper_instance.minimum_cover_bruteforce()
        assert len(cover) == 3  # all three subsets are needed
        assert paper_instance.is_cover(cover)

    def test_greedy_cover_is_cover(self, paper_instance):
        cover = paper_instance.greedy_cover()
        assert paper_instance.is_cover(cover)

    def test_greedy_cover_on_overlapping(self):
        instance = SetCoverInstance.from_lists(
            4, [[0, 1, 2], [2, 3], [0], [3]]
        )
        cover = instance.greedy_cover()
        assert instance.is_cover(cover)
        assert len(cover) == 2


class TestGadgetConstruction:
    def test_layout_counts(self, paper_instance):
        problem, layout = reduce_set_cover_to_cap(paper_instance, k=3)
        assert layout.n_clients == 4
        assert layout.m == 3
        assert layout.n_servers == 9
        assert problem.n_servers == 9
        assert problem.n_clients == 4

    def test_server_node_numbering(self, paper_instance):
        _problem, layout = reduce_set_cover_to_cap(paper_instance, k=2)
        assert layout.server_node(0, 0) == 4
        assert layout.server_node(1, 2) == 4 + 3 + 2
        assert layout.decode_server(layout.server_local_index(1, 2)) == (1, 2)

    def test_server_node_bounds(self, paper_instance):
        _problem, layout = reduce_set_cover_to_cap(paper_instance, k=2)
        with pytest.raises(IndexError):
            layout.server_node(2, 0)
        with pytest.raises(IndexError):
            layout.server_node(0, 3)

    def test_budget_bounds(self, paper_instance):
        with pytest.raises(ValueError):
            reduce_set_cover_to_cap(paper_instance, k=0)
        with pytest.raises(ValueError):
            reduce_set_cover_to_cap(paper_instance, k=4)

    def test_gadget_distances(self, paper_instance):
        problem, layout = reduce_set_cover_to_cap(paper_instance, k=2)
        m = problem.matrix
        # Client 0 (element p1) is linked to subset-0 servers in both groups.
        assert m.distance(0, layout.server_node(0, 0)) == 1.0
        assert m.distance(0, layout.server_node(1, 0)) == 1.0
        # Client 0 is NOT linked to subset-1 servers: shortest path is 2
        # (via an inter-group server link or another client's server).
        assert m.distance(0, layout.server_node(0, 1)) == 2.0
        # Servers in different groups are directly linked.
        assert (
            m.distance(layout.server_node(0, 0), layout.server_node(1, 2)) == 1.0
        )
        # Servers in the same group are at distance 2 (via another group).
        assert (
            m.distance(layout.server_node(0, 0), layout.server_node(0, 1)) == 2.0
        )


class TestWitnessConversion:
    def test_forward_witness_achieves_bound(self, paper_instance):
        problem, layout = reduce_set_cover_to_cap(paper_instance, k=3)
        cover = (0, 1, 2)
        assignment = assignment_from_cover(problem, layout, cover)
        assert max_interaction_path_length(assignment) <= REDUCTION_BOUND + 1e-9

    def test_forward_witness_rejects_oversized_cover(self, paper_instance):
        problem, layout = reduce_set_cover_to_cap(paper_instance, k=2)
        with pytest.raises(ValueError):
            assignment_from_cover(problem, layout, (0, 1, 2))

    def test_forward_witness_rejects_non_cover(self, paper_instance):
        problem, layout = reduce_set_cover_to_cap(paper_instance, k=3)
        with pytest.raises(ValueError):
            assignment_from_cover(problem, layout, (0, 1))

    def test_backward_witness(self, paper_instance):
        problem, layout = reduce_set_cover_to_cap(paper_instance, k=3)
        witness = solve_gadget_bruteforce(problem)
        assert witness is not None
        cover = cover_from_assignment(layout, witness)
        assert len(cover) <= 3
        assert paper_instance.is_cover(cover)


class TestTheoremBothDirections:
    def test_paper_instance_roundtrips(self, paper_instance):
        assert verify_reduction_roundtrip(paper_instance, 3)

    def test_no_small_cover_means_no_assignment(self, paper_instance):
        # The minimum cover has size 3; with K = 2 no assignment with
        # D <= 3 can exist.
        problem, _layout = reduce_set_cover_to_cap(paper_instance, k=2)
        assert solve_gadget_bruteforce(problem) is None
        assert verify_reduction_roundtrip(paper_instance, 2)

    def test_exhaustive_small_family(self):
        # All set-cover instances with 3 elements and subsets drawn from
        # a fixed pool, budgets 2..3.
        pool = [
            frozenset(s)
            for s in ([0], [1], [2], [0, 1], [1, 2], [0, 2], [0, 1, 2])
        ]
        rng = np.random.default_rng(0)
        for _ in range(8):
            size = int(rng.integers(2, 5))
            subsets = [pool[i] for i in rng.choice(len(pool), size, replace=False)]
            if len(frozenset().union(*subsets)) != 3:
                continue
            instance = SetCoverInstance(3, tuple(subsets))
            for k in (2, min(3, instance.n_subsets)):
                if k < 1 or k > instance.n_subsets:
                    continue
                assert verify_reduction_roundtrip(instance, k), (
                    f"roundtrip failed for {subsets} k={k}"
                )

    def test_singleton_universe(self):
        instance = SetCoverInstance.from_lists(1, [[0], [0]])
        assert verify_reduction_roundtrip(instance, 2)
