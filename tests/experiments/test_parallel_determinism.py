"""The determinism contract: worker count never changes results.

Every figure and the claims checklist must produce byte-identical JSON
payloads whether trials run inline (``workers=0``), on one worker, or
on several — the ``--workers`` knob is a pure throughput control.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    ExperimentProfile,
    dataset_for,
    fig7,
    fig8,
    fig9,
    fig10,
    run_claims_for_profile,
    to_jsonable,
)
from repro.experiments.ablations import (
    ablation_dga_initial,
    ablation_greedy_cost,
    ablation_placement_strategies,
)
from repro.experiments.cross_dataset import compare_datasets
from repro.experiments.scaling import scale_sweep
from repro.parallel import TrialPool

WORKER_COUNTS = (0, 1, 4)


@pytest.fixture(scope="module")
def tiny_profile() -> ExperimentProfile:
    return ExperimentProfile(
        name="determinism-test",
        n_nodes=60,
        n_random_runs=2,
        server_counts=(5, 10),
        fixed_servers=8,
        fig8_runs=4,
        capacities=(10, 20),
        seed=99,
    )


@pytest.fixture(scope="module")
def tiny_matrix(tiny_profile):
    return dataset_for(tiny_profile)


def _figure_payloads(prof, matrix, pool) -> str:
    body = {
        "fig7": to_jsonable(fig7(prof, "random", matrix=matrix, pool=pool)),
        "fig7_kc": to_jsonable(
            fig7(prof, "k-center-b", matrix=matrix, pool=pool)
        ),
        "fig8": to_jsonable(fig8(prof, matrix=matrix, pool=pool)),
        "fig9": to_jsonable(fig9(prof, matrix=matrix, pool=pool)),
        "fig10": to_jsonable(fig10(prof, "random", matrix=matrix, pool=pool)),
    }
    return json.dumps(body, sort_keys=True)


def test_figures_identical_across_worker_counts(tiny_profile, tiny_matrix):
    payloads = {}
    for workers in WORKER_COUNTS:
        with TrialPool(workers) as pool:
            payloads[workers] = _figure_payloads(
                tiny_profile, tiny_matrix, pool
            )
    reference = payloads[WORKER_COUNTS[0]]
    for workers, payload in payloads.items():
        assert payload == reference, (
            f"workers={workers} produced a different figure payload"
        )


def test_claims_identical_across_worker_counts(tiny_profile, tiny_matrix):
    results = {}
    for workers in WORKER_COUNTS:
        with TrialPool(workers) as pool:
            results[workers] = run_claims_for_profile(
                tiny_profile, matrix=tiny_matrix, pool=pool
            )
    reference = results[WORKER_COUNTS[0]]
    for workers, claims in results.items():
        assert claims == reference, (
            f"workers={workers} produced different claim results"
        )


def test_scale_sweep_identical_across_worker_counts():
    results = {}
    for workers in (0, 2):
        with TrialPool(workers) as pool:
            results[workers] = scale_sweep(
                sizes=(40, 60),
                algorithms=("nearest-server", "distributed-greedy"),
                n_runs=2,
                seed=5,
                pool=pool,
            )
    assert results[0] == results[2]


def test_ablations_identical_across_worker_counts(tiny_matrix):
    for ablation in (
        ablation_dga_initial,
        ablation_greedy_cost,
        ablation_placement_strategies,
    ):
        results = {}
        for workers in (0, 2):
            with TrialPool(workers) as pool:
                results[workers] = ablation(
                    tiny_matrix, n_servers=6, n_runs=2, seed=3, pool=pool
                )
        assert results[0] == results[2], ablation.__name__


def test_cross_dataset_identical_across_worker_counts():
    results = {}
    for workers in (0, 2):
        with TrialPool(workers) as pool:
            results[workers] = compare_datasets(
                n_nodes=50,
                server_counts=(5, 10),
                algorithms=("nearest-server", "greedy"),
                n_runs=2,
                seed=1,
                pool=pool,
            )
    assert results[0] == results[2]
