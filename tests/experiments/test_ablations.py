"""Tests for the ablation studies (small scale)."""

import pytest

from repro.datasets import synthesize_meridian_like
from repro.experiments.ablations import (
    AblationResult,
    ablation_dga_initial,
    ablation_estimated_latencies,
    ablation_greedy_cost,
    ablation_placement_strategies,
    ablation_triangle_violations,
)


@pytest.fixture(scope="module")
def matrix():
    return synthesize_meridian_like(90, seed=2)


class TestResultObject:
    def test_render_and_column(self):
        result = AblationResult(
            title="t", headers=("a", "b"), rows=((1, 2.0), (3, 4.0))
        )
        text = result.render()
        assert "t" in text and "a" in text
        assert result.column("b") == [2.0, 4.0]

    def test_unknown_column(self):
        result = AblationResult(title="t", headers=("a",), rows=((1,),))
        with pytest.raises(ValueError):
            result.column("zzz")


class TestDgaInitial:
    def test_rows_and_reproducibility(self, matrix):
        r1 = ablation_dga_initial(matrix, n_servers=8, n_runs=2, seed=0)
        r2 = ablation_dga_initial(matrix, n_servers=8, n_runs=2, seed=0)
        assert r1.rows == r2.rows
        assert len(r1.rows) == 4
        # All final norms are >= 1 (normalized against the bound).
        for value in r1.column("final norm (mean)"):
            assert value >= 1.0 - 1e-9

    def test_random_start_needs_more_moves(self, matrix):
        result = ablation_dga_initial(matrix, n_servers=8, n_runs=3, seed=1)
        by_name = {row[0]: row for row in result.rows}
        assert by_name["random"][3] > by_name["nearest-server"][3]


class TestGreedyCost:
    def test_two_variants(self, matrix):
        result = ablation_greedy_cost(matrix, n_servers=8, n_runs=3, seed=0)
        names = result.column("variant")
        assert names == ["greedy", "greedy-absolute"]
        for value in result.column("norm (mean)"):
            assert value >= 1.0 - 1e-9


class TestTriangle:
    def test_violation_rate_grows_with_spikes(self):
        result = ablation_triangle_violations(
            n_nodes=60,
            n_servers=6,
            spike_fractions=(0.0, 0.15),
            n_runs=2,
            seed=0,
        )
        rates = result.column("violation rate")
        assert rates[1] > rates[0]

    def test_nsa_gap_grows_with_violations(self):
        result = ablation_triangle_violations(
            n_nodes=60,
            n_servers=6,
            spike_fractions=(0.0, 0.2),
            n_runs=3,
            seed=1,
        )
        gaps = result.column("NSA/DGA")
        assert gaps[-1] > gaps[0]


class TestEstimatedLatencies:
    def test_penalties_at_least_reported(self, matrix):
        result = ablation_estimated_latencies(
            matrix, n_servers=8, embedding_rounds=10, seed=0
        )
        assert len(result.rows) == 3
        # Estimated-latency assignments are evaluated on the true
        # matrix; they can never beat the lower bound.
        for value in result.column("estimated norm"):
            assert value >= 1.0 - 1e-9


class TestPlacementStrategies:
    def test_all_strategies_present(self, matrix):
        result = ablation_placement_strategies(
            matrix, n_servers=8, n_runs=2, seed=0
        )
        names = set(result.column("placement"))
        assert {
            "random",
            "best-of-16-random",
            "k-center-a",
            "k-center-b",
            "k-median",
            "medoids",
        } == names


class TestMeasurementError:
    def test_penalty_shrinks_with_probes(self, matrix):
        from repro.experiments.ablations import ablation_measurement_error

        result = ablation_measurement_error(
            matrix, n_servers=8, probes_sweep=(1, 10), seed=0
        )
        errors = result.column("median rel. error")
        # Truth row has zero error; more probes give lower error.
        assert errors[0] == 0.0
        assert errors[2] < errors[1]
        # Normalized interactivity is never below the truth baseline by
        # more than noise.
        norms = result.column("norm")
        assert all(n >= 1.0 - 1e-9 for n in norms)
