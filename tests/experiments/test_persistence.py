"""Tests for JSON persistence of figure results."""

import json

import pytest

from repro.errors import DatasetError
from repro.experiments import (
    dataset_for,
    fig7,
    fig8,
    fig9,
    fig10,
    load_result,
    profile,
    save_result,
)
from repro.experiments.figures import Fig7Series, Fig8Series, Fig9Trace, Fig10Series
from repro.experiments.persistence import from_jsonable, to_jsonable

QUICK = profile("quick")


@pytest.fixture(scope="module")
def matrix():
    return dataset_for(QUICK)


class TestRoundTrips:
    def test_fig7(self, tmp_path, matrix):
        series = fig7(QUICK, "random", matrix=matrix)
        path = tmp_path / "f7.json"
        save_result(path, series)
        loaded = load_result(path)
        assert isinstance(loaded, Fig7Series)
        assert loaded.placement == series.placement
        assert loaded.server_counts == series.server_counts
        for name in series.points[0].mean:
            assert loaded.series(name) == pytest.approx(series.series(name))

    def test_fig8(self, tmp_path, matrix):
        series = fig8(QUICK, matrix=matrix)
        path = tmp_path / "f8.json"
        save_result(path, series)
        loaded = load_result(path)
        assert isinstance(loaded, Fig8Series)
        assert loaded.n_servers == series.n_servers
        assert loaded.samples == {
            k: pytest.approx(v) for k, v in series.samples.items()
        }

    def test_fig9(self, tmp_path, matrix):
        traces = fig9(QUICK, matrix=matrix)
        path = tmp_path / "f9.json"
        save_result(path, traces)
        loaded = load_result(path)
        assert isinstance(loaded, list)
        assert all(isinstance(t, Fig9Trace) for t in loaded)
        assert [t.placement for t in loaded] == [t.placement for t in traces]
        assert loaded[0].normalized_trace == pytest.approx(
            traces[0].normalized_trace
        )

    def test_fig10(self, tmp_path, matrix):
        series = fig10(QUICK, "random", matrix=matrix)
        path = tmp_path / "f10.json"
        save_result(path, series)
        loaded = load_result(path)
        assert isinstance(loaded, Fig10Series)
        assert loaded.capacities == series.capacities


class TestErrors:
    def test_unknown_kind(self):
        with pytest.raises(DatasetError):
            from_jsonable({"schema_version": 1, "kind": "fig99"})

    def test_wrong_schema_version(self):
        with pytest.raises(DatasetError):
            from_jsonable({"schema_version": 999, "kind": "fig7"})

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ not json")
        with pytest.raises(DatasetError):
            load_result(path)

    def test_non_object_top_level(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(DatasetError):
            load_result(path)

    def test_files_are_human_readable(self, tmp_path, matrix):
        series = fig7(QUICK, "random", matrix=matrix)
        path = tmp_path / "f7.json"
        save_result(path, series)
        data = json.loads(path.read_text())
        assert data["kind"] == "fig7"
        assert data["schema_version"] == 1


class TestAtomicity:
    def test_no_tmp_file_left_behind(self, tmp_path, matrix):
        series = fig7(QUICK, "random", matrix=matrix)
        path = tmp_path / "f7.json"
        save_result(path, series)
        assert path.exists()
        assert list(tmp_path.iterdir()) == [path]

    def test_failed_write_preserves_previous_file(self, tmp_path, matrix):
        series = fig7(QUICK, "random", matrix=matrix)
        path = tmp_path / "f7.json"
        save_result(path, series)
        original = path.read_text()
        # A non-serializable result fails inside to_jsonable, before any
        # write; a partial dump must never clobber the good file either
        # way, and no .tmp sibling may survive the failure.
        with pytest.raises(TypeError):
            save_result(path, object())
        assert path.read_text() == original
        assert not (tmp_path / "f7.json.tmp").exists()

    def test_missing_schema_version_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"kind": "fig7", "points": []}))
        with pytest.raises(DatasetError, match="schema version"):
            load_result(path)

    def test_truncated_file_rejected_with_clear_message(self, tmp_path, matrix):
        series = fig7(QUICK, "random", matrix=matrix)
        path = tmp_path / "f7.json"
        save_result(path, series)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        with pytest.raises(DatasetError, match="invalid JSON"):
            load_result(path)


def _hammer_save(path: str, writer: int, n_writes: int) -> None:
    """Worker for the concurrent-writer test: repeated saves to one path."""
    from repro.experiments.persistence import BenchTable, save_result

    for i in range(n_writes):
        table = BenchTable(
            name="concurrent",
            columns=("writer", "iteration"),
            rows=((writer, i),),
        )
        save_result(path, table)


class TestConcurrentWriters:
    def test_parallel_saves_never_corrupt(self, tmp_path):
        """N processes hammering one path: the survivor is always valid."""
        import multiprocessing

        from repro.experiments.persistence import BenchTable

        path = tmp_path / "shared.json"
        ctx = multiprocessing.get_context()
        n_writers, n_writes = 4, 12
        procs = [
            ctx.Process(target=_hammer_save, args=(str(path), w, n_writes))
            for w in range(n_writers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        # Last rename won: a complete document from *some* writer, and
        # no staging files left behind.
        loaded = load_result(path)
        assert isinstance(loaded, BenchTable)
        assert loaded.name == "concurrent"
        (row,) = loaded.rows
        assert row[0] in range(n_writers) and row[1] == n_writes - 1
        assert list(tmp_path.iterdir()) == [path]

    def test_tmp_names_are_unique_per_call(self, tmp_path, matrix):
        """The staging-name scheme embeds pid + a per-process counter."""
        import re

        from repro.experiments import persistence

        seen = []
        original_replace = persistence.os.replace

        def spy(src, dst):
            seen.append(src)
            return original_replace(src, dst)

        series = fig7(QUICK, "random", matrix=matrix)
        path = tmp_path / "f7.json"
        persistence.os.replace = spy
        try:
            save_result(path, series)
            save_result(path, series)
        finally:
            persistence.os.replace = original_replace
        assert len(seen) == 2 and seen[0] != seen[1]
        pattern = re.compile(rf"{re.escape(str(path))}\.\d+-\d+\.tmp$")
        for name in seen:
            assert pattern.match(name), name
