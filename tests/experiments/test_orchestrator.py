"""Tests for the full-evaluation orchestrator."""

import pytest

from repro.experiments import (
    EvaluationBundle,
    load_result,
    profile,
    run_full_evaluation,
)

QUICK = profile("quick")


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    out = tmp_path_factory.mktemp("report")
    return run_full_evaluation(QUICK, out_dir=out, include_ablations=True), out


class TestBundle:
    def test_all_sections_present(self, bundle):
        result, _out = bundle
        assert set(result.fig7_panels) == {"random", "k-center-a", "k-center-b"}
        assert set(result.fig10_panels) == {"random", "k-center-a", "k-center-b"}
        assert len(result.fig9_traces) == 3
        assert len(result.claims) == 6
        assert len(result.ablations) == 3

    def test_claims_hold(self, bundle):
        result, _out = bundle
        assert result.all_claims_hold

    def test_render_contains_everything(self, bundle):
        result, _out = bundle
        text = result.render()
        for marker in ("Fig.7", "Fig.8", "Fig.9", "Fig.10", "Paper claims", "Ablation"):
            assert marker in text

    def test_files_written(self, bundle):
        _result, out = bundle
        expected = {
            "fig7_random.json",
            "fig7_k-center-a.json",
            "fig7_k-center-b.json",
            "fig8.json",
            "fig9.json",
            "fig10_random.json",
            "fig10_k-center-a.json",
            "fig10_k-center-b.json",
            "report.txt",
        }
        assert expected <= {p.name for p in out.iterdir()}

    def test_written_series_load_back(self, bundle):
        result, out = bundle
        loaded = load_result(out / "fig7_random.json")
        assert loaded.server_counts == result.fig7_panels["random"].server_counts

    def test_progress_callback_invoked(self):
        messages = []
        run_full_evaluation(QUICK, progress=messages.append)
        assert any("fig 7" in m for m in messages)
        assert any("claims" in m for m in messages)


class TestRenderWithoutAblations:
    def test_minimal_bundle_renders(self):
        bundle = run_full_evaluation(QUICK)
        text = bundle.render()
        assert "Ablation" not in text
        assert "Paper claims" in text
        assert "(trend over" in text  # sparkline summary present
