"""Tests for the claims checks and text reporting."""

import pytest

from repro.experiments import (
    dataset_for,
    fig7,
    fig8,
    fig9,
    fig10,
    profile,
    render_claims,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
    run_all_claims,
)
from repro.experiments.reporting import format_table

QUICK = profile("quick")


@pytest.fixture(scope="module")
def figures():
    matrix = dataset_for(QUICK)
    return {
        "matrix": matrix,
        "fig7": fig7(QUICK, "random", matrix=matrix),
        "fig8": fig8(QUICK, matrix=matrix),
        "fig9": fig9(QUICK, matrix=matrix),
        "fig10": fig10(QUICK, "random", matrix=matrix),
    }


class TestClaims:
    def test_all_claims_hold_at_quick_scale(self, figures):
        claims = run_all_claims(
            figures["fig7"],
            figures["fig8"],
            figures["fig9"],
            figures["fig10"],
            n_clients=figures["matrix"].n_nodes,
        )
        failing = [c for c in claims if not c.holds]
        assert not failing, f"claims failed: {[c.claim for c in failing]}"

    def test_claim_count_and_order(self, figures):
        claims = run_all_claims(
            figures["fig7"],
            figures["fig8"],
            figures["fig9"],
            figures["fig10"],
            n_clients=figures["matrix"].n_nodes,
        )
        assert len(claims) == 6
        assert "outperform" in claims[0].claim


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.500" in table

    def test_render_fig7(self, figures):
        text = render_fig7(figures["fig7"])
        assert "Fig.7" in text
        assert "servers" in text
        assert "nearest-server" in text

    def test_render_fig8(self, figures):
        text = render_fig8(figures["fig8"])
        assert "Fig.8" in text
        assert "P(>2)" in text

    def test_render_fig9(self, figures):
        text = render_fig9(figures["fig9"])
        assert "Fig.9" in text
        assert "k-center-a" in text

    def test_render_fig10(self, figures):
        text = render_fig10(figures["fig10"])
        assert "Fig.10" in text
        assert "capacity" in text

    def test_render_claims(self, figures):
        claims = run_all_claims(
            figures["fig7"],
            figures["fig8"],
            figures["fig9"],
            figures["fig10"],
            n_clients=figures["matrix"].n_nodes,
        )
        text = render_claims(claims)
        assert "PASS" in text
