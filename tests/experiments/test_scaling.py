"""Tests for the scale sweep."""

import pytest

from repro.experiments.scaling import ScalePoint, render_scale_sweep, scale_sweep


class TestScaleSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return scale_sweep(sizes=(60, 120), n_runs=2, seed=0)

    def test_point_structure(self, points):
        assert [p.n_nodes for p in points] == [60, 120]
        for point in points:
            assert point.n_servers == max(2, round(0.2 * point.n_nodes))
            assert set(point.normalized) == {
                "nearest-server",
                "greedy",
                "distributed-greedy",
            }
            for value in point.normalized.values():
                assert value >= 1.0 - 1e-9
            assert point.nsa_over_dga >= 1.0 - 1e-9

    def test_render(self, points):
        text = render_scale_sweep(points)
        assert "Scale sweep" in text
        assert "NSA/DGA gap" in text

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            scale_sweep(sizes=(50,), server_fraction=0.0)

    def test_reproducible(self):
        a = scale_sweep(sizes=(60,), n_runs=2, seed=3)
        b = scale_sweep(sizes=(60,), n_runs=2, seed=3)
        assert a[0].normalized == b[0].normalized
