"""Tests for the ASCII chart renderers."""

import pytest

from repro.experiments.ascii_charts import (
    bar_chart,
    multi_series_chart,
    render_series_summary,
    sparkline,
)


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_extremes_use_extreme_blocks(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_rows_and_scaling(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == ""

    def test_unit_suffix(self):
        assert "ms" in bar_chart(["x"], [3.0], unit="ms")


class TestMultiSeries:
    def test_structure(self):
        chart = multi_series_chart(
            [10, 20, 30], {"a": [1, 2, 3], "b": [3, 2, 1]}, height=5
        )
        lines = chart.splitlines()
        assert len(lines) == 5 + 3  # grid + axis + x labels + legend
        assert "a" in lines[-1] and "b" in lines[-1]

    def test_mismatched_series_length(self):
        with pytest.raises(ValueError):
            multi_series_chart([1, 2], {"a": [1.0]})

    def test_empty_series(self):
        assert multi_series_chart([1], {}) == ""


class TestSeriesSummary:
    def test_contains_all_series(self):
        text = render_series_summary(
            "Title", [1, 2], {"nsa": [1.5, 2.0], "dga": [1.2, 1.3]}
        )
        assert "Title" in text
        assert "nsa" in text and "dga" in text
        assert "[1.200 .. 1.300]" in text
