"""Tests for experiment profiles."""

import pytest

from repro.experiments.config import (
    PROFILES,
    ExperimentProfile,
    profile,
    profile_from_env,
)


class TestProfiles:
    def test_builtin_profiles_exist(self):
        assert {"quick", "default", "paper"} <= set(PROFILES)

    def test_paper_profile_matches_paper_parameters(self):
        p = profile("paper")
        assert p.n_nodes == 1796
        assert p.n_random_runs == 1000
        assert p.server_counts == tuple(range(20, 101, 10))
        assert p.fixed_servers == 80
        assert p.capacities == (25, 50, 100, 150, 200, 250)

    def test_unknown_profile_lists_options(self):
        with pytest.raises(KeyError, match="available"):
            profile("huge")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "default")
        assert profile_from_env("quick").name == "default"

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profile_from_env("quick").name == "quick"


class TestValidation:
    def test_rejects_more_servers_than_nodes(self):
        with pytest.raises(ValueError):
            ExperimentProfile(
                name="bad",
                n_nodes=10,
                n_random_runs=1,
                server_counts=(20,),
                fixed_servers=5,
                fig8_runs=1,
                capacities=(25,),
            )

    def test_rejects_unknown_dataset(self):
        with pytest.raises(ValueError):
            ExperimentProfile(
                name="bad",
                n_nodes=50,
                n_random_runs=1,
                server_counts=(5,),
                fixed_servers=5,
                fig8_runs=1,
                capacities=(25,),
                dataset="planetlab",
            )


class TestScaledCapacities:
    def test_paper_scale_identity(self):
        p = profile("paper")
        assert p.scaled_capacities() == p.capacities

    def test_small_scale_preserves_pressure(self):
        p = profile("quick")
        scaled = p.scaled_capacities()
        assert len(scaled) == len(p.capacities)
        # The tightest capacity must still admit a feasible assignment.
        assert scaled[0] * p.fixed_servers >= p.n_nodes
        # Relative pressure preserved: ratio of extremes roughly 10x.
        assert scaled[-1] / scaled[0] == pytest.approx(250 / 25, rel=0.45)
