"""Tests for the LaTeX table renderers."""

import pytest

from repro.experiments import dataset_for, fig7, fig8, fig9, fig10, profile
from repro.experiments.latex import (
    latex_fig7,
    latex_fig8,
    latex_fig9,
    latex_fig10,
    latex_table,
)

QUICK = profile("quick")


@pytest.fixture(scope="module")
def matrix():
    return dataset_for(QUICK)


class TestLatexTable:
    def test_structure(self):
        out = latex_table(
            ["a", "b"], [[1, 2.5]], caption="Cap", label="tab:x"
        )
        assert r"\begin{table}" in out
        assert r"\toprule" in out
        assert r"\caption{Cap}" in out
        assert r"\label{tab:x}" in out
        assert "2.500" in out

    def test_escaping(self):
        out = latex_table(["a_b", "c%d"], [["x&y", 1]])
        assert r"a\_b" in out
        assert r"c\%d" in out
        assert r"x\&y" in out

    def test_no_caption_no_label(self):
        out = latex_table(["a"], [[1]])
        assert r"\caption" not in out
        assert r"\label" not in out


class TestFigureRenderers:
    def test_fig7(self, matrix):
        out = latex_fig7(fig7(QUICK, "random", matrix=matrix))
        assert "Servers" in out
        assert "nearest-server" in out
        assert r"\bottomrule" in out

    def test_fig8(self, matrix):
        out = latex_fig8(fig8(QUICK, matrix=matrix))
        assert "$P(>2)$" in out
        assert r"\%" in out

    def test_fig9(self, matrix):
        out = latex_fig9(fig9(QUICK, matrix=matrix))
        assert "Placement" in out
        assert "k-center-a" in out

    def test_fig10(self, matrix):
        out = latex_fig10(fig10(QUICK, "random", matrix=matrix))
        assert "Capacity" in out

    def test_custom_caption_override(self, matrix):
        out = latex_fig7(
            fig7(QUICK, "random", matrix=matrix), caption="Mine", label="tab:f7"
        )
        assert r"\caption{Mine}" in out
