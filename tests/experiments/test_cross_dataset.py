"""Tests for the cross-dataset 'similar results' comparison."""

import pytest

from repro.analysis.stats import spearman_rank_correlation
from repro.experiments.cross_dataset import (
    CrossDatasetResult,
    compare_datasets,
    render_cross_dataset,
)


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman_rank_correlation([1, 2, 3], [5, 6, 9]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman_rank_correlation([1, 2, 3], [9, 6, 5]) == pytest.approx(-1.0)

    def test_ties_handled(self):
        value = spearman_rank_correlation([1, 2, 2, 3], [1, 2, 2, 3])
        assert value == pytest.approx(1.0)

    def test_constant_series(self):
        assert spearman_rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            spearman_rank_correlation([1], [1])


class TestCompareDatasets:
    @pytest.fixture(scope="class")
    def result(self):
        return compare_datasets(
            n_nodes=100, server_counts=(10, 20), n_runs=3, seed=0
        )

    def test_structure(self, result):
        assert set(result.series) == {"meridian", "mit"}
        for per in result.series.values():
            for values in per.values():
                assert len(values) == 2
        assert -1.0 <= result.rank_correlation <= 1.0

    def test_datasets_similar(self, result):
        # The operationalized form of the paper's remark.
        assert result.similar(min_correlation=0.6, max_level_gap=0.4)

    def test_level_ratios_near_one(self, result):
        for ratio in result.level_ratios.values():
            assert 0.5 < ratio < 2.0

    def test_render(self, result):
        text = render_cross_dataset(result)
        assert "rank correlation" in text
        assert "meridian" in text and "mit" in text

    def test_reproducible(self):
        a = compare_datasets(n_nodes=80, server_counts=(8,), n_runs=2, seed=1)
        b = compare_datasets(n_nodes=80, server_counts=(8,), n_runs=2, seed=1)
        assert a.rank_correlation == b.rank_correlation
        assert a.level_ratios == b.level_ratios
