"""Tests for the figure generators (quick profile)."""

import numpy as np
import pytest

from repro.experiments import (
    dataset_for,
    fig7,
    fig8,
    fig9,
    fig10,
    profile,
)

QUICK = profile("quick")


@pytest.fixture(scope="module")
def matrix():
    return dataset_for(QUICK)


@pytest.fixture(scope="module")
def fig7_random(matrix):
    return fig7(QUICK, "random", matrix=matrix)


class TestFig7:
    def test_axis_matches_profile(self, fig7_random):
        assert fig7_random.server_counts == list(QUICK.server_counts)

    def test_all_algorithms_present(self, fig7_random):
        for name in (
            "nearest-server",
            "longest-first-batch",
            "greedy",
            "distributed-greedy",
        ):
            series = fig7_random.series(name)
            assert len(series) == len(QUICK.server_counts)
            assert all(v >= 1.0 - 1e-9 for v in series)

    def test_ordering_shape(self, fig7_random):
        # Who wins: greedy algorithms beat NSA on average.
        nsa = np.mean(fig7_random.series("nearest-server"))
        dga = np.mean(fig7_random.series("distributed-greedy"))
        assert dga < nsa

    def test_kcenter_panels(self, matrix):
        series = fig7(QUICK, "k-center-a", matrix=matrix)
        assert series.placement == "k-center-a"
        assert all(p.n_runs == 1 for p in series.points)


class TestFig8:
    def test_sample_counts(self, matrix):
        series = fig8(QUICK, matrix=matrix)
        for values in series.samples.values():
            assert len(values) == QUICK.fig8_runs

    def test_cdf_shape(self, matrix):
        series = fig8(QUICK, matrix=matrix)
        x, f = series.cdf("nearest-server")
        assert np.all(np.diff(x) >= 0)
        assert f[-1] == pytest.approx(1.0)

    def test_fraction_above(self, matrix):
        series = fig8(QUICK, matrix=matrix)
        assert 0.0 <= series.fraction_above("greedy", 2.0) <= 1.0
        assert series.fraction_above("greedy", 0.0) == 1.0


class TestFig9:
    def test_traces_for_all_placements(self, matrix):
        traces = fig9(QUICK, matrix=matrix)
        assert [t.placement for t in traces] == [
            "random",
            "k-center-a",
            "k-center-b",
        ]
        for t in traces:
            assert t.normalized_trace[0] >= t.normalized_trace[-1] - 1e-9
            assert t.n_modifications == len(t.normalized_trace) - 1

    def test_improvement_fraction(self, matrix):
        traces = fig9(QUICK, matrix=matrix)
        for t in traces:
            assert t.improvement_fraction_at(0) == pytest.approx(0.0, abs=1e-9)
            assert t.improvement_fraction_at(10**6) == pytest.approx(1.0)


class TestFig10:
    def test_capacity_axis_scaled(self, matrix):
        series = fig10(QUICK, "random", matrix=matrix)
        assert series.capacities == list(QUICK.scaled_capacities())

    def test_looser_capacity_never_hurts_much(self, matrix):
        # The loosest capacity should be no worse than the tightest for
        # the paper's algorithms (averaged).
        series = fig10(QUICK, "random", matrix=matrix)
        for name in series.points[0].mean:
            vals = series.series(name)
            assert vals[-1] <= vals[0] + 0.25

    def test_capacitated_loads_feasible_by_construction(self, matrix):
        # fig10 uses Assignment validation internally; reaching here
        # without InvalidAssignmentError is the check. Assert shape.
        series = fig10(QUICK, "random", matrix=matrix)
        assert len(series.points) == len(QUICK.capacities)
