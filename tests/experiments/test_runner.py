"""Tests for the experiment runner."""

import numpy as np
import pytest

from repro.core import interaction_lower_bound
from repro.datasets.synthetic import small_world_latencies
from repro.experiments.runner import (
    PLACEMENT_NAMES,
    evaluate_instance,
    run_placement_sweep,
)


@pytest.fixture(scope="module")
def matrix():
    return small_world_latencies(60, seed=40)


class TestEvaluateInstance:
    def test_scores_all_algorithms(self, small_problem):
        result = evaluate_instance(
            small_problem, ["nearest-server", "greedy"], seed=0
        )
        assert {s.algorithm for s in result.scores} == {
            "nearest-server",
            "greedy",
        }
        for score in result.scores:
            assert score.max_path_length >= result.lower_bound - 1e-9
            assert score.normalized >= 1.0 - 1e-9
            assert score.seconds >= 0.0

    def test_lower_bound_reused(self, small_problem):
        lb = interaction_lower_bound(small_problem)
        result = evaluate_instance(
            small_problem, ["nearest-server"], lower_bound=lb
        )
        assert result.lower_bound == lb

    def test_normalized_mapping(self, small_problem):
        result = evaluate_instance(small_problem, ["greedy"])
        assert set(result.normalized()) == {"greedy"}


class TestSweep:
    def test_random_placement_runs_n_times(self, matrix):
        point, results = run_placement_sweep(
            matrix, "random", 6, ["nearest-server"], n_runs=4, seed=0
        )
        assert point.n_runs == 4
        assert len(results) == 4
        assert point.x == 6
        assert point.std["nearest-server"] >= 0.0

    def test_deterministic_placements_run_once(self, matrix):
        for name in ("k-center-a", "k-center-b"):
            point, results = run_placement_sweep(
                matrix, name, 6, ["nearest-server"], n_runs=10, seed=0
            )
            assert point.n_runs == 1
            assert len(results) == 1

    def test_reproducible(self, matrix):
        a, _ = run_placement_sweep(
            matrix, "random", 5, ["greedy"], n_runs=3, seed=7
        )
        b, _ = run_placement_sweep(
            matrix, "random", 5, ["greedy"], n_runs=3, seed=7
        )
        assert a.mean == b.mean

    def test_capacity_coordinate(self, matrix):
        point, _ = run_placement_sweep(
            matrix,
            "random",
            6,
            ["nearest-server"],
            n_runs=2,
            seed=0,
            capacity=15,
        )
        assert point.x == 15

    def test_unknown_placement(self, matrix):
        with pytest.raises(KeyError):
            run_placement_sweep(matrix, "grid", 5, ["greedy"], n_runs=1, seed=0)

    def test_placement_names_exposed(self):
        assert PLACEMENT_NAMES == ("random", "k-center-a", "k-center-b")
