"""Tests for the δ-feasibility knee experiment."""

import pytest

from repro.algorithms import greedy, nearest_server
from repro.core import ClientAssignmentProblem, OffsetSchedule
from repro.datasets.synthetic import small_world_latencies
from repro.errors import InfeasibleScheduleError
from repro.experiments.delta_sweep import delta_sweep, render_delta_sweep
from repro.placement import random_placement


@pytest.fixture(scope="module")
def assignment():
    matrix = small_world_latencies(25, seed=14)
    problem = ClientAssignmentProblem(matrix, random_placement(matrix, 3, seed=0))
    return greedy(problem)


class TestKnee:
    @pytest.fixture(scope="class")
    def points(self, assignment):
        return delta_sweep(assignment, seed=0)

    def test_zero_lateness_at_and_above_d(self, points):
        for p in points:
            if p.delta_ratio >= 1.0:
                assert p.late_messages == 0
                assert p.constraints_feasible

    def test_positive_lateness_below_d(self, points):
        below = [p for p in points if p.delta_ratio < 1.0]
        assert below
        for p in below:
            assert p.late_messages > 0
            assert not p.constraints_feasible

    def test_lateness_monotone_in_delta(self, points):
        rates = [p.late_rate for p in points]
        assert all(b <= a + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_render(self, points):
        text = render_delta_sweep(points)
        assert "delta/D" in text
        assert "knee" in text


class TestOptions:
    def test_empty_ratios_rejected(self, assignment):
        with pytest.raises(ValueError):
            delta_sweep(assignment, ratios=())

    def test_custom_operations(self, assignment):
        from repro.sim.workload import uniform_workload

        ops = uniform_workload(
            assignment.problem.n_clients, ops_per_client=1, seed=1
        )
        points = delta_sweep(assignment, ratios=(1.0,), operations=ops)
        assert points[0].late_messages == 0

    def test_works_for_any_algorithm(self):
        matrix = small_world_latencies(20, seed=15)
        problem = ClientAssignmentProblem(
            matrix, random_placement(matrix, 3, seed=1)
        )
        points = delta_sweep(nearest_server(problem), ratios=(0.9, 1.0), seed=2)
        assert points[0].late_messages > 0
        assert points[1].late_messages == 0


class TestNonStrictSchedule:
    def test_strict_default_rejects(self, assignment):
        from repro.core import max_interaction_path_length

        d = max_interaction_path_length(assignment)
        with pytest.raises(InfeasibleScheduleError):
            OffsetSchedule(assignment, delta=0.5 * d)

    def test_non_strict_reports_infeasible(self, assignment):
        from repro.core import max_interaction_path_length

        d = max_interaction_path_length(assignment)
        schedule = OffsetSchedule(assignment, delta=0.5 * d, strict=False)
        assert not schedule.check_constraints().feasible

    def test_nonpositive_delta_always_rejected(self, assignment):
        with pytest.raises(InfeasibleScheduleError):
            OffsetSchedule(assignment, delta=0.0, strict=False)
