"""Capacitated variants: constructed edge cases (§IV-E semantics)."""

import numpy as np
import pytest

from repro.algorithms import greedy, longest_first_batch, nearest_server
from repro.core import ClientAssignmentProblem, max_interaction_path_length
from repro.net.latency import LatencyMatrix


def hub_instance():
    """Five clients clustered around server 0, a far server 1.

    Uncapacitated, every algorithm sends all clients to server 0;
    capacities force spillover, exposing the truncation rules.
    """
    #        s0    s1    c0    c1    c2    c3    c4
    d = np.array(
        [
            [0.0, 50.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            [50.0, 0.0, 51.0, 52.0, 48.0, 47.0, 46.0],
            [1.0, 51.0, 0.0, 1.0, 2.0, 3.0, 4.0],
            [2.0, 52.0, 1.0, 0.0, 1.0, 2.0, 3.0],
            [3.0, 48.0, 2.0, 1.0, 0.0, 1.0, 2.0],
            [4.0, 47.0, 3.0, 2.0, 1.0, 0.0, 1.0],
            [5.0, 46.0, 4.0, 3.0, 2.0, 1.0, 0.0],
        ]
    )
    matrix = LatencyMatrix(d)
    return ClientAssignmentProblem(
        matrix, servers=[0, 1], clients=[2, 3, 4, 5, 6], capacities=[3, 5]
    )


class TestLfbTruncation:
    def test_farthest_client_kept_in_truncated_batch(self):
        problem = hub_instance()
        a = longest_first_batch(problem)
        assert a.respects_capacities()
        # The LFB driver is c4 (distance 5 to its nearest server s0);
        # the truncated batch must contain c4 itself.
        assert a.server_of_client(4) == 0

    def test_leftovers_respect_new_nearest(self):
        problem = hub_instance()
        a = longest_first_batch(problem)
        # Exactly 3 clients on s0 (its capacity), 2 spill to s1.
        loads = a.loads()
        assert loads[0] == 3
        assert loads[1] == 2


class TestGreedyTruncation:
    def test_capacity_respected_and_selected_client_assigned(self):
        problem = hub_instance()
        a = greedy(problem)
        assert a.respects_capacities()
        assert a.loads().sum() == 5

    def test_truncated_batch_farthest_is_selected_client(self):
        # The Δl bookkeeping requires the selected client to be the
        # farthest member of its (possibly truncated) batch: verify the
        # invariant post-hoc for every server.
        problem = hub_instance()
        a = greedy(problem)
        cs = problem.client_server
        for s in a.used_servers():
            members = np.flatnonzero(a.server_of == s)
            # farthest member distance must equal l(s) used internally
            farthest = cs[members, s].max()
            assert farthest == a.farthest_client_distance()[int(s)]


class TestNearestSpillover:
    def test_spill_goes_to_second_nearest(self):
        problem = hub_instance()
        a = nearest_server(problem)
        assert a.respects_capacities()
        # First three clients (index order) grab s0; the rest spill.
        assert list(a.server_of) == [0, 0, 0, 1, 1]


class TestExactFitStress:
    def test_capacity_one_per_server(self):
        # |C| == |S| with capacity 1: a perfect matching is forced.
        rng = np.random.default_rng(0)
        d = rng.uniform(1.0, 10.0, size=(8, 8))
        d = (d + d.T) / 2
        np.fill_diagonal(d, 0.0)
        matrix = LatencyMatrix(d)
        problem = ClientAssignmentProblem(
            matrix, servers=[0, 1, 2, 3], clients=[4, 5, 6, 7], capacities=1
        )
        for fn in (nearest_server, longest_first_batch, greedy):
            a = fn(problem)
            assert a.respects_capacities()
            assert sorted(a.server_of.tolist()) == [0, 1, 2, 3]

    def test_capacitated_never_beats_uncapacitated(self):
        problem = hub_instance()
        free = problem.uncapacitated()
        for fn in (nearest_server, longest_first_batch, greedy):
            d_cap = max_interaction_path_length(fn(problem))
            d_free = max_interaction_path_length(fn(free))
            assert d_cap >= d_free - 1e-9
