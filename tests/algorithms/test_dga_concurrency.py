"""Why Distributed-Greedy needs concurrency control (paper §IV-D).

The paper requires "a concurrency control mechanism ... to prevent
servers from performing assignment modifications simultaneously",
because each modification's benefit is computed assuming every other
client stays put. This module demonstrates the hazard concretely: an
instance where two clients on longest paths each have a move promising
``L(s') < D``, yet applying both moves *simultaneously* increases D —
while the sequential protocol (what we implement) is provably
non-increasing.
"""

import numpy as np
import pytest

from repro.algorithms import distributed_greedy_detailed, nearest_server
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    clients_on_longest_paths,
    max_interaction_path_length,
)
from repro.datasets.synthetic import small_world_latencies
from repro.placement import random_placement

# Pinned instance found by randomized search: see the docstring test
# below which re-derives the property rather than trusting magic
# numbers.
SEED = 5
CLIENT_A, CLIENT_B = 4, 17


def _dga_move_estimate(problem, server_of, client):
    """Replicate DGA's L(s') estimate for moving one client."""
    cs, ss = problem.client_server, problem.server_server
    sc = problem.matrix.values[np.ix_(problem.servers, problem.clients)]
    n_servers = problem.n_servers
    l_out = np.full(n_servers, -np.inf)
    l_in = np.full(n_servers, -np.inf)
    mask = np.ones(problem.n_clients, dtype=bool)
    mask[client] = False
    idx = np.flatnonzero(mask)
    np.maximum.at(l_out, server_of[idx], cs[idx, server_of[idx]])
    np.maximum.at(l_in, server_of[idx], sc[server_of[idx], idx])
    best_in = (ss + l_in[None, :]).max(axis=1)
    best_out = (l_out[:, None] + ss).max(axis=0)
    l_candidates = np.maximum(cs[client, :] + best_in, best_out + sc[:, client])
    l_candidates = np.maximum(l_candidates, cs[client, :] + sc[:, client])
    return int(np.argmin(l_candidates)), float(l_candidates.min())


@pytest.fixture(scope="module")
def instance():
    matrix = small_world_latencies(20, seed=SEED)
    servers = random_placement(matrix, 4, seed=SEED)
    problem = ClientAssignmentProblem(matrix, servers)
    return problem, nearest_server(problem)


class TestConcurrentModificationHazard:
    def test_individual_moves_promise_improvement(self, instance):
        problem, assignment = instance
        d = max_interaction_path_length(assignment)
        involved = set(clients_on_longest_paths(assignment).tolist())
        assert CLIENT_A in involved and CLIENT_B in involved
        for client in (CLIENT_A, CLIENT_B):
            target, promised = _dga_move_estimate(
                problem, assignment.server_of, client
            )
            assert promised < d  # the move looks strictly improving
            assert target != assignment.server_of_client(client)

    def test_simultaneous_moves_increase_d(self, instance):
        problem, assignment = instance
        d = max_interaction_path_length(assignment)
        original = assignment.server_of
        # Both moves computed against the SAME starting state (no
        # concurrency control)...
        targets = {
            client: _dga_move_estimate(problem, original, client)[0]
            for client in (CLIENT_A, CLIENT_B)
        }
        # ...then applied together.
        server_of = original.copy()
        for client, target in targets.items():
            server_of[client] = target
        d_after = max_interaction_path_length(Assignment(problem, server_of))
        assert d_after > d + 1e-9  # the hazard: D got worse

    def test_sequential_moves_never_increase_d(self, instance):
        problem, assignment = instance
        d = max_interaction_path_length(assignment)
        server_of = assignment.server_of.copy()
        # Apply the same two moves one at a time, re-evaluating between.
        for client in (CLIENT_A, CLIENT_B):
            target, promised = _dga_move_estimate(problem, server_of, client)
            current = max_interaction_path_length(
                Assignment(problem, server_of)
            )
            if promised < current:  # the protocol's guard
                server_of[client] = target
            after = max_interaction_path_length(Assignment(problem, server_of))
            assert after <= current + 1e-9
        assert max_interaction_path_length(
            Assignment(problem, server_of)
        ) <= d + 1e-9

    def test_full_dga_on_hazard_instance_is_monotone(self, instance):
        problem, _assignment = instance
        result = distributed_greedy_detailed(problem)
        trace = result.trace
        assert all(b <= a + 1e-9 for a, b in zip(trace, trace[1:]))
