"""Tests for Greedy Assignment (Fig. 6 pseudocode)."""

import numpy as np
import pytest

from repro.algorithms import greedy, nearest_server
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    max_interaction_path_length,
    solve_branch_and_bound,
)
from repro.net.latency import LatencyMatrix
from repro.placement import random_placement


class TestBasics:
    def test_every_client_assigned(self, small_problem):
        a = greedy(small_problem)
        assert np.all(a.server_of >= 0)
        assert np.all(a.server_of < small_problem.n_servers)

    def test_deterministic(self, small_problem):
        assert greedy(small_problem) == greedy(small_problem)

    def test_single_server(self, small_matrix):
        problem = ClientAssignmentProblem(small_matrix, servers=[3])
        a = greedy(problem)
        assert np.all(a.server_of == 0)

    def test_single_client(self, small_matrix):
        problem = ClientAssignmentProblem(small_matrix, servers=[0, 5], clients=[9])
        a = greedy(problem)
        # A single client should take its nearest server (cost
        # minimization degenerates to the round trip).
        assert a.server_of_client(0) == int(
            np.argmin(problem.client_server[0])
        )


class TestQuality:
    def test_beats_nearest_on_average(self, medium_matrix):
        wins = 0
        total = 0
        for seed in range(10):
            servers = random_placement(medium_matrix, 10, seed=seed)
            problem = ClientAssignmentProblem(medium_matrix, servers)
            d_ga = max_interaction_path_length(greedy(problem))
            d_nsa = max_interaction_path_length(nearest_server(problem))
            total += 1
            if d_ga <= d_nsa + 1e-9:
                wins += 1
        assert wins >= 8  # greedy dominates in the vast majority of runs

    def test_near_optimal_on_tiny_instances(self):
        ratios = []
        for seed in range(6):
            matrix = LatencyMatrix.random_metric(12, seed=seed)
            rng = np.random.default_rng(seed)
            nodes = rng.permutation(12)
            problem = ClientAssignmentProblem(
                matrix, nodes[:3], clients=nodes[3:9]
            )
            opt = solve_branch_and_bound(problem).objective
            ga = max_interaction_path_length(greedy(problem))
            assert ga >= opt - 1e-9
            ratios.append(ga / opt)
        assert np.mean(ratios) <= 1.3


class TestBatchSemantics:
    def test_first_batch_closure(self):
        # Construct an instance where the first greedy pick is clear and
        # the batch must include all closer clients.
        d = np.array(
            [
                #  s     c1    c2    c3
                [0.0, 1.0, 2.0, 3.0],
                [1.0, 0.0, 1.5, 2.5],
                [2.0, 1.5, 0.0, 1.8],
                [3.0, 2.5, 1.8, 0.0],
            ]
        )
        problem = ClientAssignmentProblem(
            LatencyMatrix(d), servers=[0], clients=[1, 2, 3]
        )
        a = greedy(problem)
        assert np.all(a.server_of == 0)

    def test_terminates_on_equidistant_clients(self):
        # Many clients at identical distances exercise the Δn ties.
        d = np.full((6, 6), 4.0)
        np.fill_diagonal(d, 0.0)
        problem = ClientAssignmentProblem(
            LatencyMatrix(d), servers=[0, 1], clients=[2, 3, 4, 5]
        )
        a = greedy(problem)
        assert np.all(a.server_of >= 0)


class TestCapacitated:
    def test_respects_capacities(self, capacitated_problem):
        a = greedy(capacitated_problem)
        assert a.respects_capacities()

    def test_tight_fit(self, small_matrix):
        problem = ClientAssignmentProblem(
            small_matrix, servers=[0, 10, 20, 30], capacities=10
        )
        a = greedy(problem)
        assert a.respects_capacities()
        assert a.loads().sum() == problem.n_clients

    def test_loose_capacity_matches_uncapacitated(self, small_problem):
        loose = small_problem.with_capacity(small_problem.n_clients)
        assert np.array_equal(
            greedy(small_problem).server_of, greedy(loose).server_of
        )

    def test_capacity_never_helps(self, small_problem):
        free = max_interaction_path_length(greedy(small_problem))
        capped = max_interaction_path_length(
            greedy(small_problem.with_capacity(9))
        )
        assert capped >= free - 1e-9
