"""Tests for Nearest-Server Assignment (uncapacitated + capacitated)."""

import numpy as np
import pytest

from repro.algorithms import nearest_server
from repro.core import ClientAssignmentProblem
from repro.net.latency import LatencyMatrix


class TestUncapacitated:
    def test_each_client_gets_nearest(self, small_problem):
        a = nearest_server(small_problem)
        cs = small_problem.client_server
        np.testing.assert_array_equal(a.server_of, np.argmin(cs, axis=1))

    def test_deterministic(self, small_problem):
        assert nearest_server(small_problem) == nearest_server(small_problem)

    def test_tie_breaks_to_lowest_index(self):
        d = np.array(
            [
                [0.0, 5.0, 5.0, 1.0],
                [5.0, 0.0, 2.0, 9.0],
                [5.0, 2.0, 0.0, 9.0],
                [1.0, 9.0, 9.0, 0.0],
            ]
        )
        problem = ClientAssignmentProblem(
            LatencyMatrix(d), servers=[1, 2], clients=[0]
        )
        a = nearest_server(problem)
        assert a.server_of_client(0) == 0

    def test_client_at_server_node(self, small_matrix):
        servers = np.array([0, 7])
        problem = ClientAssignmentProblem(small_matrix, servers, clients=[0])
        a = nearest_server(problem)
        assert a.server_of_client(0) == 0
        assert a.client_distances()[0] == 0.0


class TestCapacitated:
    def test_respects_capacities(self, capacitated_problem):
        a = nearest_server(capacitated_problem)
        assert a.respects_capacities()

    def test_overflow_goes_to_next_nearest(self):
        # Three clients, two servers with capacity 1 and 2; all clients
        # nearest to server 0.
        d = np.array(
            [
                [0.0, 1.0, 5.0, 1.1, 1.2],
                [1.0, 0.0, 5.0, 2.0, 2.0],
                [5.0, 5.0, 0.0, 4.0, 4.0],
                [1.1, 2.0, 4.0, 0.0, 1.0],
                [1.2, 2.0, 4.0, 1.0, 0.0],
            ]
        )
        problem = ClientAssignmentProblem(
            LatencyMatrix(d), servers=[0, 2], clients=[1, 3, 4], capacities=[1, 2]
        )
        a = nearest_server(problem)
        # Client 1 (processed first) takes server 0; the rest overflow
        # to server 2.
        assert a.server_of_client(0) == 0
        assert a.server_of_client(1) == 1
        assert a.server_of_client(2) == 1
        assert a.respects_capacities()

    def test_exact_fit(self, small_matrix):
        # Capacity exactly |C| / |S|.
        problem = ClientAssignmentProblem(
            small_matrix, servers=[0, 10, 20, 30], capacities=10
        )
        a = nearest_server(problem)
        assert a.respects_capacities()
        assert a.loads().sum() == problem.n_clients

    def test_uncapacitated_matches_when_loose(self, small_problem):
        loose = small_problem.with_capacity(small_problem.n_clients)
        assert np.array_equal(
            nearest_server(small_problem).server_of,
            nearest_server(loose).server_of,
        )
