"""Tests for Longest-First-Batch Assignment."""

import numpy as np
import pytest

from repro.algorithms import longest_first_batch, nearest_server
from repro.core import ClientAssignmentProblem, max_interaction_path_length
from repro.net.latency import LatencyMatrix


class TestUncapacitated:
    def test_never_worse_than_nearest(self, small_problem):
        # Paper §IV-B: LFB's D cannot exceed NSA's.
        d_lfb = max_interaction_path_length(longest_first_batch(small_problem))
        d_nsa = max_interaction_path_length(nearest_server(small_problem))
        assert d_lfb <= d_nsa + 1e-9

    def test_never_worse_many_seeds(self, medium_matrix):
        from repro.placement import random_placement

        for seed in range(8):
            servers = random_placement(medium_matrix, 8, seed=seed)
            problem = ClientAssignmentProblem(medium_matrix, servers)
            d_lfb = max_interaction_path_length(longest_first_batch(problem))
            d_nsa = max_interaction_path_length(nearest_server(problem))
            assert d_lfb <= d_nsa + 1e-9

    def test_batch_closure_invariant(self, small_problem):
        # If client c is assigned to s and some other client c' has
        # d(c', s) <= d(c, s), then c' is assigned to a server at most
        # that far — specifically LFB assigns it to s unless it was
        # already batched earlier (to a server even closer in the
        # longest-first order). The checkable invariant: any client not
        # on its nearest server is never the farthest client of its
        # server.
        a = longest_first_batch(small_problem)
        cs = small_problem.client_server
        nearest = np.argmin(cs, axis=1)
        farthest = a.farthest_client_distance()
        for c in range(small_problem.n_clients):
            s = a.server_of_client(c)
            if s != nearest[c]:
                assert cs[c, s] <= farthest[s] + 1e-12

    def test_every_client_assigned(self, small_problem):
        a = longest_first_batch(small_problem)
        assert a.server_of.shape == (small_problem.n_clients,)
        assert np.all(a.server_of >= 0)

    def test_farthest_client_on_nearest_server(self, small_problem):
        # The client driving the first batch is assigned to its nearest
        # server.
        a = longest_first_batch(small_problem)
        cs = small_problem.client_server
        nearest = np.argmin(cs, axis=1)
        nearest_dist = cs[np.arange(small_problem.n_clients), nearest]
        worst = int(np.argmax(nearest_dist))
        assert a.server_of_client(worst) == nearest[worst]

    def test_deterministic(self, small_problem):
        assert longest_first_batch(small_problem) == longest_first_batch(
            small_problem
        )


class TestCapacitated:
    def test_respects_capacities(self, capacitated_problem):
        a = longest_first_batch(capacitated_problem)
        assert a.respects_capacities()

    def test_tight_capacity(self, small_matrix):
        problem = ClientAssignmentProblem(
            small_matrix, servers=[0, 10, 20, 30], capacities=10
        )
        a = longest_first_batch(problem)
        assert a.respects_capacities()
        np.testing.assert_array_equal(np.sort(a.loads()), [10, 10, 10, 10])

    def test_loose_capacity_matches_uncapacitated(self, small_problem):
        loose = small_problem.with_capacity(small_problem.n_clients)
        assert np.array_equal(
            longest_first_batch(small_problem).server_of,
            longest_first_batch(loose).server_of,
        )

    def test_uneven_capacities(self, small_matrix):
        problem = ClientAssignmentProblem(
            small_matrix, servers=[0, 10, 20], capacities=[5, 5, 30]
        )
        a = longest_first_batch(problem)
        assert a.respects_capacities()
