"""The OnlinePolicy seam must not change the manager's decisions.

``tests/data/online_decision_traces.json`` holds decision streams of
``OnlineAssignmentManager`` captured *before* the policy seam existed
(PR 10), as ``(op, ...)`` tuples with D values in float hex. Replaying
the same deterministic trajectory through today's managers must
reproduce those streams byte for byte — for the plain manager and the
region-sharded one, with and without capacities.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.online import OnlineAssignmentManager, OnlineConfig
from repro.algorithms.policies import (
    CapacityError as PolicyCapacityError,
    best_finite,
    policy_names,
    resolve_policy,
    validate_policy_name,
)
from repro.datasets import planet_instance
from repro.errors import CapacityError, InvalidParameterError
from repro.scale import ShardedOnlineManager

TRACES_PATH = Path(__file__).parent.parent / "data" / "online_decision_traces.json"


@pytest.fixture(scope="module")
def golden():
    with TRACES_PATH.open("r", encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["schema"] == "online-decision-traces-v1"
    return doc


@pytest.fixture(scope="module")
def instance(golden):
    spec = golden["instance"]
    return planet_instance(
        spec["clients"],
        spec["servers"],
        n_clusters=spec["n_clusters"],
        seed=spec["seed"],
    )


def _drive(manager, universe, *, rng_seed, n_events):
    """The exact trajectory the golden traces were captured with."""
    rng = np.random.default_rng(rng_seed)
    connected = []
    log = []
    for _ in range(n_events):
        roll = rng.random()
        if connected and roll < 0.25:
            node = connected.pop(int(rng.integers(len(connected))))
            manager.leave(node)
            log.append(["leave", int(node)])
        elif connected and roll < 0.35:
            node = connected[int(rng.integers(len(connected)))]
            server = int(rng.integers(manager.n_servers))
            try:
                manager.move(node, server)
                log.append(["move", int(node), server])
            except CapacityError:
                log.append(["move-full", int(node), server])
        else:
            candidates = [n for n in universe if not manager.is_connected(n)]
            if not candidates:
                continue
            node = candidates[int(rng.integers(len(candidates)))]
            try:
                server = manager.join(int(node))
                connected.append(int(node))
                log.append(["join", int(node), int(server)])
            except CapacityError:
                log.append(["join-full", int(node)])
        log.append(["d", manager.current_d().hex()])
    return log


def _params(golden_doc):
    return golden_doc["drive"]["rng_seed"], golden_doc["drive"]["n_events"]


@pytest.mark.parametrize("policy", ["greedy", "nearest"])
@pytest.mark.parametrize("capacity", [None, 30])
def test_manager_matches_pre_seam_traces(golden, instance, policy, capacity):
    key = f"{policy}/{'none' if capacity is None else capacity}"
    manager = OnlineAssignmentManager(
        instance.provider,
        instance.servers,
        OnlineConfig(capacity=capacity, join_policy=policy),
        client_nodes=instance.clients,
    )
    rng_seed, n_events = _params(golden)
    log = _drive(
        manager,
        [int(n) for n in instance.clients],
        rng_seed=rng_seed,
        n_events=n_events,
    )
    assert log == golden["traces"][key]


@pytest.mark.parametrize("policy", ["greedy", "nearest"])
@pytest.mark.parametrize("capacity", [None, 30])
def test_sharded_manager_matches_pre_seam_traces(
    golden, instance, policy, capacity
):
    manager = ShardedOnlineManager(
        instance.provider,
        instance.servers,
        OnlineConfig(capacity=capacity, join_policy=policy, shards=4),
        client_nodes=instance.clients,
    )
    key = f"{policy}/{'none' if capacity is None else capacity}"
    rng_seed, n_events = _params(golden)
    log = _drive(
        manager,
        [int(n) for n in instance.clients],
        rng_seed=rng_seed,
        n_events=n_events,
    )
    assert log == golden["traces"][key]


class TestRegistry:
    def test_all_policies_registered(self):
        names = policy_names()
        for expected in ("greedy", "nearest", "threshold", "spread"):
            assert expected in names
        assert names == sorted(names)

    def test_validate_rejects_unknown(self):
        with pytest.raises(InvalidParameterError):
            validate_policy_name("does-not-exist")

    def test_resolve_returns_fresh_instances(self):
        a = resolve_policy("threshold")
        b = resolve_policy("threshold")
        assert a is not b

    def test_config_validates_policy_name(self):
        with pytest.raises(InvalidParameterError):
            OnlineConfig(join_policy="does-not-exist")


class TestBestFinite:
    def test_picks_lowest_index_on_ties(self):
        assert best_finite(np.array([2.0, 1.0, 1.0])) == 1

    def test_all_infinite_raises(self):
        with pytest.raises(PolicyCapacityError):
            best_finite(np.array([np.inf, np.inf]))


class TestRemediationPolicies:
    """Threshold and spread stay feasible under capacities."""

    @pytest.fixture(scope="class")
    def small(self):
        return planet_instance(120, 6, n_clusters=8, seed=41)

    @pytest.mark.parametrize("policy", ["threshold", "spread"])
    def test_capacity_never_violated(self, small, policy):
        capacity = 12
        manager = OnlineAssignmentManager(
            small.provider,
            small.servers,
            OnlineConfig(capacity=capacity, join_policy=policy),
            client_nodes=small.clients,
        )
        rng = np.random.default_rng(7)
        connected = []
        for _ in range(200):
            if connected and rng.random() < 0.3:
                node = connected.pop(int(rng.integers(len(connected))))
                manager.leave(node)
            else:
                pool = [
                    int(n) for n in small.clients if not manager.is_connected(n)
                ]
                if not pool:
                    continue
                node = pool[int(rng.integers(len(pool)))]
                try:
                    manager.join(node)
                    connected.append(node)
                except CapacityError:
                    pass
            manager.policy.maintain(manager, max_moves=2)
            loads = manager.loads()
            assert int(loads.max(initial=0)) <= capacity
            assert int(loads.sum()) == len(connected)

    @pytest.mark.parametrize("policy", ["threshold", "spread"])
    def test_maintain_respects_move_budget(self, small, policy):
        manager = OnlineAssignmentManager(
            small.provider,
            small.servers,
            OnlineConfig(capacity=None, join_policy=policy),
            client_nodes=small.clients,
        )
        for node in list(small.clients)[:40]:
            manager.join(int(node))
        moves = manager.policy.maintain(manager, max_moves=3)
        assert 0 <= moves <= 3
