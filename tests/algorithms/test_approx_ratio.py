"""Theorem 2: Nearest-Server is a 3-approximation on metric inputs."""

import numpy as np
import pytest

from repro.algorithms import longest_first_batch, nearest_server
from repro.core import (
    ClientAssignmentProblem,
    max_interaction_path_length,
    solve_branch_and_bound,
)
from repro.net.latency import LatencyMatrix


def random_metric_instance(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 14))
    matrix = LatencyMatrix.random_metric(n, seed=seed)
    k = int(rng.integers(2, 4))
    nodes = rng.permutation(n)
    servers = nodes[:k]
    n_clients = int(rng.integers(4, min(8, n - k) + 1))
    clients = nodes[k : k + n_clients]
    return ClientAssignmentProblem(matrix, servers, clients)


@pytest.mark.parametrize("seed", range(12))
def test_nsa_within_3x_optimal_on_metric(seed):
    problem = random_metric_instance(seed)
    opt = solve_branch_and_bound(problem).objective
    nsa = max_interaction_path_length(nearest_server(problem))
    assert nsa <= 3.0 * opt + 1e-9


@pytest.mark.parametrize("seed", range(12))
def test_lfb_within_3x_optimal_on_metric(seed):
    # LFB inherits the bound (its D never exceeds NSA's).
    problem = random_metric_instance(seed)
    opt = solve_branch_and_bound(problem).objective
    lfb = max_interaction_path_length(longest_first_batch(problem))
    assert lfb <= 3.0 * opt + 1e-9


def test_bound_can_fail_without_triangle_inequality():
    """Footnote 2 of §V: the 3x bound does not survive non-metric data.

    Build an explicit instance where NSA exceeds 3x the optimum: nearest
    servers look attractive on the client-server leg but are connected
    by an enormous inter-server latency.
    """
    big = 1000.0
    d = np.array(
        [
            #  s0     s1     s2     c0    c1
            [0.0, big, 10.0, 9.0, big],   # s0 (near c0)
            [big, 0.0, 10.0, big, 9.0],   # s1 (near c1)
            [10.0, 10.0, 0.0, 10.0, 10.0],  # s2 (hub)
            [9.0, big, 10.0, 0.0, big],   # c0
            [big, 9.0, 10.0, big, 0.0],   # c1
        ]
    )
    problem = ClientAssignmentProblem(
        LatencyMatrix(d), servers=[0, 1, 2], clients=[3, 4]
    )
    nsa = max_interaction_path_length(nearest_server(problem))
    opt = solve_branch_and_bound(problem).objective
    # NSA picks s0/s1 (distance 9 each) and pays the huge inter-server
    # leg; the optimum puts both clients on the hub s2 (D = 10 + 10,
    # with no inter-server leg).
    assert opt == pytest.approx(10 + 10)
    assert nsa == pytest.approx(9 + big + 9)
    assert nsa > 3.0 * opt
