"""Tests for online assignment under churn."""

import numpy as np
import pytest

from repro.algorithms.online import (
    OnlineAssignmentManager,
    simulate_churn,
)
from repro.core import max_interaction_path_length
from repro.datasets.synthetic import small_world_latencies
from repro.errors import CapacityError, InvalidAssignmentError
from repro.placement import random_placement


@pytest.fixture
def matrix():
    return small_world_latencies(50, seed=9)


@pytest.fixture
def servers(matrix):
    return random_placement(matrix, 5, seed=0)


@pytest.fixture
def manager(matrix, servers):
    return OnlineAssignmentManager(matrix, servers)


class TestJoinLeave:
    def test_join_assigns_and_counts(self, manager):
        s = manager.join(10)
        assert 0 <= s < manager.n_servers
        assert manager.n_clients == 1
        assert manager.server_of(10) == s

    def test_double_join_rejected(self, manager):
        manager.join(10)
        with pytest.raises(InvalidAssignmentError):
            manager.join(10)

    def test_out_of_range_join_rejected(self, manager):
        with pytest.raises(InvalidAssignmentError):
            manager.join(999)

    def test_leave(self, manager):
        manager.join(10)
        manager.leave(10)
        assert manager.n_clients == 0

    def test_leave_unknown_rejected(self, manager):
        with pytest.raises(InvalidAssignmentError):
            manager.leave(10)

    def test_loads_track_membership(self, manager):
        for node in (10, 11, 12):
            manager.join(node)
        assert manager.loads().sum() == 3
        manager.leave(11)
        assert manager.loads().sum() == 2

    def test_clients_sorted(self, manager):
        for node in (30, 10, 20):
            manager.join(node)
        assert manager.clients == (10, 20, 30)


class TestJoinQuality:
    def test_first_join_minimizes_round_trip(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers)
        node = 17
        s = manager.join(node)
        d = matrix.values
        round_trips = [
            d[node, sv] + d[sv, node] for sv in servers
        ]
        assert round_trips[s] == pytest.approx(min(round_trips))

    def test_incremental_d_matches_exact(self, manager):
        rng = np.random.default_rng(1)
        for node in rng.choice(range(6, 50), size=20, replace=False):
            manager.join(int(node))
        assert manager.verify()

    def test_greedy_join_no_worse_than_nearest(self, matrix, servers):
        rng = np.random.default_rng(2)
        nodes = [int(n) for n in rng.choice(range(6, 50), size=25, replace=False)]
        greedy_mgr = OnlineAssignmentManager(matrix, servers, join_policy="greedy")
        nearest_mgr = OnlineAssignmentManager(matrix, servers, join_policy="nearest")
        for node in nodes:
            greedy_mgr.join(node)
            nearest_mgr.join(node)
        assert greedy_mgr.current_d() <= nearest_mgr.current_d() * 1.05

    def test_invalid_join_policy(self, matrix, servers):
        with pytest.raises(ValueError):
            OnlineAssignmentManager(matrix, servers, join_policy="round-robin")


class TestCapacity:
    def test_capacity_respected(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers, capacity=2)
        for node in range(6, 16):
            manager.join(node)
        assert np.all(manager.loads() <= 2)

    def test_full_system_rejects_joins(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers, capacity=1)
        for node in range(6, 11):
            manager.join(node)
        with pytest.raises(CapacityError):
            manager.join(20)

    def test_invalid_capacity(self, matrix, servers):
        with pytest.raises(ValueError):
            OnlineAssignmentManager(matrix, servers, capacity=0)


class TestRebalance:
    def test_rebalance_never_worsens(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers, join_policy="nearest")
        rng = np.random.default_rng(3)
        for node in rng.choice(range(6, 50), size=30, replace=False):
            manager.join(int(node))
        before = manager.current_d()
        manager.rebalance(max_moves=20)
        assert manager.current_d() <= before + 1e-9
        assert manager.verify()

    def test_rebalance_empty_noop(self, manager):
        assert manager.rebalance() == 0

    def test_snapshot_round_trip(self, manager):
        for node in (10, 11, 12, 13):
            manager.join(node)
        problem, assignment, nodes = manager.snapshot()
        assert problem.n_clients == 4
        assert nodes == (10, 11, 12, 13)
        assert max_interaction_path_length(assignment) == pytest.approx(
            manager.current_d()
        )

    def test_snapshot_empty_rejected(self, manager):
        with pytest.raises(InvalidAssignmentError):
            manager.snapshot()


class TestChurnSimulation:
    def test_trace_shape(self, matrix, servers):
        result = simulate_churn(matrix, servers, n_events=60, seed=0)
        assert len(result.trace) >= 60
        for point in result.trace:
            assert point.event in ("join", "leave", "rebalance")
            assert point.d >= 0.0

    def test_reproducible(self, matrix, servers):
        a = simulate_churn(matrix, servers, n_events=40, seed=5)
        b = simulate_churn(matrix, servers, n_events=40, seed=5)
        assert a.trace == b.trace

    def test_rebalance_events_emitted(self, matrix, servers):
        result = simulate_churn(
            matrix, servers, n_events=40, rebalance_every=10, seed=1
        )
        assert any(p.event == "rebalance" for p in result.trace)

    def test_nearest_policy_no_better_than_greedy(self, matrix, servers):
        greedy = simulate_churn(
            matrix, servers, n_events=80, join_policy="greedy", seed=2
        )
        nearest = simulate_churn(
            matrix, servers, n_events=80, join_policy="nearest", seed=2
        )
        assert greedy.mean_d() <= nearest.mean_d() * 1.05

    def test_invalid_probability(self, matrix, servers):
        with pytest.raises(ValueError):
            simulate_churn(matrix, servers, join_probability=1.5)

    def test_capacitated_churn(self, matrix, servers):
        result = simulate_churn(
            matrix, servers, n_events=50, capacity=12, seed=3
        )
        assert result.trace


class TestChurnEdgeCases:
    def _fill(self, manager, *, n=20, capacity=None):
        server_set = set(int(s) for s in manager.server_nodes)
        nodes = [
            u for u in range(manager.matrix.n_nodes) if u not in server_set
        ][:n]
        for node in nodes:
            manager.join(node)
        return nodes

    def test_server_emptied_then_repopulated(self, manager):
        self._fill(manager)
        target = int(np.argmax(manager.loads()))
        members = manager.members_of(target)
        assert members, "expected the busiest server to have members"
        for client in members:
            manager.leave(client)
        assert manager.loads()[target] == 0
        assert manager.verify()
        # The emptied server must still be a live join target and the
        # returning clients must land somewhere valid.
        for client in members:
            s = manager.join(client)
            assert 0 <= s < manager.n_servers
        assert manager.n_clients == 20
        assert manager.verify()

    def test_join_at_full_capacity_leaves_state_unchanged(
        self, matrix, servers
    ):
        manager = OnlineAssignmentManager(matrix, servers, capacity=4)
        self._fill(manager, n=20)  # 5 servers * 4 slots: completely full
        assert int(manager.loads().sum()) == 20
        before = {c: manager.server_of(c) for c in manager.clients}
        d_before = manager.current_d()
        with pytest.raises(CapacityError):
            manager.join(49)
        assert {c: manager.server_of(c) for c in manager.clients} == before
        assert manager.current_d() == pytest.approx(d_before)
        assert manager.n_clients == 20

    def test_rebalance_zero_moves_is_noop(self, manager):
        self._fill(manager)
        before = {c: manager.server_of(c) for c in manager.clients}
        d_before = manager.current_d()
        assert manager.rebalance(max_moves=0) == 0
        assert {c: manager.server_of(c) for c in manager.clients} == before
        assert manager.current_d() == pytest.approx(d_before)


class TestRestrictedClientUniverse:
    """client_nodes= restricts the joinable universe (the sharding hook)."""

    @pytest.fixture
    def universe(self, matrix):
        return np.array([2, 3, 11, 17, 29, 41], dtype=np.int64)

    @pytest.fixture
    def restricted(self, matrix, servers, universe):
        return OnlineAssignmentManager(
            matrix, servers, client_nodes=universe
        )

    def test_universe_is_reported(self, restricted, universe):
        assert np.array_equal(restricted.client_nodes, universe)

    def test_default_universe_is_none(self, manager):
        assert manager.client_nodes is None

    def test_members_of_universe_join_normally(self, restricted, universe):
        for node in universe:
            server = restricted.join(int(node))
            assert 0 <= server < restricted.n_servers
        assert restricted.clients == tuple(sorted(int(n) for n in universe))

    def test_outside_node_rejected(self, restricted):
        with pytest.raises(InvalidAssignmentError):
            restricted.join(4)  # valid node, not in the universe
        with pytest.raises(InvalidAssignmentError):
            restricted.leave(4)

    def test_decisions_match_unrestricted_manager(
        self, matrix, servers, universe
    ):
        """Restricting the universe must not change placement decisions
        for nodes inside it — same matrix rows, same engine math."""
        full = OnlineAssignmentManager(matrix, servers)
        restricted = OnlineAssignmentManager(
            matrix, servers, client_nodes=universe
        )
        for node in universe:
            assert restricted.join(int(node)) == full.join(int(node))
            assert restricted.current_d() == full.current_d()
        restricted.leave(int(universe[0]))
        full.leave(int(universe[0]))
        assert restricted.current_d() == full.current_d()
        assert restricted.verify()

    def test_empty_universe_rejected(self, matrix, servers):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            OnlineAssignmentManager(
                matrix, servers, client_nodes=np.array([], dtype=np.int64)
            )
