"""Property-based tests (hypothesis) on core invariants.

Strategies generate random problem instances (metric or noisy) and check
the invariants every algorithm and metric must uphold regardless of
input shape.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    distributed_greedy_detailed,
    greedy,
    longest_first_batch,
    nearest_server,
)
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    OffsetSchedule,
    interaction_lower_bound,
    interaction_lower_bound_bruteforce,
    max_interaction_path_length,
    max_interaction_path_length_bruteforce,
)
from repro.net.latency import LatencyMatrix

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def problems(draw, max_nodes=14, capacitated=False):
    """A random problem instance (possibly non-metric, symmetric)."""
    n = draw(st.integers(min_value=3, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    d = rng.uniform(1.0, 100.0, size=(n, n))
    d = (d + d.T) / 2.0
    np.fill_diagonal(d, 0.0)
    matrix = LatencyMatrix(d)
    k = draw(st.integers(min_value=1, max_value=n))
    servers = rng.choice(n, size=k, replace=False)
    capacities = None
    if capacitated:
        # Capacity between ceil(n/k) (tight) and n (loose).
        low = -(-n // k)
        capacities = draw(st.integers(min_value=low, max_value=n))
    return ClientAssignmentProblem(matrix, servers, capacities=capacities)


@st.composite
def problems_with_assignments(draw):
    problem = draw(problems())
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    arr = rng.integers(0, problem.n_servers, problem.n_clients)
    return problem, Assignment(problem, arr)


ALGORITHMS = [nearest_server, longest_first_batch, greedy]


class TestMetricInvariants:
    @SETTINGS
    @given(problems_with_assignments())
    def test_fast_d_equals_bruteforce(self, pa):
        _problem, assignment = pa
        assert max_interaction_path_length(assignment) == pytest.approx(
            max_interaction_path_length_bruteforce(assignment)
        )

    @SETTINGS
    @given(problems(max_nodes=10))
    def test_lower_bound_equals_bruteforce(self, problem):
        assert interaction_lower_bound(problem) == pytest.approx(
            interaction_lower_bound_bruteforce(problem)
        )

    @SETTINGS
    @given(problems_with_assignments())
    def test_d_at_least_lower_bound(self, pa):
        problem, assignment = pa
        lb = interaction_lower_bound(problem)
        assert max_interaction_path_length(assignment) >= lb - 1e-9

    @SETTINGS
    @given(problems_with_assignments())
    def test_d_at_least_largest_round_trip(self, pa):
        problem, assignment = pa
        rt = 2 * assignment.client_distances()
        assert max_interaction_path_length(assignment) >= rt.max() - 1e-9


class TestAlgorithmInvariants:
    @SETTINGS
    @given(problems())
    def test_algorithms_produce_valid_assignments(self, problem):
        for fn in ALGORITHMS:
            a = fn(problem)
            assert a.server_of.shape == (problem.n_clients,)
            assert np.all((a.server_of >= 0) & (a.server_of < problem.n_servers))

    @SETTINGS
    @given(problems())
    def test_lfb_never_worse_than_nsa(self, problem):
        d_lfb = max_interaction_path_length(longest_first_batch(problem))
        d_nsa = max_interaction_path_length(nearest_server(problem))
        assert d_lfb <= d_nsa + 1e-9

    @SETTINGS
    @given(problems(capacitated=True))
    def test_capacitated_algorithms_respect_capacities(self, problem):
        for fn in ALGORITHMS:
            assert fn(problem).respects_capacities()

    @SETTINGS
    @given(problems(max_nodes=12))
    def test_dga_trace_monotone_and_bounded(self, problem):
        result = distributed_greedy_detailed(problem)
        trace = result.trace
        assert all(b <= a + 1e-9 for a, b in zip(trace, trace[1:]))
        assert result.final_d <= result.initial_d + 1e-9
        assert result.final_d == pytest.approx(
            max_interaction_path_length(result.assignment)
        )


class TestScheduleInvariants:
    @SETTINGS
    @given(problems_with_assignments())
    def test_minimal_schedule_always_feasible(self, pa):
        _problem, assignment = pa
        report = OffsetSchedule(assignment).check_constraints()
        assert report.feasible

    @SETTINGS
    @given(problems_with_assignments(), st.floats(min_value=1.0, max_value=3.0))
    def test_inflated_delta_feasible(self, pa, factor):
        _problem, assignment = pa
        d = max_interaction_path_length(assignment)
        report = OffsetSchedule(assignment, delta=d * factor).check_constraints()
        assert report.feasible
