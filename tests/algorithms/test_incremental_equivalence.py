"""Rewired heuristics produce the same result under both evaluators.

Every algorithm that moved onto the incremental engine kept its
from-scratch evaluation path behind ``evaluator="recompute"``. On seeded
instances the two paths must walk the same trajectory — same moves in
the same order — and therefore end at the same assignment and objective.
This is the regression net for the engine rewiring: any divergence in
gating, tie-breaking, or floating point evaluation order shows up here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.distributed_greedy import distributed_greedy_detailed
from repro.algorithms.local_search import hill_climbing, simulated_annealing
from repro.core import ClientAssignmentProblem, max_interaction_path_length
from repro.datasets.synthetic import small_world_latencies
from repro.errors import InvalidParameterError
from repro.net.latency import LatencyMatrix
from repro.placement import random_placement


def _problems():
    cases = []
    for n, k, seed in [(30, 4, 1), (50, 6, 2), (70, 8, 3)]:
        matrix = small_world_latencies(n, seed=seed)
        servers = random_placement(matrix, k, seed=seed)
        cases.append(ClientAssignmentProblem(matrix, servers))
        cases.append(
            ClientAssignmentProblem(matrix, servers, capacities=-(-n // k) + 2)
        )
    # One asymmetric instance: the engine handles both legs separately.
    rng = np.random.default_rng(9)
    values = rng.uniform(1.0, 100.0, size=(40, 40))
    np.fill_diagonal(values, 0.0)
    asym = LatencyMatrix(values)
    cases.append(
        ClientAssignmentProblem(asym, random_placement(asym, 5, seed=9))
    )
    return cases


PROBLEMS = _problems()


@pytest.mark.parametrize("idx", range(len(PROBLEMS)))
def test_hill_climbing_equivalent(idx):
    problem = PROBLEMS[idx]
    new = hill_climbing(problem, seed=idx, evaluator="incremental")
    old = hill_climbing(problem, seed=idx, evaluator="recompute")
    assert np.array_equal(new.server_of, old.server_of)
    assert max_interaction_path_length(new) == pytest.approx(
        max_interaction_path_length(old), rel=1e-12
    )


@pytest.mark.parametrize("idx", range(len(PROBLEMS)))
def test_simulated_annealing_equivalent(idx):
    problem = PROBLEMS[idx]
    new = simulated_annealing(
        problem, seed=idx, n_steps=400, evaluator="incremental"
    )
    old = simulated_annealing(
        problem, seed=idx, n_steps=400, evaluator="recompute"
    )
    # Identical RNG draw order + identical accept/reject decisions.
    assert np.array_equal(new.server_of, old.server_of)


@pytest.mark.parametrize("idx", range(len(PROBLEMS)))
def test_distributed_greedy_equivalent(idx):
    problem = PROBLEMS[idx]
    new = distributed_greedy_detailed(
        problem, seed=idx, evaluator="incremental"
    )
    old = distributed_greedy_detailed(problem, seed=idx, evaluator="recompute")
    assert new.trace == old.trace
    assert new.n_messages == old.n_messages
    assert new.n_modifications == old.n_modifications
    assert np.array_equal(new.assignment.server_of, old.assignment.server_of)


@pytest.mark.parametrize(
    "fn",
    [hill_climbing, simulated_annealing, distributed_greedy_detailed],
    ids=["hill-climbing", "simulated-annealing", "distributed-greedy"],
)
def test_unknown_evaluator_rejected(fn):
    with pytest.raises(InvalidParameterError):
        fn(PROBLEMS[0], evaluator="telepathy")
