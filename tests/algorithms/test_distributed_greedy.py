"""Tests for Distributed-Greedy Assignment."""

import numpy as np
import pytest

from repro.algorithms import (
    distributed_greedy,
    distributed_greedy_detailed,
    greedy,
    nearest_server,
)
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    max_interaction_path_length,
)
from repro.placement import random_placement


class TestTrace:
    def test_trace_starts_at_initial_d(self, small_problem):
        result = distributed_greedy_detailed(small_problem)
        initial = nearest_server(small_problem)
        assert result.trace[0] == pytest.approx(
            max_interaction_path_length(initial)
        )

    def test_trace_ends_at_final_d(self, small_problem):
        result = distributed_greedy_detailed(small_problem)
        assert result.trace[-1] == pytest.approx(
            max_interaction_path_length(result.assignment)
        )

    def test_trace_nonincreasing(self, medium_matrix):
        for seed in range(5):
            servers = random_placement(medium_matrix, 10, seed=seed)
            problem = ClientAssignmentProblem(medium_matrix, servers)
            result = distributed_greedy_detailed(problem)
            trace = result.trace
            assert all(
                later <= earlier + 1e-9
                for earlier, later in zip(trace, trace[1:])
            )

    def test_modification_count(self, small_problem):
        result = distributed_greedy_detailed(small_problem)
        assert result.n_modifications == len(result.trace) - 1

    def test_messages_counted(self, small_problem):
        result = distributed_greedy_detailed(small_problem)
        s = small_problem.n_servers
        assert result.n_messages >= s * (s - 1)  # at least the initial round


class TestQuality:
    def test_never_worse_than_initial(self, medium_matrix):
        for seed in range(5):
            servers = random_placement(medium_matrix, 8, seed=seed)
            problem = ClientAssignmentProblem(medium_matrix, servers)
            result = distributed_greedy_detailed(problem)
            assert result.final_d <= result.initial_d + 1e-9

    def test_usually_converges(self, small_problem):
        result = distributed_greedy_detailed(small_problem)
        assert result.converged

    def test_competitive_with_greedy(self, medium_matrix):
        # DGA should be in the same quality class as GA (paper: slightly
        # better on average).
        dga_ds, ga_ds = [], []
        for seed in range(6):
            servers = random_placement(medium_matrix, 10, seed=seed)
            problem = ClientAssignmentProblem(medium_matrix, servers)
            dga_ds.append(distributed_greedy_detailed(problem).final_d)
            ga_ds.append(max_interaction_path_length(greedy(problem)))
        assert np.mean(dga_ds) <= np.mean(ga_ds) * 1.1

    def test_custom_initial_assignment(self, small_problem):
        rng = np.random.default_rng(0)
        arr = rng.integers(0, small_problem.n_servers, small_problem.n_clients)
        initial = Assignment(small_problem, arr)
        result = distributed_greedy_detailed(small_problem, initial=initial)
        assert result.trace[0] == pytest.approx(
            max_interaction_path_length(initial)
        )
        assert result.final_d <= result.trace[0] + 1e-9


class TestBudget:
    def test_max_modifications_respected(self, medium_matrix):
        servers = random_placement(medium_matrix, 10, seed=1)
        problem = ClientAssignmentProblem(medium_matrix, servers)
        result = distributed_greedy_detailed(problem, max_modifications=2)
        assert result.n_modifications <= 2

    def test_zero_budget_returns_initial(self, small_problem):
        result = distributed_greedy_detailed(small_problem, max_modifications=0)
        assert result.n_modifications == 0
        assert result.assignment == nearest_server(small_problem)


class TestCapacitated:
    def test_respects_capacities(self, capacitated_problem):
        result = distributed_greedy_detailed(capacitated_problem)
        assert result.assignment.respects_capacities()

    def test_improves_capacitated_nearest(self, capacitated_problem):
        initial_d = max_interaction_path_length(
            nearest_server(capacitated_problem)
        )
        result = distributed_greedy_detailed(capacitated_problem)
        assert result.final_d <= initial_d + 1e-9


class TestRegistryWrapper:
    def test_wrapper_returns_same_assignment(self, small_problem):
        assert distributed_greedy(small_problem) == distributed_greedy_detailed(
            small_problem
        ).assignment
