"""The run_algorithm facade and AssignmentResult contract."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    algorithm_names,
    get_algorithm,
    run_algorithm,
)
from repro.core import AssignmentResult, max_interaction_path_length
from repro.errors import ReproError, UnknownAlgorithmError


def test_result_fields(small_problem):
    result = run_algorithm("greedy", small_problem, seed=0)
    assert isinstance(result, AssignmentResult)
    assert result.algorithm == "greedy"
    assert result.seed == 0
    assert result.problem is small_problem
    assert result.d == max_interaction_path_length(result.assignment)
    assert result.elapsed_seconds > 0
    assert result.n_evaluations > 0
    summary = result.summary()
    assert "greedy" in summary and "evaluations" in summary


def test_matches_direct_call(small_problem):
    for name in ("nearest-server", "greedy", "distributed-greedy"):
        direct = get_algorithm(name)(small_problem, seed=3)
        via_facade = run_algorithm(name, small_problem, seed=3)
        assert (via_facade.assignment.server_of == direct.server_of).all()


def test_detailed_algorithms_expose_extras(small_problem):
    result = run_algorithm("distributed-greedy", small_problem, seed=1)
    assert result.trace is not None and len(result.trace) >= 1
    assert result.extras["n_messages"] > 0
    assert "n_modifications" in result.extras
    assert result.extras["converged"] in (True, False)


def test_kwargs_forwarded(small_problem):
    limited = run_algorithm(
        "distributed-greedy", small_problem, seed=1, max_modifications=0
    )
    assert limited.extras["n_modifications"] == 0


def test_every_registered_algorithm_runs(small_problem):
    for name in algorithm_names():
        result = run_algorithm(name, small_problem, seed=0)
        assert result.d > 0
        assert result.assignment.problem is small_problem


def test_unknown_algorithm_error():
    with pytest.raises(UnknownAlgorithmError) as excinfo:
        get_algorithm("no-such-algorithm")
    message = str(excinfo.value)
    assert "no-such-algorithm" in message
    assert "greedy" in message  # lists what IS available

    # KeyError-compatible for pre-facade callers, and a ReproError.
    with pytest.raises(KeyError):
        get_algorithm("no-such-algorithm")
    with pytest.raises(ReproError):
        run_algorithm("no-such-algorithm", None)


def test_evaluation_counts_scale(small_problem):
    few = run_algorithm("nearest-server", small_problem, seed=0)
    many = run_algorithm("distributed-greedy", small_problem, seed=0)
    assert many.n_evaluations > few.n_evaluations > 0


class TestBackendForwarding:
    def test_backend_forwarded_to_engine_algorithms(self, small_problem):
        baseline = run_algorithm("distributed-greedy", small_problem, seed=2)
        explicit = run_algorithm(
            "distributed-greedy", small_problem, seed=2, backend="numpy"
        )
        assert (
            explicit.assignment.server_of == baseline.assignment.server_of
        ).all()
        assert explicit.d == pytest.approx(baseline.d, rel=1e-12)

    def test_backend_ignored_by_engineless_algorithms(self, small_problem):
        # nearest-server never builds an engine; the knob is dropped
        # rather than crashing the facade.
        result = run_algorithm(
            "nearest-server", small_problem, seed=0, backend="numpy"
        )
        assert result.algorithm == "nearest-server"

    def test_invalid_backend_rejected(self, small_problem):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            run_algorithm("greedy", small_problem, seed=0, backend="gpu")

    def test_numba_request_fails_loudly_when_absent(self, small_problem):
        from repro.errors import KernelBackendError
        from repro.kernels import numba_available

        if numba_available():
            pytest.skip("numba importable here; the error path is unreachable")
        with pytest.raises(KernelBackendError):
            run_algorithm("greedy", small_problem, seed=0, backend="numba")
