"""OnlineConfig: validation, serialization, and the legacy-kwargs shim."""

import warnings

import pytest

from repro.algorithms.online import OnlineAssignmentManager, OnlineConfig
from repro.datasets import synthesize_meridian_like
from repro.errors import InvalidParameterError
from repro.placement import kcenter_b


@pytest.fixture(scope="module")
def small_world():
    matrix = synthesize_meridian_like(30, seed=0)
    servers = kcenter_b(matrix, 3, seed=0)
    return matrix, servers


class TestValidation:
    def test_defaults(self):
        config = OnlineConfig()
        assert config.capacity is None
        assert config.join_policy == "greedy"

    def test_bad_capacity(self):
        with pytest.raises(InvalidParameterError):
            OnlineConfig(capacity=0)

    def test_bad_policy(self):
        with pytest.raises(InvalidParameterError):
            OnlineConfig(join_policy="wishful")

    def test_frozen(self):
        with pytest.raises(Exception):
            OnlineConfig().capacity = 5

    def test_roundtrip(self):
        config = OnlineConfig(capacity=7, join_policy="nearest")
        assert OnlineConfig.from_dict(config.to_dict()) == config


class TestManagerConstruction:
    def test_config_object_is_primary_api(self, small_world):
        matrix, servers = small_world
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            manager = OnlineAssignmentManager(
                matrix, servers, OnlineConfig(capacity=4)
            )
        assert manager.config.capacity == 4

    def test_legacy_kwargs_warn_but_work(self, small_world):
        matrix, servers = small_world
        with pytest.warns(DeprecationWarning, match="deprecated"):
            manager = OnlineAssignmentManager(
                matrix, servers, capacity=4, join_policy="nearest"
            )
        assert manager.config == OnlineConfig(capacity=4, join_policy="nearest")

    def test_double_specification_rejected(self, small_world):
        matrix, servers = small_world
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(InvalidParameterError, match="both"):
                OnlineAssignmentManager(
                    matrix, servers, OnlineConfig(capacity=4), capacity=5
                )

    def test_equivalent_behaviour_old_and_new(self, small_world):
        matrix, servers = small_world
        new = OnlineAssignmentManager(matrix, servers, OnlineConfig(capacity=2))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = OnlineAssignmentManager(matrix, servers, capacity=2)
        clients = [u for u in range(30) if u not in set(int(s) for s in servers)]
        for node in clients[:8]:
            try:
                new.join(node)
                new_outcome = "ok"
            except Exception as exc:
                new_outcome = type(exc).__name__
            try:
                old.join(node)
                old_outcome = "ok"
            except Exception as exc:
                old_outcome = type(exc).__name__
            assert new_outcome == old_outcome
        assert new.current_d() == old.current_d()


class TestEngineKnobs:
    """The backend / top_k knobs added with the kernel subsystem."""

    def test_defaults(self):
        from repro.core import DEFAULT_TOP_K

        config = OnlineConfig()
        assert config.backend == "auto"
        assert config.top_k == DEFAULT_TOP_K

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            OnlineConfig(backend="gpu")
        with pytest.raises(InvalidParameterError):
            OnlineConfig(top_k=1)

    def test_roundtrip_includes_knobs(self):
        config = OnlineConfig(backend="numpy", top_k=5)
        data = config.to_dict()
        assert data["backend"] == "numpy"
        assert data["top_k"] == 5
        assert OnlineConfig.from_dict(data) == config

    def test_from_dict_tolerates_legacy_payloads(self):
        """Checkpoints/WALs written before the knobs existed still load."""
        from repro.core import DEFAULT_TOP_K

        data = OnlineConfig().to_dict()
        data.pop("backend")
        data.pop("top_k")
        config = OnlineConfig.from_dict(data)
        assert config.backend == "auto"
        assert config.top_k == DEFAULT_TOP_K

    def test_manager_threads_knobs_to_engine(self, small_world):
        matrix, servers = small_world
        manager = OnlineAssignmentManager(
            matrix, servers, OnlineConfig(backend="numpy", top_k=4)
        )
        manager.join(0)
        manager.join(1)
        assert manager.current_d() >= 0.0
        assert manager._engine.backend == "numpy"
