"""Algorithms on degenerate and adversarial inputs.

Uniform distances (total tie-breaking), near-zero spreads, single
clients, clients co-located with servers, and asymmetric matrices — the
inputs where index arithmetic and tie handling break first.
"""

import numpy as np
import pytest

from repro.algorithms import (
    distributed_greedy_detailed,
    greedy,
    longest_first_batch,
    nearest_server,
)
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    max_interaction_path_length,
    max_interaction_path_length_bruteforce,
)
from repro.net.latency import LatencyMatrix

ALGORITHMS = [nearest_server, longest_first_batch, greedy]


def uniform_matrix(n, value=7.0):
    d = np.full((n, n), value)
    np.fill_diagonal(d, 0.0)
    return LatencyMatrix(d)


class TestUniformDistances:
    def test_all_algorithms_terminate(self):
        problem = ClientAssignmentProblem(
            uniform_matrix(12), servers=[0, 1, 2], clients=list(range(3, 12))
        )
        for fn in ALGORITHMS:
            a = fn(problem)
            assert np.all(a.server_of >= 0)
            # All assignments are equivalent: D = 7 + x + 7 where the
            # middle leg is 0 (same server) or 7.
            d = max_interaction_path_length(a)
            assert d in (pytest.approx(14.0), pytest.approx(21.0))

    def test_dga_converges_on_ties(self):
        problem = ClientAssignmentProblem(
            uniform_matrix(12), servers=[0, 1, 2], clients=list(range(3, 12))
        )
        result = distributed_greedy_detailed(problem)
        # With all-equal distances no move can strictly improve below
        # the all-on-one-server optimum of 14.
        assert result.converged or result.n_modifications <= 120


class TestTinyPopulations:
    def test_single_client_single_server(self):
        matrix = LatencyMatrix(np.array([[0.0, 3.0], [3.0, 0.0]]))
        problem = ClientAssignmentProblem(matrix, servers=[0], clients=[1])
        for fn in ALGORITHMS:
            a = fn(problem)
            assert max_interaction_path_length(a) == pytest.approx(6.0)

    def test_clients_colocated_with_servers(self):
        matrix = LatencyMatrix.random_metric(6, seed=0)
        problem = ClientAssignmentProblem(
            matrix, servers=[0, 1, 2], clients=[0, 1, 2]
        )
        for fn in ALGORITHMS:
            a = fn(problem)
            # Each co-located client's nearest server is itself (d = 0);
            # NSA gives zero client legs.
            assert max_interaction_path_length(a) >= 0.0
        nsa = nearest_server(problem)
        assert np.all(nsa.client_distances() == 0.0)


class TestAsymmetric:
    @pytest.fixture(scope="class")
    def problem(self):
        rng = np.random.default_rng(3)
        d = rng.uniform(2.0, 40.0, size=(15, 15))
        np.fill_diagonal(d, 0.0)
        return ClientAssignmentProblem(LatencyMatrix(d), servers=[0, 5, 10])

    def test_algorithms_valid_and_d_consistent(self, problem):
        for fn in ALGORITHMS:
            a = fn(problem)
            assert max_interaction_path_length(a) == pytest.approx(
                max_interaction_path_length_bruteforce(a)
            )

    def test_dga_monotone(self, problem):
        result = distributed_greedy_detailed(problem)
        trace = result.trace
        assert all(b <= a + 1e-9 for a, b in zip(trace, trace[1:]))


class TestNearZeroSpread:
    def test_min_latency_floor_inputs(self):
        # All distances at the validation floor: everything ties.
        matrix = uniform_matrix(8, value=1e-6)
        problem = ClientAssignmentProblem(matrix, servers=[0, 1])
        for fn in ALGORITHMS:
            a = fn(problem)
            assert np.all(a.server_of >= 0)
