"""Tests for baselines (best-single-server, random) and local search."""

import numpy as np
import pytest

from repro.algorithms import (
    best_single_server,
    hill_climbing,
    nearest_server,
    random_assignment,
    simulated_annealing,
)
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    max_interaction_path_length,
)
from repro.errors import CapacityError


class TestBestSingleServer:
    def test_all_on_one_server(self, small_problem):
        a = best_single_server(small_problem)
        assert a.used_servers().size == 1

    def test_picks_the_best(self, small_problem):
        a = best_single_server(small_problem)
        d_best = max_interaction_path_length(a)
        for s in range(small_problem.n_servers):
            candidate = Assignment(
                small_problem,
                np.full(small_problem.n_clients, s, dtype=np.int64),
            )
            assert d_best <= max_interaction_path_length(candidate) + 1e-9

    def test_capacitated_feasibility(self, small_matrix):
        problem = ClientAssignmentProblem(
            small_matrix, servers=[0, 10], capacities=[40, 40]
        )
        a = best_single_server(problem)
        assert a.respects_capacities()

    def test_capacitated_infeasible_raises(self, small_matrix):
        problem = ClientAssignmentProblem(
            small_matrix, servers=[0, 10], capacities=[25, 25]
        )
        with pytest.raises(CapacityError):
            best_single_server(problem)


class TestRandomAssignment:
    def test_seeded_reproducible(self, small_problem):
        a = random_assignment(small_problem, seed=4)
        b = random_assignment(small_problem, seed=4)
        assert a == b

    def test_capacitated_respects_capacities(self, capacitated_problem):
        for seed in range(5):
            a = random_assignment(capacitated_problem, seed=seed)
            assert a.respects_capacities()

    def test_uncapacitated_valid(self, small_problem):
        a = random_assignment(small_problem, seed=0)
        assert np.all(a.server_of < small_problem.n_servers)


class TestHillClimbing:
    def test_never_worse_than_initial(self, small_problem):
        initial = nearest_server(small_problem)
        a = hill_climbing(small_problem, seed=0)
        assert max_interaction_path_length(a) <= max_interaction_path_length(
            initial
        ) + 1e-9

    def test_local_optimum_no_single_move_improves(self, small_problem):
        a = hill_climbing(small_problem, seed=1, max_rounds=100)
        d = max_interaction_path_length(a)
        for c in range(small_problem.n_clients):
            for s in range(small_problem.n_servers):
                if s == a.server_of_client(c):
                    continue
                moved = a.replace(c, s)
                assert max_interaction_path_length(moved) >= d - 1e-9

    def test_capacitated(self, capacitated_problem):
        a = hill_climbing(capacitated_problem, seed=0)
        assert a.respects_capacities()


class TestSimulatedAnnealing:
    def test_never_worse_than_initial(self, small_problem):
        initial = nearest_server(small_problem)
        a = simulated_annealing(small_problem, seed=0, n_steps=500)
        assert max_interaction_path_length(a) <= max_interaction_path_length(
            initial
        ) + 1e-9

    def test_seeded_reproducible(self, small_problem):
        a = simulated_annealing(small_problem, seed=7, n_steps=300)
        b = simulated_annealing(small_problem, seed=7, n_steps=300)
        assert a == b

    def test_capacitated(self, capacitated_problem):
        a = simulated_annealing(capacitated_problem, seed=0, n_steps=300)
        assert a.respects_capacities()


class TestRegistry:
    def test_all_names_resolvable(self):
        from repro.algorithms import algorithm_names, get_algorithm

        for name in algorithm_names():
            assert callable(get_algorithm(name))

    def test_paper_names_registered(self):
        from repro.algorithms import algorithm_names, paper_algorithm_names

        assert set(paper_algorithm_names()) <= set(algorithm_names())

    def test_unknown_name_lists_options(self):
        from repro.algorithms import get_algorithm

        with pytest.raises(KeyError, match="available"):
            get_algorithm("does-not-exist")

    def test_duplicate_registration_rejected(self):
        from repro.algorithms import register

        with pytest.raises(ValueError):
            register("greedy")(lambda problem, **kw: None)
