"""Stateful property test: the online manager under arbitrary
join/leave/rebalance interleavings.

Hypothesis drives a rule-based state machine against
:class:`OnlineAssignmentManager`, checking after every step that the
manager's incremental bookkeeping (loads, membership, current D) agrees
with a from-scratch recomputation.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.algorithms.online import OnlineAssignmentManager
from repro.datasets.synthetic import small_world_latencies
from repro.placement import random_placement

MATRIX = small_world_latencies(30, seed=77)
SERVERS = random_placement(MATRIX, 4, seed=0)
SERVER_SET = {int(s) for s in SERVERS}
CANDIDATES = [u for u in range(MATRIX.n_nodes) if u not in SERVER_SET]
CAPACITY = 10


class OnlineManagerMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.manager = OnlineAssignmentManager(
            MATRIX, SERVERS, capacity=CAPACITY
        )
        self.model: dict = {}  # node -> server (mirror of expected state)

    # ------------------------------------------------------------------
    @precondition(lambda self: len(self.model) < len(CANDIDATES))
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def join(self, pick: int) -> None:
        free = [u for u in CANDIDATES if u not in self.model]
        node = free[pick % len(free)]
        server = self.manager.join(node)
        self.model[node] = server

    @precondition(lambda self: self.model)
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def leave(self, pick: int) -> None:
        nodes = sorted(self.model)
        node = nodes[pick % len(nodes)]
        self.manager.leave(node)
        del self.model[node]

    @precondition(lambda self: len(self.model) >= 2)
    @rule(moves=st.integers(min_value=1, max_value=5))
    def rebalance(self, moves: int) -> None:
        before = self.manager.current_d()
        self.manager.rebalance(max_moves=moves)
        after = self.manager.current_d()
        assert after <= before + 1e-9
        # Refresh the mirror: rebalance may move any client.
        self.model = {
            node: self.manager.server_of(node) for node in self.manager.clients
        }

    # ------------------------------------------------------------------
    @invariant()
    def membership_consistent(self) -> None:
        assert self.manager.n_clients == len(self.model)
        assert self.manager.clients == tuple(sorted(self.model))
        for node, server in self.model.items():
            assert self.manager.server_of(node) == server

    @invariant()
    def loads_match_membership(self) -> None:
        expected = np.zeros(self.manager.n_servers, dtype=np.int64)
        for server in self.model.values():
            expected[server] += 1
        np.testing.assert_array_equal(self.manager.loads(), expected)
        assert np.all(self.manager.loads() <= CAPACITY)

    @invariant()
    def incremental_d_matches_exact(self) -> None:
        assert self.manager.verify()


TestOnlineManagerMachine = OnlineManagerMachine.TestCase
TestOnlineManagerMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
