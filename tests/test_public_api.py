"""The package's public API surface must stay importable and documented."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.net",
    "repro.datasets",
    "repro.placement",
    "repro.core",
    "repro.algorithms",
    "repro.sim",
    "repro.experiments",
    "repro.service",
    "repro.scale",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} must have a module docstring"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES[:-1])
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_quickstart_from_docstring():
    """The README/docstring quickstart must actually run."""
    from repro import (
        ClientAssignmentProblem,
        interaction_lower_bound,
        max_interaction_path_length,
    )
    from repro.algorithms import distributed_greedy
    from repro.datasets import synthesize_meridian_like
    from repro.placement import kcenter_a

    matrix = synthesize_meridian_like(80, seed=0)
    servers = kcenter_a(matrix, 8, seed=0)
    problem = ClientAssignmentProblem(matrix, servers)
    assignment = distributed_greedy(problem)
    d = max_interaction_path_length(assignment)
    ratio = d / interaction_lower_bound(problem)
    assert 1.0 - 1e-9 <= ratio < 3.0


def test_public_exceptions_hierarchy():
    from repro import errors

    for name in (
        "InvalidLatencyMatrixError",
        "InvalidProblemError",
        "InvalidAssignmentError",
        "CapacityError",
        "InfeasibleScheduleError",
        "DatasetError",
        "GraphError",
        "SimulationError",
        "ConsistencyViolation",
        "FairnessViolation",
    ):
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)
        assert exc.__doc__
