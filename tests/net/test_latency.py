"""Tests for repro.net.latency (LatencyMatrix)."""

import numpy as np
import pytest

from repro.errors import InvalidLatencyMatrixError
from repro.net.latency import LatencyMatrix, describe


def square(values):
    return np.asarray(values, dtype=float)


class TestValidation:
    def test_accepts_valid_matrix(self):
        m = LatencyMatrix(square([[0, 1], [2, 0]]))
        assert m.n_nodes == 2

    def test_rejects_non_square(self):
        with pytest.raises(InvalidLatencyMatrixError):
            LatencyMatrix(np.zeros((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(InvalidLatencyMatrixError):
            LatencyMatrix(np.zeros((0, 0)))

    def test_rejects_nan(self):
        with pytest.raises(InvalidLatencyMatrixError):
            LatencyMatrix(square([[0, np.nan], [1, 0]]))

    def test_rejects_inf(self):
        with pytest.raises(InvalidLatencyMatrixError):
            LatencyMatrix(square([[0, np.inf], [1, 0]]))

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(InvalidLatencyMatrixError):
            LatencyMatrix(square([[1, 1], [1, 0]]))

    def test_rejects_zero_off_diagonal(self):
        with pytest.raises(InvalidLatencyMatrixError):
            LatencyMatrix(square([[0, 0], [1, 0]]))

    def test_rejects_negative_off_diagonal(self):
        with pytest.raises(InvalidLatencyMatrixError):
            LatencyMatrix(square([[0, -1], [1, 0]]))

    def test_single_node_matrix_is_valid(self):
        m = LatencyMatrix(np.zeros((1, 1)))
        assert m.n_nodes == 1
        assert m.mean_latency() == 0.0


class TestImmutability:
    def test_values_are_read_only(self):
        m = LatencyMatrix(square([[0, 1], [1, 0]]))
        with pytest.raises(ValueError):
            m.values[0, 1] = 5.0

    def test_attributes_cannot_be_set(self):
        m = LatencyMatrix(square([[0, 1], [1, 0]]))
        with pytest.raises(AttributeError):
            m.n = 3

    def test_input_copy_is_defensive(self):
        raw = square([[0, 1], [1, 0]])
        m = LatencyMatrix(raw)
        raw[0, 1] = 99.0
        assert m.distance(0, 1) == 1.0


class TestAccessors:
    def test_distance_and_getitem(self, tiny_matrix):
        assert tiny_matrix.distance(0, 1) == 2.0
        assert tiny_matrix[0, 1] == 2.0
        assert len(tiny_matrix) == 5

    def test_min_mean_max(self, tiny_matrix):
        assert tiny_matrix.min_latency() == 2.0
        assert tiny_matrix.max_latency() == 8.0
        off = tiny_matrix.values[~np.eye(5, dtype=bool)]
        assert tiny_matrix.mean_latency() == pytest.approx(off.mean())

    def test_percentile(self, tiny_matrix):
        assert tiny_matrix.latency_percentile(0) == 2.0
        assert tiny_matrix.latency_percentile(100) == 8.0

    def test_submatrix(self, tiny_matrix):
        sub = tiny_matrix.submatrix([0, 2, 4])
        assert sub.n_nodes == 3
        assert sub.distance(0, 1) == tiny_matrix.distance(0, 2)
        assert sub.distance(1, 2) == tiny_matrix.distance(2, 4)

    def test_submatrix_empty_rejected(self, tiny_matrix):
        with pytest.raises(InvalidLatencyMatrixError):
            tiny_matrix.submatrix([])

    def test_equality_and_hash(self, tiny_matrix):
        clone = LatencyMatrix(tiny_matrix.values)
        assert clone == tiny_matrix
        assert hash(clone) == hash(tiny_matrix)
        other = tiny_matrix.submatrix([0, 1, 2])
        assert other != tiny_matrix

    def test_repr_mentions_size(self, tiny_matrix):
        assert "n=5" in repr(tiny_matrix)


class TestConstructors:
    def test_from_coordinates_metric(self):
        coords = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]])
        m = LatencyMatrix.from_coordinates(coords)
        assert m.distance(0, 1) == pytest.approx(5.0)
        assert m.distance(0, 2) == pytest.approx(10.0)
        assert m.satisfies_triangle_inequality()

    def test_from_coordinates_scale(self):
        coords = np.array([[0.0], [1.0]])
        m = LatencyMatrix.from_coordinates(coords, scale=50.0)
        assert m.distance(0, 1) == pytest.approx(50.0)

    def test_from_coordinates_min_latency_floor(self):
        coords = np.array([[0.0], [1e-12]])
        m = LatencyMatrix.from_coordinates(coords, min_latency=0.5)
        assert m.distance(0, 1) == 0.5

    def test_from_coordinates_rejects_1d(self):
        with pytest.raises(ValueError):
            LatencyMatrix.from_coordinates(np.array([1.0, 2.0]))

    def test_random_metric_is_metric_and_seeded(self):
        a = LatencyMatrix.random_metric(12, seed=5)
        b = LatencyMatrix.random_metric(12, seed=5)
        assert a == b
        assert a.satisfies_triangle_inequality()


class TestSymmetry:
    def test_symmetric_detection(self, tiny_matrix):
        assert tiny_matrix.is_symmetric()

    def test_asymmetric_detection_and_symmetrize(self):
        m = LatencyMatrix(square([[0, 1], [3, 0]]))
        assert not m.is_symmetric()
        sym = m.symmetrized()
        assert sym.is_symmetric()
        assert sym.distance(0, 1) == pytest.approx(2.0)


class TestTriangleInequality:
    def test_metric_matrix_has_no_violations(self):
        m = LatencyMatrix.random_metric(15, seed=1)
        report = m.triangle_inequality_report()
        assert report.violations == 0
        assert report.violation_rate == 0.0
        assert m.satisfies_triangle_inequality()

    def test_violation_detected(self):
        # d(0,2) = 10 but the detour via 1 costs 2.
        d = square([[0, 1, 10], [1, 0, 1], [10, 1, 0]])
        m = LatencyMatrix(d)
        report = m.triangle_inequality_report()
        assert report.violations > 0
        assert report.max_severity == pytest.approx((10 - 2) / 10)
        assert not m.satisfies_triangle_inequality()

    def test_sampled_report_is_reproducible(self):
        m = LatencyMatrix.random_metric(40, seed=2)
        # Force sampling by a tiny cap.
        r1 = m.triangle_inequality_report(max_triples=500, seed=9)
        r2 = m.triangle_inequality_report(max_triples=500, seed=9)
        assert r1 == r2

    def test_report_on_tiny_matrix(self):
        m = LatencyMatrix(square([[0, 1], [1, 0]]))
        report = m.triangle_inequality_report()
        assert report.triples_examined == 0
        assert report.violation_rate == 0.0

    def test_metric_closure_removes_violations(self):
        d = square([[0, 1, 10], [1, 0, 1], [10, 1, 0]])
        closed = LatencyMatrix(d).metric_closure()
        assert closed.distance(0, 2) == pytest.approx(2.0)
        assert closed.satisfies_triangle_inequality()

    def test_metric_closure_identity_on_metric(self):
        m = LatencyMatrix.random_metric(10, seed=3)
        assert m.metric_closure() == m


class TestSlices:
    def test_client_server_distances(self, tiny_matrix):
        cs = tiny_matrix.client_server_distances(
            np.array([0, 4]), np.array([1, 3])
        )
        assert cs.shape == (2, 2)
        assert cs[0, 0] == tiny_matrix.distance(0, 1)
        assert cs[1, 1] == tiny_matrix.distance(4, 3)

    def test_server_server_distances(self, tiny_matrix):
        ss = tiny_matrix.server_server_distances(np.array([1, 3]))
        assert ss.shape == (2, 2)
        assert ss[0, 1] == tiny_matrix.distance(1, 3)
        assert ss[0, 0] == 0.0


def test_describe_mentions_key_stats(tiny_matrix):
    text = describe(tiny_matrix)
    assert "5 nodes" in text
    assert "symmetric=True" in text
