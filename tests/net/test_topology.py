"""Tests for repro.net.topology (generators and paper gadgets)."""

import numpy as np
import pytest

from repro.net.topology import (
    approx_ratio_gadget,
    clustered_euclidean_matrix,
    clustered_points,
    grid_graph,
    lfb_gadget,
    line_graph,
    ring_graph,
    star_graph,
    waxman_graph,
)


class TestGadgets:
    def test_fig4_distances(self):
        g = approx_ratio_gadget(a=10.0, epsilon=1.0)
        m = g.matrix
        c1, c2 = g.clients
        s, s1, s2 = g.servers
        assert m.distance(c1, s) == 10.0
        assert m.distance(c1, s1) == 9.0
        # Shortest path c1 -> s2 goes via s and c2.
        assert m.distance(c1, s2) == pytest.approx(10 + 10 + 9)

    def test_fig4_requires_valid_epsilon(self):
        with pytest.raises(ValueError):
            approx_ratio_gadget(a=1.0, epsilon=1.0)
        with pytest.raises(ValueError):
            approx_ratio_gadget(a=1.0, epsilon=0.0)

    def test_fig5_distances(self):
        g = lfb_gadget()
        m = g.matrix
        c1, c2 = g.clients
        s1, s2 = g.servers
        assert m.distance(c1, s1) == 5.0
        assert m.distance(c2, s1) == 4.0
        assert m.distance(c2, s2) == 3.0
        assert m.distance(s1, s2) == 4.0
        # c1's distance to s2 routes via c2 or s1; min(7+3, 5+4, 4+4+...)=9
        assert m.distance(c1, s2) == pytest.approx(9.0)


class TestStructuredGraphs:
    def test_star(self):
        m = star_graph(4, spoke_latency=2.0).to_latency_matrix()
        assert m.distance(1, 2) == pytest.approx(4.0)
        assert m.distance(0, 3) == pytest.approx(2.0)

    def test_ring(self):
        m = ring_graph(6).to_latency_matrix()
        assert m.distance(0, 3) == pytest.approx(3.0)
        assert m.distance(0, 5) == pytest.approx(1.0)

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_line(self):
        m = line_graph(4, link_latency=2.0).to_latency_matrix()
        assert m.distance(0, 3) == pytest.approx(6.0)

    def test_line_too_small(self):
        with pytest.raises(ValueError):
            line_graph(1)

    def test_grid(self):
        g = grid_graph(3, 4)
        m = g.to_latency_matrix()
        # Manhattan distance on unit grid.
        assert m.distance(0, 11) == pytest.approx(2 + 3)

    def test_grid_invalid(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)


class TestWaxman:
    def test_connected_and_seeded(self):
        g1 = waxman_graph(30, seed=5)
        g2 = waxman_graph(30, seed=5)
        assert g1.is_connected()
        m1 = g1.to_latency_matrix()
        m2 = g2.to_latency_matrix()
        assert m1 == m2

    def test_too_small(self):
        with pytest.raises(ValueError):
            waxman_graph(1)


class TestClusteredPoints:
    def test_count_and_dim(self):
        pts = clustered_points(57, n_clusters=4, dim=3, seed=0)
        assert pts.shape == (57, 3)

    def test_seeded_reproducible(self):
        a = clustered_points(30, seed=1)
        b = clustered_points(30, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_clusters_capped_at_n(self):
        pts = clustered_points(3, n_clusters=10, seed=0)
        assert pts.shape[0] == 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            clustered_points(0)
        with pytest.raises(ValueError):
            clustered_points(5, n_clusters=0)

    def test_clustering_structure(self):
        # Intra-cluster distances should be much smaller than the global
        # spread: the distance histogram must be strongly bimodal-ish,
        # which we proxy by median << max.
        m = clustered_euclidean_matrix(100, n_clusters=4, seed=3)
        assert m.latency_percentile(50) < 0.6 * m.max_latency()

    def test_matrix_is_metric(self):
        m = clustered_euclidean_matrix(40, seed=2)
        assert m.satisfies_triangle_inequality()
