"""Tests for repro.net.coordinates (Vivaldi embedding)."""

import numpy as np
import pytest

from repro.net.coordinates import VivaldiEmbedding, embed_latencies
from repro.net.latency import LatencyMatrix


@pytest.fixture(scope="module")
def metric_matrix():
    # A genuinely low-dimensional latency structure Vivaldi can recover.
    return LatencyMatrix.random_metric(40, seed=3, dim=3, scale=100.0)


class TestConstruction:
    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            VivaldiEmbedding(0)

    def test_invalid_ce(self):
        with pytest.raises(ValueError):
            VivaldiEmbedding(2, ce=1.5)

    def test_unfitted_access_raises(self):
        emb = VivaldiEmbedding(2)
        assert not emb.fitted
        with pytest.raises(RuntimeError):
            _ = emb.coordinates
        with pytest.raises(RuntimeError):
            emb.predict(0, 1)


class TestFit:
    def test_fit_returns_self_and_sets_state(self, metric_matrix):
        emb = VivaldiEmbedding(3).fit(metric_matrix, rounds=10, seed=0)
        assert emb.fitted
        assert emb.coordinates.shape == (40, 3)
        assert emb.heights.shape == (40,)
        assert np.all(emb.heights >= 0)

    def test_deterministic_per_seed(self, metric_matrix):
        a = VivaldiEmbedding(2).fit(metric_matrix, rounds=5, seed=7)
        b = VivaldiEmbedding(2).fit(metric_matrix, rounds=5, seed=7)
        np.testing.assert_array_equal(a.coordinates, b.coordinates)

    def test_invalid_fit_params(self, metric_matrix):
        with pytest.raises(ValueError):
            VivaldiEmbedding(2).fit(metric_matrix, rounds=0)
        with pytest.raises(ValueError):
            VivaldiEmbedding(2).fit(metric_matrix, neighbors=0)


class TestPrediction:
    def test_predicted_matrix_is_valid(self, metric_matrix):
        emb = VivaldiEmbedding(3).fit(metric_matrix, rounds=15, seed=0)
        predicted = emb.predict_matrix()
        assert predicted.n_nodes == 40
        assert np.all(np.diag(predicted.values) == 0.0)

    def test_predict_pair_consistent_with_matrix(self, metric_matrix):
        emb = VivaldiEmbedding(3).fit(metric_matrix, rounds=10, seed=0)
        predicted = emb.predict_matrix()
        for u, v in [(0, 1), (5, 30), (10, 10)]:
            expected = 0.0 if u == v else max(emb.predict(u, v), 0.1)
            assert predicted.distance(u, v) == pytest.approx(expected)

    def test_error_decreases_with_rounds(self, metric_matrix):
        few = VivaldiEmbedding(3).fit(metric_matrix, rounds=2, seed=1)
        many = VivaldiEmbedding(3).fit(metric_matrix, rounds=40, seed=1)
        err_few = few.quality(metric_matrix).median_relative_error
        err_many = many.quality(metric_matrix).median_relative_error
        assert err_many < err_few

    def test_recovers_low_dim_structure(self, metric_matrix):
        # On genuinely 3-D data Vivaldi should land well under 25%
        # median relative error.
        _est, quality = embed_latencies(
            metric_matrix, dims=3, rounds=40, seed=0, use_height=False
        )
        assert quality.median_relative_error < 0.25

    def test_height_helps_on_access_delay_structure(self):
        # A star-like structure: pairwise latency = h_u + h_v. Heights
        # capture this exactly; a pure Euclidean embedding cannot.
        rng = np.random.default_rng(0)
        h = rng.uniform(5.0, 50.0, size=30)
        d = h[:, None] + h[None, :]
        np.fill_diagonal(d, 0.0)
        matrix = LatencyMatrix(d)
        _with_h, q_h = embed_latencies(matrix, rounds=40, use_height=True, seed=1)
        _no_h, q_e = embed_latencies(matrix, rounds=40, use_height=False, seed=1)
        assert q_h.median_relative_error < q_e.median_relative_error
