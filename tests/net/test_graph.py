"""Tests for repro.net.graph (NetworkGraph)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.net.graph import NetworkGraph


class TestConstruction:
    def test_needs_positive_node_count(self):
        with pytest.raises(GraphError):
            NetworkGraph(0)

    def test_add_link_undirected(self):
        g = NetworkGraph(3)
        g.add_link(0, 1, 2.5)
        assert g.has_link(0, 1)
        assert g.has_link(1, 0)
        assert g.link_latency(1, 0) == 2.5
        assert g.n_links == 1

    def test_add_link_directed(self):
        g = NetworkGraph(3, directed=True)
        g.add_link(0, 1, 2.5)
        assert g.has_link(0, 1)
        assert not g.has_link(1, 0)
        assert g.n_links == 1

    def test_re_add_keeps_smaller_latency(self):
        g = NetworkGraph(2)
        g.add_link(0, 1, 5.0)
        g.add_link(0, 1, 3.0)
        assert g.link_latency(0, 1) == 3.0
        g.add_link(0, 1, 9.0)
        assert g.link_latency(0, 1) == 3.0

    def test_rejects_self_loop(self):
        g = NetworkGraph(2)
        with pytest.raises(GraphError):
            g.add_link(1, 1, 1.0)

    def test_rejects_nonpositive_latency(self):
        g = NetworkGraph(2)
        with pytest.raises(GraphError):
            g.add_link(0, 1, 0.0)

    def test_rejects_out_of_range_node(self):
        g = NetworkGraph(2)
        with pytest.raises(GraphError):
            g.add_link(0, 5, 1.0)

    def test_from_links(self):
        g = NetworkGraph.from_links(3, [(0, 1, 1.0), (1, 2, 2.0)])
        assert g.n_links == 2

    def test_missing_link_latency_raises(self):
        g = NetworkGraph(3)
        with pytest.raises(GraphError):
            g.link_latency(0, 2)

    def test_neighbors_returns_copy(self):
        g = NetworkGraph.from_links(3, [(0, 1, 1.0)])
        nbrs = g.neighbors(0)
        nbrs[2] = 99.0
        assert not g.has_link(0, 2)


class TestRouting:
    def test_to_latency_matrix_line(self):
        g = NetworkGraph.from_links(3, [(0, 1, 1.0), (1, 2, 2.0)])
        m = g.to_latency_matrix()
        assert m.distance(0, 2) == pytest.approx(3.0)
        assert m.distance(2, 0) == pytest.approx(3.0)

    def test_routing_picks_shortest(self):
        g = NetworkGraph.from_links(
            3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]
        )
        m = g.to_latency_matrix()
        assert m.distance(0, 2) == pytest.approx(2.0)

    def test_disconnected_graph_rejected(self):
        g = NetworkGraph(3)
        g.add_link(0, 1, 1.0)
        with pytest.raises(GraphError):
            g.to_latency_matrix()

    def test_is_connected(self):
        g = NetworkGraph.from_links(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert g.is_connected()
        g2 = NetworkGraph(3)
        g2.add_link(0, 1, 1.0)
        assert not g2.is_connected()

    def test_shortest_distances_from(self):
        g = NetworkGraph.from_links(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        dist = g.shortest_distances_from(0)
        assert list(dist) == [0.0, 1.0, 2.0, 3.0]

    def test_matrix_satisfies_triangle_inequality(self):
        # Shortest-path closure of any graph is metric.
        rng = np.random.default_rng(0)
        g = NetworkGraph(10)
        for u in range(9):
            g.add_link(u, u + 1, float(rng.uniform(1, 4)))
        for _ in range(10):
            u, v = rng.integers(0, 10, size=2)
            if u != v:
                g.add_link(int(u), int(v), float(rng.uniform(1, 4)))
        assert g.to_latency_matrix().satisfies_triangle_inequality()
