"""Tests for repro.net.routing (Dijkstra, Floyd-Warshall)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.net.routing import (
    all_pairs_shortest_paths,
    dijkstra,
    floyd_warshall,
    reconstruct_path,
    shortest_path_tree,
)


def line_adjacency(n, w=1.0):
    adj = [[] for _ in range(n)]
    for u in range(n - 1):
        adj[u].append((u + 1, w))
        adj[u + 1].append((u, w))
    return adj


class TestDijkstra:
    def test_line_distances(self):
        dist = dijkstra(line_adjacency(5), 0)
        assert list(dist) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_unreachable_is_inf(self):
        adj = [[(1, 1.0)], [(0, 1.0)], []]
        dist = dijkstra(adj, 0)
        assert dist[2] == np.inf

    def test_prefers_shorter_indirect_path(self):
        # 0->2 direct costs 10; via 1 costs 3.
        adj = [[(1, 1.0), (2, 10.0)], [(2, 2.0)], []]
        dist = dijkstra(adj, 0)
        assert dist[2] == pytest.approx(3.0)

    def test_source_out_of_range(self):
        with pytest.raises(GraphError):
            dijkstra(line_adjacency(3), 7)

    def test_nonpositive_weight_rejected(self):
        adj = [[(1, 0.0)], []]
        with pytest.raises(GraphError):
            dijkstra(adj, 0)

    def test_early_exit_target_settles_target(self):
        dist = dijkstra(line_adjacency(6), 0, target=2)
        assert dist[2] == 2.0


class TestFloydWarshall:
    def test_matches_dijkstra_on_random_graph(self):
        rng = np.random.default_rng(4)
        n = 12
        weights = np.full((n, n), np.inf)
        np.fill_diagonal(weights, 0.0)
        adj = [[] for _ in range(n)]
        for _ in range(40):
            u, v = rng.integers(0, n, size=2)
            if u == v:
                continue
            w = float(rng.uniform(0.5, 5.0))
            weights[u, v] = min(weights[u, v], w)
            adj[u].append((v, w))
        fw = floyd_warshall(weights)
        for u in range(n):
            np.testing.assert_allclose(fw[u], dijkstra(adj, u))

    def test_rejects_non_square(self):
        with pytest.raises(GraphError):
            floyd_warshall(np.zeros((2, 3)))


class TestAllPairs:
    def test_dense_and_sparse_paths_agree(self):
        adj = line_adjacency(8)
        sparse = all_pairs_shortest_paths(adj, dense_threshold=0.99)
        dense = all_pairs_shortest_paths(adj, dense_threshold=0.0)
        np.testing.assert_allclose(sparse, dense)

    def test_empty_graph(self):
        out = all_pairs_shortest_paths([])
        assert out.shape == (0, 0)

    def test_line_matrix_values(self):
        out = all_pairs_shortest_paths(line_adjacency(4))
        assert out[0, 3] == 3.0
        assert out[3, 0] == 3.0


class TestPathReconstruction:
    def test_tree_and_path(self):
        dist, pred = shortest_path_tree(line_adjacency(5), 0)
        assert dist[4] == 4.0
        assert reconstruct_path(pred, 0, 4) == [0, 1, 2, 3, 4]

    def test_trivial_path(self):
        _dist, pred = shortest_path_tree(line_adjacency(3), 1)
        assert reconstruct_path(pred, 1, 1) == [1]

    def test_no_path_raises(self):
        adj = [[], []]
        _dist, pred = shortest_path_tree(adj, 0)
        with pytest.raises(GraphError):
            reconstruct_path(pred, 0, 1)
