"""Tests for repro.net.analysis (asymmetry, clustering, stretch)."""

import numpy as np
import pytest

from repro.net.analysis import (
    asymmetry_report,
    cluster_nodes,
    cluster_quality,
    stretch_report,
)
from repro.net.latency import LatencyMatrix
from repro.net.topology import clustered_euclidean_matrix


class TestAsymmetry:
    def test_symmetric_matrix_scores_zero(self, tiny_matrix):
        report = asymmetry_report(tiny_matrix)
        assert report.mean_relative_asymmetry == 0.0
        assert report.fraction_above_10pct == 0.0

    def test_asymmetric_detected(self):
        d = np.array([[0.0, 10.0], [20.0, 0.0]])
        report = asymmetry_report(LatencyMatrix(d))
        assert report.max_relative_asymmetry == pytest.approx(0.5)
        assert report.fraction_above_10pct == 1.0


class TestStretch:
    def test_metric_matrix_unstretched(self):
        matrix = LatencyMatrix.random_metric(15, seed=0)
        report = stretch_report(matrix)
        assert report.mean_stretch == pytest.approx(1.0)
        assert report.fraction_stretched == 0.0

    def test_detour_detected(self):
        d = np.array(
            [[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]]
        )
        report = stretch_report(LatencyMatrix(d))
        assert report.max_stretch == pytest.approx(5.0)  # 10 vs closure 2
        assert report.fraction_stretched > 0.0

    def test_meridian_like_has_stretch(self):
        from repro.datasets import synthesize_meridian_like

        matrix = synthesize_meridian_like(80, seed=0)
        report = stretch_report(matrix)
        assert report.fraction_stretched > 0.05
        assert report.mean_stretch > 1.0


class TestClustering:
    @pytest.fixture(scope="class")
    def clustered(self):
        return clustered_euclidean_matrix(
            60, n_clusters=3, cluster_spread=0.02, seed=1
        )

    def test_labels_shape_and_range(self, clustered):
        labels, medoids = cluster_nodes(clustered, 3, seed=0)
        assert labels.shape == (60,)
        assert set(np.unique(labels)) <= {0, 1, 2}
        assert medoids.shape == (3,)

    def test_recovers_planted_clusters(self, clustered):
        labels, _ = cluster_nodes(clustered, 3, seed=0)
        score = cluster_quality(clustered, labels)
        assert score > 0.5  # tight, well-separated planted clusters

    def test_wrong_k_worse_quality(self, clustered):
        labels3, _ = cluster_nodes(clustered, 3, seed=0)
        labels8, _ = cluster_nodes(clustered, 8, seed=0)
        assert cluster_quality(clustered, labels3) > cluster_quality(
            clustered, labels8
        )

    def test_k_validation(self, clustered):
        with pytest.raises(ValueError):
            cluster_nodes(clustered, 0)
        with pytest.raises(ValueError):
            cluster_nodes(clustered, 61)

    def test_deterministic(self, clustered):
        a, am = cluster_nodes(clustered, 3, seed=5)
        b, bm = cluster_nodes(clustered, 3, seed=5)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(am, bm)

    def test_quality_label_shape_checked(self, clustered):
        with pytest.raises(ValueError):
            cluster_quality(clustered, np.zeros(5, dtype=int))

    def test_k_equals_one(self, clustered):
        labels, medoids = cluster_nodes(clustered, 1, seed=0)
        assert np.all(labels == 0)
        assert medoids.shape == (1,)
