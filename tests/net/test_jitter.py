"""Tests for repro.net.jitter (jitter models, percentile matrices)."""

import numpy as np
import pytest

from repro.net.jitter import (
    GammaJitter,
    LogNormalJitter,
    NoJitter,
    ShiftedExponentialJitter,
    percentile_matrix,
)

MODELS = [
    NoJitter(),
    LogNormalJitter(0.2),
    GammaJitter(20.0),
    ShiftedExponentialJitter(0.1),
]


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
class TestCommonContract:
    def test_factors_positive(self, model):
        rng = np.random.default_rng(0)
        factors = model.sample_factor(rng, size=1000)
        assert factors.shape == (1000,)
        assert np.all(factors > 0)

    def test_percentile_monotone(self, model):
        qs = [10, 50, 90, 99]
        values = [model.factor_percentile(q) for q in qs]
        assert values == sorted(values)

    def test_percentile_range_check(self, model):
        with pytest.raises(ValueError):
            model.factor_percentile(-1)
        with pytest.raises(ValueError):
            model.factor_percentile(101)

    def test_empirical_percentile_matches_analytic(self, model):
        rng = np.random.default_rng(1)
        samples = model.sample_factor(rng, size=200_000)
        for q in (50, 90, 99):
            analytic = model.factor_percentile(q)
            empirical = np.percentile(samples, q)
            assert empirical == pytest.approx(analytic, rel=0.05)

    def test_sample_scales_base(self, model):
        rng = np.random.default_rng(2)
        base = np.array([10.0, 100.0])
        out = model.sample(base, rng)
        assert out.shape == base.shape
        assert np.all(out > 0)


class TestNoJitter:
    def test_always_one(self):
        rng = np.random.default_rng(0)
        assert np.all(NoJitter().sample_factor(rng, size=10) == 1.0)
        assert NoJitter().factor_percentile(99.9) == 1.0


class TestLogNormal:
    def test_median_is_one(self):
        assert LogNormalJitter(0.4).factor_percentile(50) == pytest.approx(1.0)

    def test_zero_sigma_degenerates(self):
        m = LogNormalJitter(0.0)
        assert m.factor_percentile(90) == 1.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            LogNormalJitter(-0.1)


class TestGamma:
    def test_unit_mean(self):
        rng = np.random.default_rng(3)
        samples = GammaJitter(10.0).sample_factor(rng, size=100_000)
        assert samples.mean() == pytest.approx(1.0, rel=0.02)

    def test_nonpositive_shape_rejected(self):
        with pytest.raises(ValueError):
            GammaJitter(0.0)


class TestShiftedExponential:
    def test_minimum_is_one(self):
        rng = np.random.default_rng(4)
        samples = ShiftedExponentialJitter(0.5).sample_factor(rng, size=1000)
        assert np.all(samples >= 1.0)

    def test_closed_form_percentile(self):
        m = ShiftedExponentialJitter(0.2)
        # P(1 + 0.2 Exp(1) <= x) = 1 - exp(-(x-1)/0.2)
        assert m.factor_percentile(90) == pytest.approx(
            1.0 - 0.2 * np.log(0.1)
        )

    def test_100th_percentile_unbounded(self):
        with pytest.raises(ValueError):
            ShiftedExponentialJitter(0.2).factor_percentile(100)

    def test_zero_extra_degenerates(self):
        assert ShiftedExponentialJitter(0.0).factor_percentile(99) == 1.0

    def test_negative_extra_rejected(self):
        with pytest.raises(ValueError):
            ShiftedExponentialJitter(-0.5)


class TestPercentileMatrix:
    def test_scales_off_diagonal_only(self):
        base = np.array([[0.0, 10.0], [20.0, 0.0]])
        out = percentile_matrix(base, LogNormalJitter(0.3), q=90)
        factor = LogNormalJitter(0.3).factor_percentile(90)
        assert out[0, 1] == pytest.approx(10.0 * factor)
        assert out[1, 0] == pytest.approx(20.0 * factor)
        assert out[0, 0] == 0.0

    def test_higher_percentile_never_smaller(self):
        base = np.full((3, 3), 10.0)
        np.fill_diagonal(base, 0.0)
        m90 = percentile_matrix(base, GammaJitter(8.0), q=90)
        m99 = percentile_matrix(base, GammaJitter(8.0), q=99)
        assert np.all(m99 >= m90)
