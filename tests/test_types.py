"""Tests for repro.types (index coercion, InteractionPath)."""

import numpy as np
import pytest

from repro.types import InteractionPath, as_index_array


class TestAsIndexArray:
    def test_list_coerced(self):
        arr = as_index_array([1, 2, 3])
        assert arr.dtype == np.int64
        np.testing.assert_array_equal(arr, [1, 2, 3])

    def test_defensive_copy(self):
        src = np.array([1, 2, 3], dtype=np.int64)
        arr = as_index_array(src)
        src[0] = 99
        assert arr[0] == 1

    def test_integral_floats_accepted(self):
        arr = as_index_array(np.array([1.0, 2.0]))
        assert arr.dtype == np.int64

    def test_fractional_floats_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            as_index_array(np.array([1.5, 2.0]))

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            as_index_array(np.zeros((2, 2), dtype=int))

    def test_empty_accepted(self):
        assert as_index_array([]).shape == (0,)

    def test_name_in_error(self):
        with pytest.raises(ValueError, match="servers"):
            as_index_array(np.zeros((2, 2), dtype=int), name="servers")


class TestInteractionPath:
    def test_hops_distinct_servers(self):
        path = InteractionPath(
            client_a=1, server_a=10, server_b=11, client_b=2, length=30.0
        )
        assert path.hops() == (1, 10, 11, 2)

    def test_hops_shared_server(self):
        path = InteractionPath(
            client_a=1, server_a=10, server_b=10, client_b=2, length=12.0
        )
        assert path.hops() == (1, 10, 2)

    def test_self_path_hops(self):
        path = InteractionPath(
            client_a=1, server_a=10, server_b=10, client_b=1, length=8.0
        )
        assert path.hops() == (1, 10, 1)

    def test_frozen(self):
        path = InteractionPath(1, 10, 11, 2, 30.0)
        with pytest.raises(AttributeError):
            path.length = 99.0
