"""Tests for the King measurement-campaign simulator."""

import numpy as np
import pytest

from repro.datasets import (
    MeasurementCampaign,
    drop_incomplete_nodes,
    measurement_error_report,
    simulate_king_measurements,
)
from repro.net.jitter import LogNormalJitter, NoJitter
from repro.net.latency import LatencyMatrix


@pytest.fixture(scope="module")
def truth():
    return LatencyMatrix.random_metric(30, seed=6, scale=100.0)


class TestCampaignValidation:
    def test_defaults_valid(self):
        MeasurementCampaign()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probes_per_pair": 0},
            {"estimate_percentile": 150.0},
            {"pair_loss_rate": 1.0},
            {"node_loss_rate": -0.1},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            MeasurementCampaign(**kwargs)


class TestMeasurement:
    def test_noiseless_campaign_reproduces_truth(self, truth):
        campaign = MeasurementCampaign(jitter=NoJitter(), probes_per_pair=1)
        raw = simulate_king_measurements(truth, campaign, seed=0)
        np.testing.assert_allclose(raw, truth.values)

    def test_symmetric_output(self, truth):
        raw = simulate_king_measurements(truth, seed=1)
        np.testing.assert_allclose(raw, raw.T, equal_nan=True)

    def test_deterministic_per_seed(self, truth):
        a = simulate_king_measurements(truth, seed=2)
        b = simulate_king_measurements(truth, seed=2)
        np.testing.assert_array_equal(a, b)

    def test_jitter_biases_high_percentile_up(self, truth):
        median_campaign = MeasurementCampaign(
            jitter=LogNormalJitter(0.3), estimate_percentile=50.0
        )
        p90_campaign = MeasurementCampaign(
            jitter=LogNormalJitter(0.3), estimate_percentile=90.0
        )
        med = simulate_king_measurements(truth, median_campaign, seed=3)
        p90 = simulate_king_measurements(truth, p90_campaign, seed=3)
        off = ~np.eye(truth.n_nodes, dtype=bool)
        assert p90[off].mean() > med[off].mean()

    def test_more_probes_reduce_median_error(self, truth):
        few = MeasurementCampaign(
            jitter=LogNormalJitter(0.4), probes_per_pair=1
        )
        many = MeasurementCampaign(
            jitter=LogNormalJitter(0.4), probes_per_pair=15
        )
        err_few, _ = measurement_error_report(
            truth, simulate_king_measurements(truth, few, seed=4)
        )
        err_many, _ = measurement_error_report(
            truth, simulate_king_measurements(truth, many, seed=4)
        )
        assert err_many < err_few


class TestLosses:
    def test_pair_loss_leaves_nans(self, truth):
        campaign = MeasurementCampaign(pair_loss_rate=0.1)
        raw = simulate_king_measurements(truth, campaign, seed=5)
        frac = np.isnan(raw[~np.eye(truth.n_nodes, dtype=bool)]).mean()
        assert 0.02 < frac < 0.3

    def test_node_loss_kills_whole_rows(self, truth):
        campaign = MeasurementCampaign(node_loss_rate=0.2)
        raw = simulate_king_measurements(truth, campaign, seed=6)
        dead_rows = [
            u
            for u in range(truth.n_nodes)
            if np.isnan(np.delete(raw[u], u)).all()
        ]
        assert dead_rows  # some nodes completely unmeasured

    def test_pipeline_to_cleaning(self, truth):
        campaign = MeasurementCampaign(node_loss_rate=0.15, pair_loss_rate=0.01)
        raw = simulate_king_measurements(truth, campaign, seed=7)
        cleaned, report = drop_incomplete_nodes(raw)
        assert report.n_after < truth.n_nodes
        assert np.isfinite(cleaned.values).all()

    def test_error_report_requires_measurements(self, truth):
        raw = np.full((truth.n_nodes, truth.n_nodes), np.nan)
        with pytest.raises(ValueError):
            measurement_error_report(truth, raw)
