"""Tests for repro.datasets.cleaning (drop_incomplete_nodes)."""

import numpy as np
import pytest

from repro.datasets.cleaning import drop_incomplete_nodes
from repro.errors import DatasetError


def full_matrix(n, value=10.0):
    d = np.full((n, n), value)
    np.fill_diagonal(d, 0.0)
    return d


class TestCleanInput:
    def test_complete_matrix_untouched(self):
        raw = full_matrix(5)
        cleaned, report = drop_incomplete_nodes(raw)
        assert cleaned.n_nodes == 5
        assert report.n_before == 5
        assert report.n_after == 5
        assert report.dropped == ()
        assert report.missing_entries == 0


class TestMissingHandling:
    def test_single_bad_node_dropped(self):
        raw = full_matrix(6)
        raw[2, 4] = np.nan
        raw[4, 2] = np.nan
        raw[2, 5] = np.nan
        raw[5, 2] = np.nan
        cleaned, report = drop_incomplete_nodes(raw)
        # Node 2 participates in 4 missing entries; dropping it clears all.
        assert report.dropped == (2,)
        assert cleaned.n_nodes == 5
        assert report.missing_entries == 4

    def test_negative_sentinel_treated_as_missing(self):
        raw = full_matrix(4)
        raw[1, 3] = -1.0
        cleaned, report = drop_incomplete_nodes(raw)
        assert cleaned.n_nodes == 3
        assert len(report.dropped) == 1

    def test_zero_off_diagonal_treated_as_missing(self):
        raw = full_matrix(4)
        raw[0, 1] = 0.0
        cleaned, _report = drop_incomplete_nodes(raw)
        assert cleaned.n_nodes == 3

    def test_sentinels_kept_when_disabled(self):
        raw = full_matrix(4)
        raw[1, 3] = np.nan
        raw[0, 2] = -1.0  # would be missing with the default flag
        with pytest.raises(Exception):
            # -1 is an invalid latency, so validation must fail if we
            # keep it.
            drop_incomplete_nodes(raw, treat_nonpositive_as_missing=False)

    def test_greedy_peeling_prefers_worst_node(self):
        # Node 0 is missing against everyone; nodes 1..4 only against 0.
        raw = full_matrix(5)
        raw[0, 1:] = np.nan
        raw[1:, 0] = np.nan
        cleaned, report = drop_incomplete_nodes(raw)
        assert report.dropped == (0,)
        assert cleaned.n_nodes == 4

    def test_report_kept_alias(self):
        raw = full_matrix(3)
        _cleaned, report = drop_incomplete_nodes(raw)
        assert report.kept == report.n_after


class TestErrors:
    def test_non_square_rejected(self):
        with pytest.raises(DatasetError):
            drop_incomplete_nodes(np.zeros((2, 3)))

    def test_all_missing_peels_to_single_node(self):
        # A single node is vacuously complete, so peeling always
        # terminates with at least one node left.
        raw = np.full((3, 3), np.nan)
        np.fill_diagonal(raw, 0.0)
        cleaned, report = drop_incomplete_nodes(raw)
        assert cleaned.n_nodes == 1
        assert report.n_after == 1
        assert len(report.dropped) == 2
