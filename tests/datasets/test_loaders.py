"""Tests for the Meridian / MIT King loaders (real file formats)."""

import numpy as np
import pytest

from repro.datasets import load_meridian_file, load_mit_king_file
from repro.datasets.io import write_matrix_text


def make_raw(n, seed, missing_pairs=()):
    rng = np.random.default_rng(seed)
    d = rng.uniform(5.0, 200.0, size=(n, n))
    d = (d + d.T) / 2
    np.fill_diagonal(d, 0.0)
    for u, v in missing_pairs:
        d[u, v] = np.nan
        d[v, u] = np.nan
    return d


class TestMeridianLoader:
    def test_loads_and_scales_microseconds(self, tmp_path):
        raw = make_raw(5, seed=0) * 1000.0  # store as microseconds
        path = tmp_path / "meridian_matrix.txt"
        write_matrix_text(path, raw)
        matrix, report = load_meridian_file(path)  # default unit 1e-3
        assert matrix.n_nodes == 5
        assert report.n_before == 5
        # Values back in milliseconds.
        assert matrix.values.max() < 1000.0

    def test_cleaning_applied(self, tmp_path):
        raw = make_raw(6, seed=1, missing_pairs=[(0, 3), (0, 4)]) * 1000.0
        path = tmp_path / "meridian_matrix.txt"
        write_matrix_text(path, raw)
        matrix, report = load_meridian_file(path)
        assert matrix.n_nodes == 5
        assert 0 in report.dropped


class TestMitLoader:
    def test_loads_milliseconds(self, tmp_path):
        raw = make_raw(4, seed=2)
        path = tmp_path / "king.txt"
        write_matrix_text(path, raw)
        matrix, report = load_mit_king_file(path)
        assert matrix.n_nodes == 4
        np.testing.assert_allclose(matrix.values, raw, atol=1e-3)

    def test_unit_scale(self, tmp_path):
        raw = make_raw(4, seed=3) * 1000.0
        path = tmp_path / "king.txt"
        write_matrix_text(path, raw)
        matrix, _ = load_mit_king_file(path, unit_scale=1e-3)
        assert matrix.values.max() < 1000.0
