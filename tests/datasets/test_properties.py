"""Property-based tests for the dataset substrate."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DeploymentPlan
from repro.datasets.cleaning import drop_incomplete_nodes
from repro.datasets.io import (
    read_matrix_npy,
    read_matrix_text,
    write_matrix_npy,
    write_matrix_text,
)
from repro.net.latency import LatencyMatrix

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)


@st.composite
def raw_matrices(draw, max_nodes=12):
    """Random measurement matrices with some missing entries."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    missing_rate = draw(st.floats(min_value=0.0, max_value=0.4))
    rng = np.random.default_rng(seed)
    d = rng.uniform(1.0, 100.0, size=(n, n))
    d = (d + d.T) / 2.0
    np.fill_diagonal(d, 0.0)
    mask = rng.uniform(size=(n, n)) < missing_rate
    mask = mask | mask.T
    np.fill_diagonal(mask, False)
    d = np.where(mask, np.nan, d)
    return d


class TestCleaningProperties:
    @SETTINGS
    @given(raw_matrices())
    def test_output_is_complete_and_valid(self, raw):
        cleaned, report = drop_incomplete_nodes(raw)
        assert np.isfinite(cleaned.values).all()
        assert report.n_after == cleaned.n_nodes
        assert report.n_after + len(report.dropped) == report.n_before

    @SETTINGS
    @given(raw_matrices())
    def test_idempotent(self, raw):
        cleaned, _ = drop_incomplete_nodes(raw)
        again, report = drop_incomplete_nodes(cleaned.values)
        assert report.dropped == ()
        assert again == cleaned

    @SETTINGS
    @given(raw_matrices())
    def test_kept_entries_preserved(self, raw):
        cleaned, report = drop_incomplete_nodes(raw)
        kept = [
            u for u in range(raw.shape[0]) if u not in set(report.dropped)
        ]
        for i, u in enumerate(kept):
            for j, v in enumerate(kept):
                if i != j:
                    assert cleaned.values[i, j] == raw[u, v]


class TestIoProperties:
    @SETTINGS
    @given(raw=raw_matrices(), fmt=st.sampled_from(["text", "npy"]))
    def test_round_trip(self, tmp_path_factory, raw, fmt):
        tmp = tmp_path_factory.mktemp("io")
        if fmt == "npy":
            path = tmp / "m.npy"
            write_matrix_npy(path, raw)
            out = read_matrix_npy(path)
            np.testing.assert_array_equal(out, raw)
        else:
            path = tmp / "m.txt"
            write_matrix_text(path, raw, fmt="%.9f")
            out = read_matrix_text(path)
            np.testing.assert_allclose(out, raw, atol=1e-8)


@st.composite
def solved_instances(draw):
    from repro.algorithms import nearest_server
    from repro.core import ClientAssignmentProblem

    n = draw(st.integers(min_value=4, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    d = rng.uniform(1.0, 50.0, size=(n, n))
    d = (d + d.T) / 2.0
    np.fill_diagonal(d, 0.0)
    matrix = LatencyMatrix(d)
    k = draw(st.integers(min_value=1, max_value=max(1, n // 2)))
    servers = rng.choice(n, size=k, replace=False)
    problem = ClientAssignmentProblem(matrix, servers)
    return matrix, nearest_server(problem)


class TestDeploymentProperties:
    @SETTINGS
    @given(solved_instances())
    def test_jsonable_round_trip(self, solved):
        _matrix, assignment = solved
        plan = DeploymentPlan.from_assignment(assignment)
        again = DeploymentPlan.from_jsonable(plan.to_jsonable())
        assert again == plan

    @SETTINGS
    @given(solved_instances())
    def test_rebuilt_assignment_matches(self, solved):
        matrix, assignment = solved
        plan = DeploymentPlan.from_assignment(assignment)
        rebuilt = plan.to_assignment(matrix)
        assert rebuilt.as_mapping() == assignment.as_mapping()
        assert plan.validate_against(matrix)
