"""Tests for repro.datasets.synthetic (InternetLatencyModel)."""

import numpy as np
import pytest

from repro.datasets.synthetic import InternetLatencyModel, small_world_latencies


class TestModelValidation:
    def test_defaults_are_valid(self):
        model = InternetLatencyModel(n_nodes=50)
        assert model.n_nodes == 50

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            InternetLatencyModel(n_nodes=1)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cluster_spread", 0.0),
            ("geo_scale", -1.0),
            ("min_latency", 0.0),
            ("noise_sigma", -0.1),
            ("access_delay_mean", -1.0),
            ("spike_fraction", 1.0),
            ("missing_fraction", -0.2),
        ],
    )
    def test_rejects_bad_parameters(self, field, value):
        with pytest.raises(ValueError):
            InternetLatencyModel(n_nodes=10, **{field: value})


class TestGeneration:
    def test_shape_and_diagonal(self):
        m = InternetLatencyModel(n_nodes=60).generate(seed=0)
        assert m.n_nodes == 60
        assert np.all(np.diag(m.values) == 0.0)

    def test_deterministic_per_seed(self):
        model = InternetLatencyModel(n_nodes=40)
        assert model.generate(seed=5) == model.generate(seed=5)

    def test_different_seeds_differ(self):
        model = InternetLatencyModel(n_nodes=40)
        assert model.generate(seed=5) != model.generate(seed=6)

    def test_symmetric_by_default(self):
        m = InternetLatencyModel(n_nodes=30).generate(seed=1)
        assert m.is_symmetric()

    def test_asymmetric_mode(self):
        model = InternetLatencyModel(
            n_nodes=30, symmetric=False, asymmetry_sigma=0.05
        )
        m = model.generate(seed=1)
        assert not m.is_symmetric()

    def test_min_latency_respected(self):
        model = InternetLatencyModel(n_nodes=30, min_latency=3.0)
        m = model.generate(seed=2)
        off = m.values[~np.eye(30, dtype=bool)]
        assert off.min() >= 3.0

    def test_missing_fraction_shrinks_matrix(self):
        model = InternetLatencyModel(n_nodes=80, missing_fraction=0.02)
        raw = model.generate_raw(seed=3)
        assert np.isnan(raw).any()
        cleaned = model.generate(seed=3)
        assert cleaned.n_nodes < 80
        assert np.isfinite(cleaned.values).all()

    def test_no_missing_keeps_all_nodes(self):
        model = InternetLatencyModel(n_nodes=50)
        assert model.generate(seed=0).n_nodes == 50


class TestSmallWorld:
    def test_basic_properties(self):
        m = small_world_latencies(25, seed=0)
        assert m.n_nodes == 25
        assert m.is_symmetric()

    def test_seeded(self):
        assert small_world_latencies(20, seed=4) == small_world_latencies(20, seed=4)
