"""Realism checks: the synthetic data must reproduce the statistical
properties of King-measured Internet latencies that the paper's results
depend on (DESIGN.md §5 substitution argument)."""

import numpy as np
import pytest

from repro.datasets import synthesize_meridian_like, synthesize_mit_like


@pytest.fixture(scope="module")
def meridian():
    return synthesize_meridian_like(300, seed=0)


@pytest.fixture(scope="module")
def mit():
    return synthesize_mit_like(300, seed=0)


class TestMeridianLike:
    def test_triangle_violations_exist(self, meridian):
        # The paper (footnote 2) relies on real data violating the
        # triangle inequality; a few percent of triples should violate.
        report = meridian.triangle_inequality_report(max_triples=100_000)
        assert 0.005 < report.violation_rate < 0.25

    def test_heavy_right_tail(self, meridian):
        # p99 well above the median — the hallmark of wide-area RTTs.
        assert meridian.latency_percentile(99) > 2.0 * meridian.latency_percentile(50)

    def test_plausible_magnitudes(self, meridian):
        # Median tens-to-low-hundreds of ms, max below ~2 s.
        assert 10.0 < meridian.latency_percentile(50) < 400.0
        assert meridian.max_latency() < 2000.0

    def test_clustering_low_percentile_small(self, meridian):
        # Intra-cluster pairs make the 10th percentile much smaller than
        # the median.
        assert meridian.latency_percentile(10) < 0.6 * meridian.latency_percentile(50)

    def test_symmetric(self, meridian):
        # King halves round trips, so published matrices are symmetric.
        assert meridian.is_symmetric()


class TestMitLike:
    def test_triangle_violations_exist(self, mit):
        report = mit.triangle_inequality_report(max_triples=100_000)
        assert 0.002 < report.violation_rate < 0.25

    def test_heavy_tail_and_magnitudes(self, mit):
        assert mit.latency_percentile(99) > 1.8 * mit.latency_percentile(50)
        assert 10.0 < mit.latency_percentile(50) < 400.0

    def test_differs_from_meridian(self, meridian, mit):
        assert meridian != mit


class TestDefaultSizes:
    def test_full_scale_constants(self):
        from repro.datasets import MERIDIAN_NODE_COUNT, MIT_KING_NODE_COUNT

        assert MERIDIAN_NODE_COUNT == 1796
        assert MIT_KING_NODE_COUNT == 1024
