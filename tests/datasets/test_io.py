"""Tests for repro.datasets.io (matrix readers/writers)."""

import numpy as np
import pytest

from repro.datasets.io import (
    load_matrix_auto,
    read_matrix_npy,
    read_matrix_text,
    write_matrix_npy,
    write_matrix_text,
)
from repro.errors import DatasetError


@pytest.fixture
def matrix():
    d = np.array([[0.0, 1.5, 2.25], [1.5, 0.0, 3.0], [2.25, 3.0, 0.0]])
    return d


class TestTextFormat:
    def test_round_trip(self, tmp_path, matrix):
        path = tmp_path / "m.txt"
        write_matrix_text(path, matrix)
        out = read_matrix_text(path)
        np.testing.assert_allclose(out, matrix, atol=1e-3)

    def test_nan_round_trips_via_sentinel(self, tmp_path, matrix):
        matrix[0, 2] = np.nan
        path = tmp_path / "m.txt"
        write_matrix_text(path, matrix)
        text = path.read_text()
        assert "-1" in text
        out = read_matrix_text(path)
        assert np.isnan(out[0, 2])

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("# header\n\n0 1\n1 0\n")
        out = read_matrix_text(path)
        assert out.shape == (2, 2)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("0 1\n1\n")
        with pytest.raises(DatasetError):
            read_matrix_text(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("0 x\n1 0\n")
        with pytest.raises(DatasetError):
            read_matrix_text(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("# nothing\n")
        with pytest.raises(DatasetError):
            read_matrix_text(path)

    def test_non_square_rejected(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("0 1 2\n1 0 2\n")
        with pytest.raises(DatasetError):
            read_matrix_text(path)


class TestNpyFormat:
    def test_round_trip(self, tmp_path, matrix):
        path = tmp_path / "m.npy"
        write_matrix_npy(path, matrix)
        np.testing.assert_array_equal(read_matrix_npy(path), matrix)

    def test_non_square_rejected(self, tmp_path):
        path = tmp_path / "m.npy"
        np.save(path, np.zeros((2, 3)))
        with pytest.raises(DatasetError):
            read_matrix_npy(path)


class TestAuto:
    def test_dispatch_npy(self, tmp_path, matrix):
        path = tmp_path / "m.npy"
        write_matrix_npy(path, matrix)
        np.testing.assert_array_equal(load_matrix_auto(path), matrix)

    def test_dispatch_text(self, tmp_path, matrix):
        path = tmp_path / "m.dat"
        write_matrix_text(path, matrix)
        np.testing.assert_allclose(load_matrix_auto(path), matrix, atol=1e-3)
