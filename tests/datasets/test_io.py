"""Tests for repro.datasets.io (matrix readers/writers)."""

import numpy as np
import pytest

from repro.datasets.io import (
    as_latency_matrix,
    load_matrix_auto,
    read_matrix_npy,
    read_matrix_text,
    write_matrix_npy,
    write_matrix_text,
)
from repro.errors import DatasetError


@pytest.fixture
def matrix():
    d = np.array([[0.0, 1.5, 2.25], [1.5, 0.0, 3.0], [2.25, 3.0, 0.0]])
    return d


class TestTextFormat:
    def test_round_trip(self, tmp_path, matrix):
        path = tmp_path / "m.txt"
        write_matrix_text(path, matrix)
        out = read_matrix_text(path)
        np.testing.assert_allclose(out, matrix, atol=1e-3)

    def test_nan_round_trips_via_sentinel(self, tmp_path, matrix):
        matrix[0, 2] = np.nan
        path = tmp_path / "m.txt"
        write_matrix_text(path, matrix)
        text = path.read_text()
        assert "-1" in text
        out = read_matrix_text(path)
        assert np.isnan(out[0, 2])

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("# header\n\n0 1\n1 0\n")
        out = read_matrix_text(path)
        assert out.shape == (2, 2)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("0 1\n1\n")
        with pytest.raises(DatasetError):
            read_matrix_text(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("0 x\n1 0\n")
        with pytest.raises(DatasetError):
            read_matrix_text(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("# nothing\n")
        with pytest.raises(DatasetError):
            read_matrix_text(path)

    def test_non_square_rejected(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("0 1 2\n1 0 2\n")
        with pytest.raises(DatasetError):
            read_matrix_text(path)


class TestNpyFormat:
    def test_round_trip(self, tmp_path, matrix):
        path = tmp_path / "m.npy"
        write_matrix_npy(path, matrix)
        np.testing.assert_array_equal(read_matrix_npy(path), matrix)

    def test_non_square_rejected(self, tmp_path):
        path = tmp_path / "m.npy"
        np.save(path, np.zeros((2, 3)))
        with pytest.raises(DatasetError):
            read_matrix_npy(path)


class TestAuto:
    def test_dispatch_npy(self, tmp_path, matrix):
        path = tmp_path / "m.npy"
        write_matrix_npy(path, matrix)
        np.testing.assert_array_equal(load_matrix_auto(path), matrix)

    def test_dispatch_text(self, tmp_path, matrix):
        path = tmp_path / "m.dat"
        write_matrix_text(path, matrix)
        np.testing.assert_allclose(load_matrix_auto(path), matrix, atol=1e-3)


class TestAsLatencyMatrix:
    def test_preserves_float_dtypes(self):
        for dt in (np.float32, np.float64):
            d = np.array([[0, 2], [3, 0]], dtype=dt)
            out = as_latency_matrix(d)
            assert out.dtype == np.dtype(dt)

    def test_coerces_non_float_to_float64(self):
        d = np.array([[0, 2], [3, 0]], dtype=np.int64)
        out = as_latency_matrix(d)
        assert out.dtype == np.dtype(np.float64)

    def test_explicit_dtype_casts(self):
        d = np.array([[0.0, 2.0], [3.0, 0.0]])
        out = as_latency_matrix(d, dtype=np.float32)
        assert out.dtype == np.dtype(np.float32)

    def test_unsupported_dtype_rejected(self):
        d = np.array([[0.0, 2.0], [3.0, 0.0]])
        with pytest.raises(DatasetError, match="float32 or float64"):
            as_latency_matrix(d, dtype=np.float16)
        with pytest.raises(DatasetError):
            as_latency_matrix(d, dtype=np.int32)

    def test_non_square_rejected_with_source(self):
        with pytest.raises(DatasetError, match="meridian file"):
            as_latency_matrix(np.zeros((2, 3)), where="meridian file")

    def test_empty_rejected(self):
        with pytest.raises(DatasetError, match="empty"):
            as_latency_matrix(np.zeros((0, 0)))

    def test_nan_and_inf_rejected(self):
        d = np.array([[0.0, np.nan], [3.0, 0.0]])
        with pytest.raises(DatasetError, match="drop_incomplete_nodes"):
            as_latency_matrix(d)
        d = np.array([[0.0, np.inf], [3.0, 0.0]])
        with pytest.raises(DatasetError):
            as_latency_matrix(d)

    def test_negative_rejected(self):
        d = np.array([[0.0, -2.0], [3.0, 0.0]])
        with pytest.raises(DatasetError, match="negative"):
            as_latency_matrix(d)

    def test_error_code_is_stable(self):
        with pytest.raises(DatasetError) as exc_info:
            as_latency_matrix(np.zeros((2, 3)))
        assert exc_info.value.code == "dataset-error"


class TestDtypeThreading:
    def test_text_reader_casts(self, tmp_path, matrix):
        path = tmp_path / "m.txt"
        write_matrix_text(path, matrix)
        out = read_matrix_text(path, dtype=np.float32)
        assert out.dtype == np.dtype(np.float32)
        # Default parse stays float64 (sentinel mapping is exact there).
        assert read_matrix_text(path).dtype == np.dtype(np.float64)

    def test_npy_round_trip_preserves_float32(self, tmp_path, matrix):
        path = tmp_path / "m.npy"
        write_matrix_npy(path, matrix.astype(np.float32))
        out = read_matrix_npy(path)
        assert out.dtype == np.dtype(np.float32)
        assert read_matrix_npy(path, dtype=np.float64).dtype == np.dtype(
            np.float64
        )

    def test_auto_loader_forwards_dtype(self, tmp_path, matrix):
        path = tmp_path / "m.npy"
        write_matrix_npy(path, matrix)
        assert load_matrix_auto(path, dtype=np.float32).dtype == np.dtype(
            np.float32
        )

    def test_loaders_thread_dtype_to_cleaned_matrix(self, tmp_path):
        from repro.datasets import load_meridian_file, load_mit_king_file

        rng = np.random.default_rng(5)
        d = rng.uniform(1.0, 50.0, size=(6, 6))
        np.fill_diagonal(d, 0.0)
        path = tmp_path / "king.txt"
        write_matrix_text(path, d)
        cleaned, _report = load_mit_king_file(path, dtype=np.float32)
        assert cleaned.dtype == np.dtype(np.float32)
        cleaned, _report = load_meridian_file(
            path, unit_scale=1.0, dtype=np.float32
        )
        assert cleaned.dtype == np.dtype(np.float32)

    def test_synthesis_dtype(self):
        from repro.datasets import synthesize_mit_like

        m = synthesize_mit_like(24, seed=1, dtype=np.float32)
        assert m.dtype == np.dtype(np.float32)
        assert synthesize_mit_like(24, seed=1).dtype == np.dtype(np.float64)
