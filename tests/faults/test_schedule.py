"""Tests for FaultSchedule composition and queries."""

import numpy as np
import pytest

from repro.errors import FaultScheduleError
from repro.faults import (
    DownInterval,
    FaultSchedule,
    GilbertElliottLoss,
    IIDLoss,
    LatencySpike,
    MessageFate,
)


class TestCrashTimeline:
    def test_is_down(self):
        sched = FaultSchedule([DownInterval(1, 10.0, 20.0)])
        assert not sched.is_down(1, 9.9)
        assert sched.is_down(1, 10.0)
        assert sched.is_down(1, 19.9)
        assert not sched.is_down(1, 20.0)
        assert not sched.is_down(0, 15.0)

    def test_servers_down(self):
        sched = FaultSchedule(
            [DownInterval(2, 0.0, 5.0), DownInterval(0, 3.0, 8.0)]
        )
        assert sched.servers_down(4.0) == (0, 2)
        assert sched.servers_down(6.0) == (0,)
        assert sched.servers_down(9.0) == ()

    def test_overlap_rejected(self):
        with pytest.raises(FaultScheduleError):
            FaultSchedule(
                [DownInterval(0, 0.0, 10.0), DownInterval(0, 5.0, 15.0)]
            )

    def test_same_server_adjacent_ok(self):
        sched = FaultSchedule(
            [DownInterval(0, 0.0, 5.0), DownInterval(0, 5.0, 10.0)]
        )
        assert len(sched.down_intervals) == 2

    def test_events_ordered_recover_first_on_tie(self):
        sched = FaultSchedule(
            [DownInterval(0, 0.0, 5.0), DownInterval(1, 5.0, 9.0)]
        )
        events = sched.events()
        kinds = [(e.time, e.kind, e.server) for e in events]
        assert kinds == [
            (0.0, "crash", 0),
            (5.0, "recover", 0),
            (5.0, "crash", 1),
            (9.0, "recover", 1),
        ]

    def test_infinite_outage_has_no_recover_event(self):
        sched = FaultSchedule([DownInterval(0, 1.0, float("inf"))])
        kinds = [e.kind for e in sched.events()]
        assert kinds == ["crash"]


class TestSpikes:
    def test_latency_factor_composes(self):
        sched = FaultSchedule(
            spikes=[
                LatencySpike(0.0, 10.0, 2.0),
                LatencySpike(5.0, 10.0, 3.0, src=1),
            ]
        )
        assert sched.latency_factor(1, 2, 7.0) == pytest.approx(6.0)
        assert sched.latency_factor(0, 2, 7.0) == pytest.approx(2.0)
        assert sched.latency_factor(1, 2, 12.0) == pytest.approx(3.0)
        assert sched.latency_factor(1, 2, 20.0) == pytest.approx(1.0)


class TestLoss:
    def test_default_no_loss(self):
        sched = FaultSchedule()
        rng = np.random.default_rng(0)
        assert all(
            sched.message_fate(rng) == MessageFate.DELIVER for _ in range(50)
        )

    def test_delegates_to_model(self):
        sched = FaultSchedule(loss=IIDLoss(1.0))
        rng = np.random.default_rng(0)
        assert sched.message_fate(rng) == MessageFate.DROP

    def test_reset_restores_burst_state(self):
        loss = GilbertElliottLoss(0.5, 0.01, loss_good=0.0, loss_bad=1.0)
        sched = FaultSchedule(loss=loss)
        rng = np.random.default_rng(1)
        seq_a = [sched.message_fate(rng) for _ in range(200)]
        sched.reset()
        rng = np.random.default_rng(1)
        seq_b = [sched.message_fate(rng) for _ in range(200)]
        assert seq_a == seq_b


class TestGenerate:
    def test_deterministic_and_bounded(self):
        a = FaultSchedule.generate(
            6, 400.0, mttf=80, mttr=30, seed=9, max_concurrent_down=2
        )
        b = FaultSchedule.generate(
            6, 400.0, mttf=80, mttr=30, seed=9, max_concurrent_down=2
        )
        assert a.down_intervals == b.down_intervals
        for t in np.linspace(0, 399, 250):
            assert len(a.servers_down(float(t))) <= 2

    def test_repr(self):
        sched = FaultSchedule.generate(3, 100.0, mttf=50, mttr=10, seed=0)
        assert "outage" in repr(sched)


class TestPartitionTimeline:
    def test_is_unreachable_and_queries(self):
        from repro.faults import Partition

        sched = FaultSchedule(
            partitions=[Partition(servers=(0, 2), start=5.0, end=15.0)]
        )
        assert sched.is_unreachable(0, 10.0)
        assert not sched.is_unreachable(1, 10.0)
        assert not sched.is_unreachable(0, 15.0)
        assert sched.servers_unreachable(10.0) == (0, 2)
        assert sched.servers_unreachable(20.0) == ()

    def test_overlapping_windows_on_shared_server_rejected(self):
        from repro.faults import Partition

        with pytest.raises(FaultScheduleError):
            FaultSchedule(
                partitions=[
                    Partition(servers=(1,), start=0.0, end=10.0),
                    Partition(servers=(1, 2), start=5.0, end=12.0),
                ]
            )

    def test_partition_events_edges(self):
        from repro.faults import Partition

        sched = FaultSchedule(
            partitions=[Partition(servers=(3,), start=2.0, end=8.0)]
        )
        events = sched.partition_events()
        assert [(e.time, e.kind, e.server) for e in events] == [
            (2.0, "partition", 3),
            (8.0, "heal", 3),
        ]

    def test_all_events_merges_crashes_and_partitions(self):
        from repro.faults import Partition

        sched = FaultSchedule(
            [DownInterval(0, 1.0, 4.0)],
            partitions=[Partition(servers=(1,), start=2.0, end=6.0)],
        )
        kinds = [(e.time, e.kind) for e in sched.all_events()]
        assert kinds == [
            (1.0, "crash"),
            (2.0, "partition"),
            (4.0, "recover"),
            (6.0, "heal"),
        ]

    def test_generate_with_partitions(self):
        from repro.faults import random_partition_schedule

        windows = random_partition_schedule(5, 200.0, mtbp=50, mttr=20, seed=3)
        sched = FaultSchedule.generate(
            5, 200.0, mttf=80, mttr=30, seed=3, partitions=windows
        )
        assert sched.partitions == tuple(windows)
        # events() (the legacy crash/recover contract) is unchanged.
        assert all(e.kind in ("crash", "recover") for e in sched.events())
