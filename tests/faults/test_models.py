"""Tests for the fault primitives (loss, spikes, crash timelines)."""

import numpy as np
import pytest

from repro.errors import FaultScheduleError, InvalidParameterError
from repro.faults import (
    DownInterval,
    GilbertElliottLoss,
    IIDLoss,
    LatencySpike,
    MessageFate,
    NoLoss,
    exponential_crash_schedule,
)


class TestNoLoss:
    def test_always_delivers(self):
        rng = np.random.default_rng(0)
        model = NoLoss()
        assert all(
            model.classify(rng) == MessageFate.DELIVER for _ in range(100)
        )


class TestIIDLoss:
    def test_rates_match(self):
        rng = np.random.default_rng(1)
        model = IIDLoss(0.2, 0.1)
        fates = [model.classify(rng) for _ in range(20000)]
        drop_rate = fates.count(MessageFate.DROP) / len(fates)
        dup_rate = fates.count(MessageFate.DUPLICATE) / len(fates)
        assert drop_rate == pytest.approx(0.2, abs=0.02)
        assert dup_rate == pytest.approx(0.8 * 0.1, abs=0.02)

    def test_zero_is_lossless(self):
        rng = np.random.default_rng(2)
        model = IIDLoss(0.0)
        assert all(
            model.classify(rng) == MessageFate.DELIVER for _ in range(200)
        )

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_invalid_probability(self, bad):
        with pytest.raises(InvalidParameterError):
            IIDLoss(bad)
        with pytest.raises(ValueError):  # backwards-compatible base
            IIDLoss(0.1, bad)


class TestGilbertElliott:
    def test_steady_state_loss_matches_empirical(self):
        model = GilbertElliottLoss(0.05, 0.25, loss_good=0.01, loss_bad=0.6)
        rng = np.random.default_rng(3)
        fates = [model.classify(rng) for _ in range(50000)]
        empirical = fates.count(MessageFate.DROP) / len(fates)
        assert empirical == pytest.approx(model.steady_state_loss(), abs=0.02)

    def test_burstiness(self):
        """Losses cluster: P(drop | previous drop) >> marginal drop rate."""
        model = GilbertElliottLoss(0.01, 0.1, loss_good=0.0, loss_bad=0.9)
        rng = np.random.default_rng(4)
        drops = [
            model.classify(rng) == MessageFate.DROP for _ in range(50000)
        ]
        marginal = np.mean(drops)
        after_drop = [b for a, b in zip(drops, drops[1:]) if a]
        assert np.mean(after_drop) > 3 * marginal

    def test_reset_replays_identically(self):
        model = GilbertElliottLoss(0.2, 0.2, loss_good=0.1, loss_bad=0.9)
        rng = np.random.default_rng(7)
        seq_a = [model.classify(rng) for _ in range(500)]
        model.reset()
        rng = np.random.default_rng(7)
        seq_b = [model.classify(rng) for _ in range(500)]
        assert seq_a == seq_b

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            GilbertElliottLoss(p_good_to_bad=1.2)


class TestLatencySpike:
    def test_applies_window_and_links(self):
        spike = LatencySpike(10.0, 5.0, 3.0, src=2)
        assert spike.applies(2, 7, 12.0)
        assert not spike.applies(3, 7, 12.0)  # wrong src
        assert not spike.applies(2, 7, 9.9)  # before window
        assert not spike.applies(2, 7, 15.0)  # end-exclusive

    def test_global_spike(self):
        spike = LatencySpike(0.0, 1.0, 2.0)
        assert spike.applies(0, 1, 0.5)
        assert spike.applies(9, 3, 0.0)

    def test_validation(self):
        with pytest.raises(FaultScheduleError):
            LatencySpike(0.0, 0.0, 2.0)
        with pytest.raises(FaultScheduleError):
            LatencySpike(0.0, 1.0, -1.0)


class TestDownInterval:
    def test_covers(self):
        iv = DownInterval(0, 5.0, 9.0)
        assert iv.covers(5.0)
        assert iv.covers(8.9)
        assert not iv.covers(9.0)
        assert not iv.covers(4.9)

    def test_validation(self):
        with pytest.raises(FaultScheduleError):
            DownInterval(0, 5.0, 5.0)
        with pytest.raises(FaultScheduleError):
            DownInterval(-1, 0.0, 1.0)

    def test_never_recovering(self):
        iv = DownInterval(1, 3.0, float("inf"))
        assert iv.covers(1e12)


class TestExponentialCrashSchedule:
    def test_deterministic(self):
        a = exponential_crash_schedule(8, 500.0, mttf=100, mttr=20, seed=42)
        b = exponential_crash_schedule(8, 500.0, mttf=100, mttr=20, seed=42)
        assert a == b

    def test_intervals_within_horizon(self):
        ivs = exponential_crash_schedule(5, 300.0, mttf=50, mttr=30, seed=0)
        assert ivs, "expected some crashes at this MTTF"
        for iv in ivs:
            assert 0.0 <= iv.start < 300.0
            assert iv.end <= 300.0
            assert 0 <= iv.server < 5

    def test_per_server_intervals_disjoint(self):
        ivs = exponential_crash_schedule(4, 1000.0, mttf=40, mttr=40, seed=1)
        for server in range(4):
            own = sorted(
                (iv for iv in ivs if iv.server == server),
                key=lambda iv: iv.start,
            )
            for a, b in zip(own, own[1:]):
                assert b.start >= a.end

    def test_max_concurrent_down_respected(self):
        ivs = exponential_crash_schedule(
            10, 1000.0, mttf=30, mttr=100, seed=2, max_concurrent_down=3
        )
        edges = sorted(
            [(iv.start, 1) for iv in ivs] + [(iv.end, -1) for iv in ivs]
        )
        down = 0
        for _t, delta in edges:
            down += delta
            assert down <= 3

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            exponential_crash_schedule(0, 10.0, mttf=1, mttr=1)
        with pytest.raises(InvalidParameterError):
            exponential_crash_schedule(2, 10.0, mttf=0, mttr=1)
        with pytest.raises(InvalidParameterError):
            exponential_crash_schedule(2, -1.0, mttf=1, mttr=1)
        with pytest.raises(InvalidParameterError):
            exponential_crash_schedule(
                2, 10.0, mttf=1, mttr=1, max_concurrent_down=0
            )


class TestPartition:
    def test_window_semantics(self):
        from repro.faults import Partition

        window = Partition(servers=(1, 3), start=10.0, end=20.0)
        assert window.covers(10.0) and not window.covers(20.0)
        assert window.isolates(1, 15.0)
        assert not window.isolates(2, 15.0)
        assert not window.isolates(1, 25.0)

    def test_validation(self):
        from repro.faults import Partition

        with pytest.raises(FaultScheduleError):
            Partition(servers=(), start=0.0, end=1.0)
        with pytest.raises(FaultScheduleError):
            Partition(servers=(1, 1), start=0.0, end=1.0)
        with pytest.raises(FaultScheduleError):
            Partition(servers=(1,), start=5.0, end=5.0)
        with pytest.raises(FaultScheduleError):
            Partition(servers=(-1,), start=0.0, end=1.0)


class TestRandomPartitionSchedule:
    def test_deterministic_and_bounded(self):
        from repro.faults import random_partition_schedule

        a = random_partition_schedule(6, 500.0, mtbp=80, mttr=30, seed=4)
        b = random_partition_schedule(6, 500.0, mtbp=80, mttr=30, seed=4)
        assert a == b
        for window in a:
            assert 0.0 <= window.start < window.end <= 500.0
            assert all(0 <= s < 6 for s in window.servers)

    def test_per_server_windows_never_overlap(self):
        from repro.faults import random_partition_schedule

        windows = random_partition_schedule(
            4, 2000.0, mtbp=40, mttr=60, size=2, seed=7
        )
        for server in range(4):
            own = sorted(
                (w for w in windows if server in w.servers),
                key=lambda w: w.start,
            )
            for earlier, later in zip(own, own[1:]):
                assert later.start >= earlier.end

    def test_validation(self):
        from repro.faults import random_partition_schedule

        with pytest.raises(InvalidParameterError):
            random_partition_schedule(0, 10.0, mtbp=1, mttr=1)
        with pytest.raises(InvalidParameterError):
            random_partition_schedule(2, 10.0, mtbp=0, mttr=1)
        with pytest.raises(InvalidParameterError):
            random_partition_schedule(2, 10.0, mtbp=1, mttr=1, size=3)
