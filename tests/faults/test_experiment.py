"""End-to-end fault-injection experiments.

Includes the acceptance scenario: crash one server mid-run, verify every
client is reassigned within the controller's bound, degraded D is never
better than the pre-fault D, and a recovery plus bounded rebalance pulls
D back to within the rebalance bound of the pre-fault value — all
deterministic under a fixed seed.
"""

import numpy as np
import pytest

from repro.algorithms.online import OnlineAssignmentManager
from repro.datasets.synthetic import small_world_latencies
from repro.errors import InvalidParameterError
from repro.faults import (
    DownInterval,
    FailoverController,
    FaultSchedule,
    simulate_churn_with_faults,
)
from repro.placement import kcenter_b


@pytest.fixture(scope="module")
def matrix():
    return small_world_latencies(80, seed=3)


@pytest.fixture(scope="module")
def servers(matrix):
    return kcenter_b(matrix, 6, seed=0)


class TestAcceptanceScenario:
    """The seeded crash → degraded → recovery arc from the issue."""

    def run_cycle(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers, join_policy="greedy")
        server_set = set(int(s) for s in servers)
        nodes = [u for u in range(matrix.n_nodes) if u not in server_set][:30]
        for node in nodes:
            manager.join(node)
        controller = FailoverController(manager, readmit_moves=16)
        d0 = manager.current_d()
        victim = int(np.argmax(manager.loads()))
        crash = controller.on_crash(victim, time=10.0)
        recovery = controller.on_recover(victim, time=20.0)
        return manager, d0, victim, crash, recovery

    def test_every_client_reassigned(self, matrix, servers):
        manager, _d0, victim, crash, _rec = self.run_cycle(matrix, servers)
        # Evacuation covers the whole stranded set: nothing shed, no
        # client left on the dead server, total population unchanged.
        assert crash.shed == ()
        assert crash.n_evacuated == len(crash.moves)
        assert manager.n_clients == 30
        assert all(s != victim for _c, s in crash.moves)
        assert manager.verify()

    def test_degraded_d_not_better_than_pre_fault(self, matrix, servers):
        _m, d0, _victim, crash, _rec = self.run_cycle(matrix, servers)
        assert crash.d_before == pytest.approx(d0)
        assert crash.d_degraded >= d0 - 1e-9

    def test_recovery_restores_d_within_bound(self, matrix, servers):
        _m, d0, _victim, _crash, recovery = self.run_cycle(matrix, servers)
        # The bounded rebalance never makes things worse than degraded
        # mode, and lands within 5% of the pre-fault optimum here.
        assert recovery.d_after <= recovery.d_before + 1e-9
        assert recovery.d_after <= d0 * 1.05

    def test_deterministic_under_fixed_seed(self, matrix, servers):
        results = [self.run_cycle(matrix, servers) for _ in range(2)]
        (_, d0_a, v_a, crash_a, rec_a), (_, d0_b, v_b, crash_b, rec_b) = results
        assert d0_a == d0_b
        assert v_a == v_b
        assert crash_a == crash_b
        assert rec_a == rec_b


class TestSimulateChurnWithFaults:
    def test_deterministic(self, matrix, servers):
        schedule = FaultSchedule.generate(
            6, 120.0, mttf=60, mttr=25, seed=5, max_concurrent_down=2
        )
        kwargs = dict(n_events=120, readmit_moves=8, seed=3)
        a = simulate_churn_with_faults(matrix, servers, schedule, **kwargs)
        b = simulate_churn_with_faults(matrix, servers, schedule, **kwargs)
        assert a.trace == b.trace
        assert a.crash_records == b.crash_records
        assert a.recovery_records == b.recovery_records

    def test_trace_reflects_fault_edges(self, matrix, servers):
        schedule = FaultSchedule(
            [DownInterval(0, 30.0, 60.0), DownInterval(3, 45.0, 80.0)]
        )
        result = simulate_churn_with_faults(
            matrix, servers, schedule, n_events=100, seed=0
        )
        events = [(p.time, p.event) for p in result.trace]
        assert (30.0, "crash") in events
        assert (60.0, "recover") in events
        assert len(result.crash_records) == 2
        assert len(result.recovery_records) == 2
        # While server 0 is down the trace reports 5 active servers.
        degraded = [p for p in result.trace if 30.0 <= p.time < 45.0]
        assert all(p.n_active_servers == 5 for p in degraded)

    def test_cycles_pair_crash_with_recovery(self, matrix, servers):
        schedule = FaultSchedule([DownInterval(2, 20.0, 50.0)])
        result = simulate_churn_with_faults(
            matrix, servers, schedule, n_events=80, seed=1
        )
        cycles = result.cycles()
        assert len(cycles) == 1
        c = cycles[0]
        assert c.server == 2
        assert c.crash_time == 20.0
        assert c.recover_time == 50.0
        assert c.d_degraded >= c.d_pre_fault - 1e-9
        assert c.d_after_recovery is not None
        assert c.inflation >= 1.0 - 1e-12

    def test_unrecovered_crash_has_open_cycle(self, matrix, servers):
        schedule = FaultSchedule([DownInterval(1, 10.0, float("inf"))])
        result = simulate_churn_with_faults(
            matrix, servers, schedule, n_events=40, seed=0
        )
        cycles = result.cycles()
        assert len(cycles) == 1
        assert cycles[0].recover_time is None
        assert cycles[0].d_after_recovery is None
        assert cycles[0].recovery_ratio is None

    def test_no_faults_matches_summary_shape(self, matrix, servers):
        result = simulate_churn_with_faults(
            matrix, servers, FaultSchedule(), n_events=50, seed=0
        )
        assert result.crash_records == ()
        assert result.recovery_records == ()
        assert result.total_shed() == 0
        assert result.mean_d() > 0.0
        assert result.peak_d() >= result.final_d()

    def test_capacity_with_shed_policy(self, matrix, servers):
        schedule = FaultSchedule([DownInterval(0, 25.0, 55.0)])
        result = simulate_churn_with_faults(
            matrix,
            servers,
            schedule,
            n_events=80,
            capacity=5,
            shed_policy="shed",
            seed=2,
        )
        # With tight capacity a crash may shed clients; whatever happens,
        # the run completes and the count is consistent.
        assert result.total_shed() == sum(
            len(r.shed) for r in result.crash_records
        )

    def test_invalid_parameters(self, matrix, servers):
        with pytest.raises(InvalidParameterError):
            simulate_churn_with_faults(
                matrix, servers, FaultSchedule(), n_events=0
            )
        with pytest.raises(InvalidParameterError):
            simulate_churn_with_faults(
                matrix, servers, FaultSchedule(), join_probability=1.5
            )
