"""Tests for server liveness in the online manager and the failover
controller."""

import numpy as np
import pytest

from repro.algorithms.online import OnlineAssignmentManager
from repro.datasets.synthetic import small_world_latencies
from repro.errors import (
    CapacityError,
    FailoverError,
    InvalidParameterError,
    ReproError,
)
from repro.faults import FailoverController, FaultEvent
from repro.placement import random_placement


@pytest.fixture
def matrix():
    return small_world_latencies(50, seed=9)


@pytest.fixture
def servers(matrix):
    return random_placement(matrix, 5, seed=0)


def populated_manager(matrix, servers, *, capacity=None, n=25):
    manager = OnlineAssignmentManager(matrix, servers, capacity=capacity)
    server_set = set(int(s) for s in servers)
    nodes = [u for u in range(matrix.n_nodes) if u not in server_set][:n]
    for node in nodes:
        manager.join(node)
    return manager


class TestLiveness:
    def test_deactivate_excludes_from_joins(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers)
        manager.deactivate_server(2)
        for node in range(6, 26):
            if node in set(int(s) for s in servers):
                continue
            assert manager.join(node) != 2

    def test_deactivate_reports_stranded(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        members = manager.members_of(0)
        assert manager.deactivate_server(0) == members

    def test_reactivate_idempotent(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers)
        manager.deactivate_server(1)
        assert not manager.is_active(1)
        manager.reactivate_server(1)
        manager.reactivate_server(1)
        assert manager.is_active(1)
        assert manager.n_active_servers == 5

    def test_bad_server_index(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers)
        with pytest.raises(InvalidParameterError):
            manager.deactivate_server(99)
        with pytest.raises(InvalidParameterError):
            manager.is_active(-1)

    def test_all_down_join_raises_capacity(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers)
        for s in range(5):
            manager.deactivate_server(s)
        with pytest.raises(CapacityError):
            manager.join(10)


class TestEvacuate:
    def test_moves_every_stranded_client(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        victim = int(np.argmax(manager.loads()))
        stranded = manager.deactivate_server(victim)
        moves = manager.evacuate(victim)
        assert sorted(c for c, _s in moves) == sorted(stranded)
        assert manager.loads()[victim] == 0
        assert manager.n_clients == 25
        assert all(s != victim for _c, s in moves)
        assert manager.verify()

    def test_respects_capacity(self, matrix, servers):
        manager = populated_manager(matrix, servers, capacity=8)
        victim = int(np.argmax(manager.loads()))
        manager.deactivate_server(victim)
        manager.evacuate(victim)
        assert np.all(manager.loads() <= 8)

    def test_active_server_refused(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        with pytest.raises(FailoverError):
            manager.evacuate(0)

    def test_insufficient_capacity_raises_without_state_change(
        self, matrix, servers
    ):
        # 25 clients but only 4 * 6 = 24 surviving slots after any
        # single crash, so the stranded set can never fully fit.
        manager = populated_manager(matrix, servers, capacity=6, n=25)
        victim = int(np.argmax(manager.loads()))
        before_assigned = {c: manager.server_of(c) for c in manager.clients}
        manager.deactivate_server(victim)
        with pytest.raises(FailoverError):
            manager.evacuate(victim)
        after_assigned = {c: manager.server_of(c) for c in manager.clients}
        assert before_assigned == after_assigned

    def test_empty_server_noop(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers)
        manager.deactivate_server(3)
        assert manager.evacuate(3) == []


class TestMove:
    def test_move_and_capacity(self, matrix, servers):
        manager = populated_manager(matrix, servers, capacity=10)
        client = manager.clients[0]
        target = (manager.server_of(client) + 1) % 5
        if manager.loads()[target] < 10:
            manager.move(client, target)
            assert manager.server_of(client) == target

    def test_move_to_down_server_refused(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        client = manager.clients[0]
        target = (manager.server_of(client) + 1) % 5
        manager.deactivate_server(target)
        with pytest.raises(FailoverError):
            manager.move(client, target)

    def test_move_unknown_client(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers)
        with pytest.raises(ReproError):
            manager.move(10, 0)


class TestRebalanceWithDownServers:
    def test_rebalance_avoids_down_server(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        victim = int(np.argmax(manager.loads()))
        manager.deactivate_server(victim)
        manager.evacuate(victim)
        manager.rebalance(max_moves=30)
        assert manager.loads()[victim] == 0
        assert manager.verify()

    def test_rebalance_with_stranded_clients_refused(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        victim = int(np.argmax(manager.loads()))
        if not manager.members_of(victim):
            pytest.skip("victim had no members")
        manager.deactivate_server(victim)
        with pytest.raises(FailoverError):
            manager.rebalance(max_moves=5)


class TestFailoverController:
    def test_crash_record(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        controller = FailoverController(manager)
        d0 = manager.current_d()
        victim = int(np.argmax(manager.loads()))
        n_stranded = len(manager.members_of(victim))
        record = controller.on_crash(victim, time=12.5)
        assert record.time == 12.5
        assert record.server == victim
        assert record.n_evacuated == n_stranded
        assert record.shed == ()
        assert record.d_before == pytest.approx(d0)
        assert record.d_degraded >= d0 - 1e-9
        assert record.inflation >= 1.0 - 1e-12
        assert controller.crash_records == (record,)

    def test_recovery_rebalance_repairs(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        controller = FailoverController(manager, readmit_moves=32)
        victim = int(np.argmax(manager.loads()))
        crash = controller.on_crash(victim, time=1.0)
        recovery = controller.on_recover(victim, time=2.0)
        assert recovery.d_before == pytest.approx(crash.d_degraded)
        assert recovery.d_after <= recovery.d_before + 1e-9
        assert manager.is_active(victim)

    def test_readmit_zero_disables_rebalance(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        controller = FailoverController(manager, readmit_moves=0)
        victim = int(np.argmax(manager.loads()))
        controller.on_crash(victim)
        recovery = controller.on_recover(victim)
        assert recovery.rebalance_moves == 0
        assert recovery.d_after == pytest.approx(recovery.d_before)

    def test_strict_policy_raises_on_overflow(self, matrix, servers):
        # 25 clients, 4 * 6 = 24 surviving slots: strict must refuse.
        manager = populated_manager(matrix, servers, capacity=6, n=25)
        controller = FailoverController(manager, shed_policy="strict")
        victim = int(np.argmax(manager.loads()))
        with pytest.raises(FailoverError):
            controller.on_crash(victim)

    def test_shed_policy_disconnects_overflow(self, matrix, servers):
        # Exactly one client more than the survivors can absorb.
        manager = populated_manager(matrix, servers, capacity=6, n=25)
        controller = FailoverController(manager, shed_policy="shed")
        loads = manager.loads()
        victim = int(np.argmax(loads))
        free_elsewhere = sum(
            6 - int(loads[s]) for s in range(5) if s != victim
        )
        overflow = int(loads[victim]) - free_elsewhere
        assert overflow == 1
        record = controller.on_crash(victim)
        assert len(record.shed) == 1
        assert manager.n_clients == 24
        assert np.all(manager.loads() <= 6)
        assert manager.loads()[victim] == 0

    def test_total_outage_sheds_everyone(self, matrix, servers):
        manager = populated_manager(matrix, servers, n=10)
        controller = FailoverController(manager, shed_policy="shed")
        for s in range(4):
            controller.on_crash(s)
        last = controller.on_crash(4)
        assert manager.n_clients == 0
        assert len(last.shed) > 0 or last.n_evacuated == 0

    def test_apply_dispatch(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        controller = FailoverController(manager)
        controller.apply(FaultEvent(3.0, "crash", 1))
        controller.apply(FaultEvent(4.0, "recover", 1))
        assert len(controller.crash_records) == 1
        assert len(controller.recovery_records) == 1
        with pytest.raises(FailoverError):
            controller.apply(FaultEvent(5.0, "flood", 1))

    def test_invalid_parameters(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers)
        with pytest.raises(InvalidParameterError):
            FailoverController(manager, readmit_moves=-1)
        with pytest.raises(InvalidParameterError):
            FailoverController(manager, shed_policy="panic")


class TestFailoverEdgeCases:
    def test_crash_and_recover_same_tick(self, matrix, servers):
        """A bounce (crash + recover at the same time) leaves a valid
        assignment and both records with matching D hand-off."""
        manager = populated_manager(matrix, servers)
        controller = FailoverController(manager, readmit_moves=16)
        victim = int(np.argmax(manager.loads()))
        crash = controller.on_crash(victim, time=5.0)
        recovery = controller.on_recover(victim, time=5.0)
        assert crash.time == recovery.time == 5.0
        assert manager.is_active(victim)
        assert manager.n_clients == 25
        assert recovery.d_before == pytest.approx(crash.d_degraded)
        assert manager.verify()

    def test_crash_during_readmission(self, matrix, servers):
        """A second server dies right as the first one's readmission
        completes: no client is lost or double-assigned."""
        manager = populated_manager(matrix, servers, capacity=10)
        controller = FailoverController(
            manager, readmit_moves=16, shed_policy="shed"
        )
        controller.on_crash(0, time=1.0)
        controller.on_recover(0, time=2.0)
        # The crash interleaves with the tail of the readmission window.
        second = controller.on_crash(1, time=2.0)
        assert not manager.is_active(1)
        assert manager.loads()[1] == 0
        assert manager.n_clients == 25 - len(second.shed)
        assert np.all(manager.loads() <= 10)
        assert manager.verify()

    def test_evacuation_with_all_survivors_at_capacity(self, matrix, servers):
        # 5 servers x capacity 5 = 25 slots, all full: zero free slots
        # anywhere, so every stranded client must be shed (or strict
        # must refuse).
        manager = populated_manager(matrix, servers, capacity=5, n=25)
        assert np.all(manager.loads() == 5)
        victim = int(np.argmax(manager.loads()))
        strict = FailoverController(manager, shed_policy="strict")
        with pytest.raises(FailoverError):
            strict.on_crash(victim)

        manager2 = populated_manager(matrix, servers, capacity=5, n=25)
        shed_controller = FailoverController(manager2, shed_policy="shed")
        record = shed_controller.on_crash(victim)
        assert record.n_evacuated == 0
        assert len(record.shed) == 5
        assert manager2.n_clients == 20
        assert np.all(manager2.loads() <= 5)
        assert manager2.verify()

    def test_record_serialization_roundtrip(self, matrix, servers):
        from repro.faults import CrashRecord, RecoveryRecord

        manager = populated_manager(matrix, servers)
        controller = FailoverController(manager, readmit_moves=8)
        victim = int(np.argmax(manager.loads()))
        crash = controller.on_crash(victim, time=3.25)
        recovery = controller.on_recover(victim, time=4.75)
        assert CrashRecord.from_dict(crash.to_dict()) == crash
        assert RecoveryRecord.from_dict(recovery.to_dict()) == recovery

    def test_restore_records_refuses_history(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        controller = FailoverController(manager)
        controller.on_crash(0)
        with pytest.raises(FailoverError, match="history"):
            controller.restore_records([], [])


class TestPartitionReachability:
    def test_partition_keeps_members_serving_stale(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        members = manager.members_of(2)
        stale = manager.partition_server(2)
        assert stale == tuple(sorted(members))
        assert not manager.is_reachable(2)
        assert manager.is_active(2)  # partitioned, not down
        for client in members:
            assert manager.server_of(client) == 2

    def test_joins_avoid_unreachable_server(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers)
        manager.partition_server(1)
        server_set = set(int(s) for s in servers)
        for node in range(20):
            if node in server_set:
                continue
            assert manager.join(node) != 1

    def test_heal_restores_placement_targets(self, matrix, servers):
        manager = OnlineAssignmentManager(matrix, servers)
        manager.partition_server(0)
        assert manager.n_usable_servers == 4
        manager.heal_server(0)
        assert manager.n_usable_servers == 5
        assert manager.is_reachable(0)

    def test_move_to_unreachable_refused(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        client = manager.clients[0]
        target = (manager.server_of(client) + 1) % 5
        manager.partition_server(target)
        with pytest.raises(FailoverError):
            manager.move(client, target)

    def test_rebalance_skips_clients_behind_partition(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        victim = int(np.argmax(manager.loads()))
        members = set(manager.members_of(victim))
        manager.partition_server(victim)
        manager.rebalance(max_moves=30)
        # Stale-served clients stay put; reachable clients stay valid.
        for client in members:
            assert manager.server_of(client) == victim
        assert manager.verify()

    def test_controller_apply_partition_and_heal(self, matrix, servers):
        manager = populated_manager(matrix, servers)
        controller = FailoverController(manager)
        controller.apply(FaultEvent(1.0, "partition", 3))
        assert not manager.is_reachable(3)
        controller.apply(FaultEvent(2.0, "heal", 3))
        assert manager.is_reachable(3)
        # Partition edges are not crashes: no records accumulate.
        assert controller.crash_records == ()
