"""Tests for repro.utils (rng, timing shim, validation)."""

import time
import warnings

import numpy as np
import pytest

from repro.obs.timing import Stopwatch
from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs
from repro.utils.validation import require, require_in_range, require_positive


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        rng = ensure_rng(seq)
        assert isinstance(rng, np.random.Generator)


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(1, 4)
        assert len(rngs) == 4
        draws = [r.integers(0, 10**9) for r in rngs]
        assert len(set(draws)) == 4

    def test_reproducible(self):
        a = [r.integers(0, 10**9) for r in spawn_rngs(5, 3)]
        b = [r.integers(0, 10**9) for r in spawn_rngs(5, 3)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_generator_seed_accepted(self):
        rngs = spawn_rngs(np.random.default_rng(0), 2)
        assert len(rngs) == 2


class TestDeriveSeed:
    def test_none_passthrough(self):
        assert derive_seed(None, 1, 2) is None

    def test_stable(self):
        assert derive_seed(10, 3, 4) == derive_seed(10, 3, 4)

    def test_components_matter(self):
        assert derive_seed(10, 3, 4) != derive_seed(10, 4, 3)

    def test_nonnegative(self):
        assert derive_seed(10, 99) >= 0


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009

    def test_frozen_after_exit(self):
        with Stopwatch() as sw:
            pass
        first = sw.elapsed
        time.sleep(0.005)
        assert sw.elapsed == first

    def test_live_while_running(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.005)
            assert sw.elapsed > 0.0


class TestTimingShim:
    """repro.utils.timing stays importable but warns and forwards."""

    def test_old_import_warns_and_returns_same_class(self):
        from repro.utils import timing as legacy

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy_stopwatch = legacy.Stopwatch
        assert legacy_stopwatch is Stopwatch
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_unknown_attribute_raises(self):
        from repro.utils import timing as legacy

        with pytest.raises(AttributeError):
            legacy.no_such_thing

    def test_package_reexport_still_works(self):
        from repro.utils import Stopwatch as reexported

        assert reexported is Stopwatch

    def test_timed_forwards_and_warns(self):
        from repro.obs.timing import timed
        from repro.utils import timing as legacy

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy_timed = legacy.timed
        assert legacy_timed is timed
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_no_internal_callers_of_the_shim(self):
        """The PR 5 migration is complete: no repro module imports the
        deprecated ``repro.utils.timing`` — only the shim file itself
        mentions it."""
        import pathlib
        import re

        import repro

        shim_import = re.compile(
            r"^\s*(from\s+repro\.utils\.timing\s+import"
            r"|from\s+repro\.utils\s+import\s+timing"
            r"|import\s+repro\.utils\.timing)",
            re.MULTILINE,
        )
        package_root = pathlib.Path(repro.__file__).parent
        offenders = []
        for path in sorted(package_root.rglob("*.py")):
            if path.name == "timing.py" and path.parent.name == "utils":
                continue
            if shim_import.search(path.read_text(encoding="utf-8")):
                offenders.append(str(path.relative_to(package_root)))
        assert not offenders, (
            f"modules still referencing the deprecated repro.utils.timing "
            f"shim: {offenders}"
        )


class TestValidation:
    def test_require_passes_and_fails(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_require_custom_error(self):
        with pytest.raises(KeyError):
            require(False, "boom", error=KeyError)

    def test_require_positive(self):
        require_positive(1, "x")
        with pytest.raises(ValueError):
            require_positive(0, "x")

    def test_require_in_range(self):
        require_in_range(5, 0, 10, "x")
        with pytest.raises(ValueError):
            require_in_range(11, 0, 10, "x")
