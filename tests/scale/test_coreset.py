"""Coreset construction: the epsilon bound is the load-bearing invariant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Assignment, ClientAssignmentProblem
from repro.core.metrics import max_interaction_path_length
from repro.datasets import planet_instance
from repro.datasets.synthetic import small_world_latencies
from repro.errors import InvalidParameterError
from repro.scale import build_coreset, expanded_objective


@pytest.fixture
def dense_instance():
    matrix = small_world_latencies(60, seed=5)
    servers = np.array([3, 17, 41, 55], dtype=np.int64)
    mask = np.ones(60, dtype=bool)
    mask[servers] = False
    clients = np.flatnonzero(mask).astype(np.int64)
    return matrix, servers, clients


def test_structure(dense_instance):
    matrix, servers, clients = dense_instance
    coreset = build_coreset(matrix, servers, clients, cell_size=20.0)
    assert coreset.n_clients == clients.size
    assert coreset.n_representatives == coreset.representatives.size
    assert coreset.weights.sum() == clients.size
    assert coreset.labels.shape == (clients.size,)
    assert coreset.labels.min() >= 0
    assert coreset.labels.max() < coreset.n_representatives
    # Every representative is one of its own members.
    reps = set(int(r) for r in coreset.representatives)
    assert reps <= set(int(c) for c in clients)
    assert coreset.reduction_ratio == pytest.approx(
        clients.size / coreset.n_representatives
    )


def test_epsilon_is_the_max_profile_deviation(dense_instance):
    """epsilon must dominate |d(c,s) - d(rep(c),s)| in both directions
    for every client and every server — the inequality the 2-epsilon
    expansion bound is proved from."""
    matrix, servers, clients = dense_instance
    coreset = build_coreset(matrix, servers, clients, cell_size=15.0)
    reps = coreset.representatives[coreset.labels]
    cs = matrix.client_server_distances(clients, servers)
    cs_rep = matrix.client_server_distances(reps, servers)
    sc = matrix.server_client_distances(servers, clients).T
    sc_rep = matrix.server_client_distances(servers, reps).T
    worst = max(
        np.abs(cs - cs_rep).max(), np.abs(sc - sc_rep).max()
    )
    assert worst <= coreset.epsilon + 1e-12
    assert coreset.epsilon < coreset.cell_size


@pytest.mark.parametrize("cell_size", [5.0, 20.0, 80.0])
def test_expansion_bound_holds_for_any_reduced_assignment(
    dense_instance, cell_size
):
    """D(expanded) <= D(reduced) + 2 epsilon, for arbitrary (not just
    optimized) assignments of the representatives."""
    matrix, servers, clients = dense_instance
    coreset = build_coreset(matrix, servers, clients, cell_size=cell_size)
    reduced_problem = ClientAssignmentProblem(
        matrix, servers, clients=coreset.representatives
    )
    rng = np.random.default_rng(9)
    for trial in range(5):
        reduced_server_of = rng.integers(
            0, servers.size, size=coreset.n_representatives
        ).astype(np.int64)
        d_reduced = max_interaction_path_length(
            Assignment(reduced_problem, reduced_server_of)
        )
        server_of = coreset.expand(reduced_server_of)
        d_expanded = expanded_objective(
            matrix, servers, clients, server_of
        )
        assert d_expanded <= d_reduced + 2.0 * coreset.epsilon + 1e-9


def test_chunk_size_invariance():
    """Representatives, labels and epsilon must not depend on the
    streaming chunk size."""
    instance = planet_instance(3000, 8, n_clusters=16, seed=11)
    baseline = build_coreset(
        instance.provider,
        instance.servers,
        instance.clients,
        cell_size=8.0,
        chunk_size=instance.clients.size + 1,
    )
    for chunk_size in (64, 257, 1000):
        other = build_coreset(
            instance.provider,
            instance.servers,
            instance.clients,
            cell_size=8.0,
            chunk_size=chunk_size,
        )
        assert np.array_equal(other.representatives, baseline.representatives)
        assert np.array_equal(other.labels, baseline.labels)
        assert np.array_equal(other.weights, baseline.weights)
        assert other.epsilon == baseline.epsilon


def test_clustered_geometry_reduces(dense_instance):
    instance = planet_instance(5000, 8, n_clusters=16, seed=2)
    coreset = build_coreset(
        instance.provider, instance.servers, instance.clients, cell_size=8.0
    )
    assert coreset.reduction_ratio > 3.0


def test_expand_maps_members_to_representative_servers(dense_instance):
    matrix, servers, clients = dense_instance
    coreset = build_coreset(matrix, servers, clients, cell_size=25.0)
    reduced = np.arange(coreset.n_representatives) % servers.size
    expanded = coreset.expand(reduced.astype(np.int64))
    assert expanded.shape == (clients.size,)
    for i in range(clients.size):
        assert expanded[i] == reduced[coreset.labels[i]]


def test_invalid_parameters(dense_instance):
    matrix, servers, clients = dense_instance
    with pytest.raises(InvalidParameterError):
        build_coreset(matrix, servers, clients, cell_size=0.0)
    with pytest.raises(InvalidParameterError):
        build_coreset(matrix, servers, np.array([], dtype=np.int64), cell_size=5.0)


def test_coreset_arrays_are_readonly(dense_instance):
    matrix, servers, clients = dense_instance
    coreset = build_coreset(matrix, servers, clients, cell_size=20.0)
    for arr in (coreset.representatives, coreset.weights, coreset.labels):
        assert not arr.flags.writeable
