"""Latency providers: protocol conformance and dense/coordinate identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import small_world_latencies
from repro.net.coordinates import VivaldiEmbedding
from repro.net.latency import LatencyMatrix
from repro.net.provider import CoordinateProvider, LatencyProvider, provider_name
from repro.obs import MetricsRegistry, use_registry


@pytest.fixture
def coords():
    rng = np.random.default_rng(42)
    return rng.uniform(0.0, 100.0, size=(30, 3))


def test_both_sources_satisfy_the_protocol(coords):
    assert isinstance(LatencyMatrix.from_coordinates(coords), LatencyProvider)
    assert isinstance(CoordinateProvider(coords), LatencyProvider)


def test_provider_name(coords):
    assert provider_name(CoordinateProvider(coords)) == "coordinate"
    assert provider_name(small_world_latencies(10, seed=0)) == "dense"


class TestDenseCoordinateIdentity:
    """Every view of a CoordinateProvider must be byte-identical to the
    dense matrix built from the same coordinates."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("scale", [1.0, 2.5])
    def test_materialize_matches_from_coordinates(self, coords, dtype, scale):
        dense = LatencyMatrix.from_coordinates(
            coords, scale=scale, min_latency=0.5, dtype=dtype
        )
        provider = CoordinateProvider(
            coords, scale=scale, min_latency=0.5, dtype=dtype
        )
        assert np.array_equal(provider.materialize().values, dense.values)

    def test_views_match_dense_slices(self, coords):
        dense = LatencyMatrix.from_coordinates(coords, min_latency=0.5)
        provider = CoordinateProvider(coords, min_latency=0.5)
        rng = np.random.default_rng(7)
        clients = rng.choice(30, size=12, replace=False).astype(np.int64)
        servers = rng.choice(30, size=5, replace=False).astype(np.int64)
        assert np.array_equal(
            provider.client_server_distances(clients, servers),
            dense.client_server_distances(clients, servers),
        )
        assert np.array_equal(
            provider.server_client_distances(servers, clients),
            dense.server_client_distances(servers, clients),
        )
        assert np.array_equal(
            provider.server_server_distances(servers),
            dense.server_server_distances(servers),
        )

    def test_scalar_distance_matches(self, coords):
        dense = LatencyMatrix.from_coordinates(coords)
        provider = CoordinateProvider(coords)
        for u, v in ((0, 1), (5, 5), (29, 3)):
            assert provider.distance(u, v) == dense.distance(u, v)

    def test_overlapping_rows_and_cols_floor_only_off_diagonal(self, coords):
        """A block that contains (i, i) pairs must keep the zero
        diagonal even when min_latency would floor it."""
        provider = CoordinateProvider(coords, min_latency=50.0)
        nodes = np.arange(10, dtype=np.int64)
        block = provider._block(nodes, nodes)
        assert np.array_equal(np.diag(block), np.zeros(10))
        off = block[~np.eye(10, dtype=bool)]
        assert np.all(off >= 50.0)


def test_from_embedding_round_trip(coords):
    matrix = LatencyMatrix.from_coordinates(coords, min_latency=0.1)
    embedding = VivaldiEmbedding(dims=3)
    embedding.fit(matrix, rounds=30, seed=0)
    provider = CoordinateProvider.from_embedding(embedding)
    nodes = np.arange(matrix.n_nodes, dtype=np.int64)
    predicted = embedding.predict_matrix()
    assert np.array_equal(
        provider.server_server_distances(nodes), predicted.values
    )


def test_astype_changes_dtype_only(coords):
    provider = CoordinateProvider(coords)
    f32 = provider.astype(np.float32)
    assert f32.dtype == np.dtype(np.float32)
    assert np.array_equal(f32.coordinates, provider.coordinates)
    assert f32.materialize().values.dtype == np.dtype(np.float32)


def test_row_synthesis_is_instrumented(coords):
    metrics = MetricsRegistry()
    provider = CoordinateProvider(coords)
    with use_registry(metrics):
        provider.client_server_distances(
            np.arange(4, dtype=np.int64), np.arange(4, 7, dtype=np.int64)
        )
    snap = metrics.snapshot()["counters"]
    assert snap["provider.coordinate.calls"] == 1
    assert snap["provider.coordinate.rows"] == 4
    assert snap["provider.coordinate.elements"] == 12


def test_invalid_inputs_rejected():
    from repro.errors import InvalidParameterError

    with pytest.raises(InvalidParameterError):
        CoordinateProvider(np.empty((0, 3)))
    with pytest.raises(InvalidParameterError):
        CoordinateProvider(np.full((4, 2), np.nan))
    with pytest.raises(InvalidParameterError):
        CoordinateProvider(np.ones((4, 2)), heights=np.array([1.0, -2.0, 0, 0]))
    with pytest.raises(InvalidParameterError):
        CoordinateProvider(np.ones((4, 2)), scale=0.0)
    with pytest.raises(InvalidParameterError):
        CoordinateProvider(np.ones((4, 2)), min_latency=0.0)


def test_provider_is_immutable(coords):
    provider = CoordinateProvider(coords)
    with pytest.raises(AttributeError):
        provider.anything = 1
    assert not provider.coordinates.flags.writeable
