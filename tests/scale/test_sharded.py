"""Region-sharded online manager: sharding must not change decisions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.online import OnlineAssignmentManager, OnlineConfig
from repro.core.metrics import max_interaction_path_length
from repro.datasets import planet_instance
from repro.errors import (
    CapacityError,
    InvalidAssignmentError,
    InvalidParameterError,
)
from repro.obs import MetricsRegistry, use_registry
from repro.scale import ShardedOnlineManager


@pytest.fixture(scope="module")
def instance():
    return planet_instance(300, 8, n_clusters=16, seed=3)


def _drive(manager, universe, *, rng_seed, n_events=120):
    """A deterministic join/leave/move trajectory; returns the event log.

    Decisions (which server a join picks) come from the manager itself,
    so identical logs across managers prove identical decisions.
    """
    rng = np.random.default_rng(rng_seed)
    connected: list = []
    log = []
    for step in range(n_events):
        roll = rng.random()
        if connected and roll < 0.25:
            node = connected.pop(int(rng.integers(len(connected))))
            manager.leave(node)
            log.append(("leave", int(node)))
        elif connected and roll < 0.35:
            node = connected[int(rng.integers(len(connected)))]
            server = int(rng.integers(manager.n_servers))
            try:
                manager.move(node, server)
                log.append(("move", int(node), server))
            except CapacityError:
                log.append(("move-full", int(node), server))
        else:
            candidates = [n for n in universe if not manager.is_connected(n)]
            if not candidates:
                continue
            node = candidates[int(rng.integers(len(candidates)))]
            try:
                server = manager.join(int(node))
                connected.append(int(node))
                log.append(("join", int(node), int(server)))
            except CapacityError:
                log.append(("join-full", int(node)))
        log.append(("d", manager.current_d()))
    return log


@pytest.mark.parametrize("n_shards", [1, 2, 8])
@pytest.mark.parametrize("join_policy", ["greedy", "nearest"])
@pytest.mark.parametrize("capacity", [None, 30])
def test_sharded_decisions_match_unsharded(
    instance, n_shards, join_policy, capacity
):
    """The whole point: shard counts 1/2/8 must produce byte-identical
    trajectories to a single full-universe manager."""
    universe = [int(n) for n in instance.clients]
    config = OnlineConfig(
        capacity=capacity, join_policy=join_policy, shards=n_shards
    )
    baseline = OnlineAssignmentManager(
        instance.provider,
        instance.servers,
        OnlineConfig(capacity=capacity, join_policy=join_policy),
        client_nodes=instance.clients,
    )
    sharded = ShardedOnlineManager(
        instance.provider,
        instance.servers,
        config,
        client_nodes=instance.clients,
    )
    assert sharded.n_shards == n_shards
    log_a = _drive(baseline, universe, rng_seed=17)
    log_b = _drive(sharded, universe, rng_seed=17)
    assert log_a == log_b
    assert baseline.clients == sharded.clients
    assert np.array_equal(baseline.loads(), sharded.loads())
    assert baseline.current_d() == sharded.current_d()
    for node in sharded.clients:
        assert sharded.server_of(node) == baseline.server_of(node)
    assert sharded.verify()


def test_shard_routing_partitions_the_universe(instance):
    manager = ShardedOnlineManager(
        instance.provider,
        instance.servers,
        OnlineConfig(shards=4),
        client_nodes=instance.clients,
    )
    seen = set()
    for node in instance.clients:
        shard = manager.shard_of_node(int(node))
        assert 0 <= shard < manager.n_shards
        seen.add(shard)
    assert len(seen) > 1  # clustered geometry spreads over regions
    # Each connected client lives in exactly its owning shard's manager.
    for node in instance.clients[:20]:
        manager.join(int(node))
    for node in instance.clients[:20]:
        owner = manager.shard_of_node(int(node))
        assert manager.shard(owner).is_connected(int(node))
        for other in range(manager.n_shards):
            if other != owner:
                assert not manager.shard(other).is_connected(int(node))


def test_out_of_universe_node_rejected(instance):
    manager = ShardedOnlineManager(
        instance.provider,
        instance.servers,
        OnlineConfig(shards=2),
        client_nodes=instance.clients,
    )
    server_node = int(instance.servers[0])
    with pytest.raises(InvalidAssignmentError):
        manager.join(server_node)
    with pytest.raises(InvalidAssignmentError):
        manager.shard_of_node(10**9)


def test_double_join_rejected(instance):
    manager = ShardedOnlineManager(
        instance.provider,
        instance.servers,
        OnlineConfig(shards=2),
        client_nodes=instance.clients,
    )
    node = int(instance.clients[0])
    manager.join(node)
    with pytest.raises(InvalidAssignmentError):
        manager.join(node)


def test_capacity_enforced_globally(instance):
    """Global loads gate joins even though each shard only sees a slice."""
    servers = instance.servers[:2]
    manager = ShardedOnlineManager(
        instance.provider,
        servers,
        OnlineConfig(capacity=3, shards=4),
        client_nodes=instance.clients,
    )
    joined = 0
    with pytest.raises(CapacityError):
        for node in instance.clients:
            manager.join(int(node))
            joined += 1
    assert joined == 3 * servers.size
    assert int(manager.loads().sum()) == joined
    assert np.all(manager.loads() <= 3)


def test_rebalance_never_worsens_d(instance):
    manager = ShardedOnlineManager(
        instance.provider,
        instance.servers,
        OnlineConfig(shards=4),
        client_nodes=instance.clients,
    )
    rng = np.random.default_rng(5)
    for node in instance.clients[:80]:
        manager.join(int(node))
    # Scramble to create repair headroom.
    for node in instance.clients[:40]:
        manager.move(int(node), int(rng.integers(manager.n_servers)))
    before = manager.current_d()
    moves = manager.rebalance(max_moves=32)
    after = manager.current_d()
    assert after <= before + 1e-9
    assert moves >= 0
    assert manager.verify()


def test_snapshot_matches_current_d(instance):
    manager = ShardedOnlineManager(
        instance.provider,
        instance.servers,
        OnlineConfig(shards=8),
        client_nodes=instance.clients,
    )
    with pytest.raises(InvalidAssignmentError):
        manager.snapshot()
    for node in instance.clients[:60]:
        manager.join(int(node))
    problem, assignment, nodes = manager.snapshot()
    assert nodes == manager.clients
    assert max_interaction_path_length(assignment) == pytest.approx(
        manager.current_d()
    )


def test_fault_introspection_reports_all_servers_usable(instance):
    manager = ShardedOnlineManager(
        instance.provider,
        instance.servers,
        OnlineConfig(shards=2),
        client_nodes=instance.clients,
    )
    assert manager.n_active_servers == manager.n_servers
    assert manager.n_reachable_servers == manager.n_servers
    assert manager.n_usable_servers == manager.n_servers
    assert manager.capacity is None
    assert manager.matrix is instance.provider
    assert np.array_equal(manager.server_nodes, instance.servers)


def test_churn_is_instrumented(instance):
    metrics = MetricsRegistry()
    with use_registry(metrics):
        manager = ShardedOnlineManager(
            instance.provider,
            instance.servers,
            OnlineConfig(shards=2),
            client_nodes=instance.clients,
        )
        for node in instance.clients[:10]:
            manager.join(int(node))
        manager.leave(int(instance.clients[0]))
        manager.rebalance(max_moves=8)
    counters = metrics.snapshot()["counters"]
    assert counters["scale.sharded.joins"] == 10
    assert counters["scale.sharded.leaves"] == 1
    assert counters.get("scale.sharded.rebalance_moves", 0) >= 0


def test_invalid_construction(instance):
    with pytest.raises(InvalidParameterError):
        ShardedOnlineManager(
            instance.provider, np.array([], dtype=np.int64)
        )
    with pytest.raises(InvalidParameterError):
        ShardedOnlineManager(
            instance.provider,
            instance.servers,
            client_nodes=np.array([], dtype=np.int64),
        )
