"""solve_at_scale: the bound, exact expansion, and dense equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Assignment, ClientAssignmentProblem
from repro.core.metrics import max_interaction_path_length
from repro.datasets import coreset_cell_size_hint, planet_instance
from repro.datasets.synthetic import small_world_latencies
from repro.errors import InvalidParameterError, ScaleBoundError
from repro.obs import MetricsRegistry, use_registry
from repro.parallel.shm import attach_array
from repro.scale import (
    build_coreset,
    expanded_objective,
    publish_reduced_views,
    solve_at_scale,
)


@pytest.fixture(scope="module")
def instance():
    return planet_instance(2000, 8, n_clusters=16, seed=7)


def test_bound_holds_and_result_is_consistent(instance):
    result = solve_at_scale(
        instance.provider,
        instance.servers,
        instance.clients,
        cell_size=coreset_cell_size_hint(instance),
        seed=0,
    )
    assert result.server_of.shape == (instance.n_clients,)
    assert result.server_of.min() >= 0
    assert result.server_of.max() < instance.n_servers
    assert not result.server_of.flags.writeable
    assert result.bound == pytest.approx(
        result.d_reduced + 2.0 * result.epsilon
    )
    assert result.d_expanded <= result.bound + 1e-9
    assert result.algorithm == "distributed-greedy"
    assert result.elapsed_seconds > 0.0


def test_expanded_objective_is_exact():
    """The streamed O(|S|^2)-memory evaluation must equal the dense
    metric on the full assignment."""
    matrix = small_world_latencies(50, seed=4)
    servers = np.array([2, 19, 33, 47], dtype=np.int64)
    mask = np.ones(50, dtype=bool)
    mask[servers] = False
    clients = np.flatnonzero(mask).astype(np.int64)
    rng = np.random.default_rng(1)
    server_of = rng.integers(0, servers.size, size=clients.size).astype(
        np.int64
    )
    problem = ClientAssignmentProblem(matrix, servers, clients=clients)
    dense_d = max_interaction_path_length(Assignment(problem, server_of))
    for chunk_size in (7, 46, 1000):
        assert expanded_objective(
            matrix, servers, clients, server_of, chunk_size=chunk_size
        ) == pytest.approx(dense_d)


def test_coordinate_and_dense_providers_agree(instance):
    """The pipeline must be source-agnostic: running on the coordinate
    provider and on its materialized dense matrix gives the same
    reduction and the same objectives."""
    dense = instance.provider.materialize()
    cell = coreset_cell_size_hint(instance)
    via_provider = solve_at_scale(
        instance.provider, instance.servers, instance.clients,
        cell_size=cell, seed=3,
    )
    via_dense = solve_at_scale(
        dense, instance.servers, instance.clients, cell_size=cell, seed=3,
    )
    assert np.array_equal(
        via_provider.coreset.representatives,
        via_dense.coreset.representatives,
    )
    assert via_provider.epsilon == via_dense.epsilon
    assert via_provider.d_reduced == via_dense.d_reduced
    assert via_provider.d_expanded == via_dense.d_expanded
    assert np.array_equal(via_provider.server_of, via_dense.server_of)


def test_reduced_instance_carries_weights(instance):
    result = solve_at_scale(
        instance.provider,
        instance.servers,
        instance.clients,
        cell_size=coreset_cell_size_hint(instance),
        seed=0,
    )
    weights = result.reduced.assignment.problem.client_weights
    assert weights is not None
    assert int(np.sum(weights)) == instance.n_clients
    assert np.array_equal(weights, result.coreset.weights)


def test_clients_default_to_non_server_nodes(instance):
    explicit = solve_at_scale(
        instance.provider,
        instance.servers,
        instance.clients,
        cell_size=10.0,
        seed=0,
    )
    defaulted = solve_at_scale(
        instance.provider, instance.servers, cell_size=10.0, seed=0
    )
    assert np.array_equal(explicit.server_of, defaulted.server_of)


def test_to_dict_is_json_ready(instance):
    import json

    result = solve_at_scale(
        instance.provider,
        instance.servers,
        instance.clients,
        cell_size=10.0,
        seed=0,
    )
    payload = result.to_dict()
    assert set(payload) == {
        "algorithm",
        "n_clients",
        "n_representatives",
        "reduction_ratio",
        "epsilon",
        "cell_size",
        "d_reduced",
        "d_expanded",
        "bound",
        "elapsed_seconds",
    }
    assert payload["n_clients"] == instance.n_clients
    json.dumps(payload)  # every value must serialize


def test_pipeline_is_instrumented(instance):
    metrics = MetricsRegistry()
    with use_registry(metrics):
        solve_at_scale(
            instance.provider,
            instance.servers,
            instance.clients,
            cell_size=10.0,
            seed=0,
        )
    snap = metrics.snapshot()
    assert snap["counters"]["scale.solves"] == 1
    assert snap["counters"]["scale.coreset.clients"] == instance.n_clients
    assert snap["gauges"]["scale.last_reduction_ratio"] > 1.0


def test_scale_bound_error_code():
    assert ScaleBoundError.code == "scale-bound-violated"


def test_invalid_parameters(instance):
    with pytest.raises(InvalidParameterError):
        solve_at_scale(
            instance.provider,
            instance.servers,
            np.array([], dtype=np.int64),
            cell_size=10.0,
        )
    with pytest.raises(InvalidParameterError):
        build_coreset(
            instance.provider,
            instance.servers,
            instance.clients,
            cell_size=10.0,
            chunk_size=0,
        )


def test_publish_reduced_views_round_trip(instance):
    coreset = build_coreset(
        instance.provider,
        instance.servers,
        instance.clients,
        cell_size=coreset_cell_size_hint(instance),
    )
    problem = ClientAssignmentProblem(
        instance.provider,
        instance.servers,
        clients=coreset.representatives,
        client_weights=coreset.weights,
    )
    published = publish_reduced_views(problem)
    try:
        assert set(published) == {
            "client_server",
            "server_client",
            "server_server",
        }
        for name, source in (
            ("client_server", problem.client_server),
            ("server_client", problem.server_client),
            ("server_server", problem.server_server),
        ):
            attached = attach_array(published[name].handle)
            assert np.array_equal(attached, source)
    finally:
        for ctx in published.values():
            ctx.close()
