"""Chaos harness: workload determinism and the kill/recover/diff gate."""

import pytest

from repro.datasets.synthetic import small_world_latencies
from repro.errors import InvalidParameterError
from repro.placement import random_placement
from repro.resilience import (
    ChaosEvent,
    DegradePolicy,
    chaos_workload,
    run_chaos,
)


@pytest.fixture(scope="module")
def matrix():
    return small_world_latencies(40, seed=7)


@pytest.fixture(scope="module")
def servers(matrix):
    return random_placement(matrix, 4, seed=2)


class TestWorkload:
    def test_deterministic_per_seed(self, matrix, servers):
        a = chaos_workload(matrix, servers, n_events=50, seed=11)
        b = chaos_workload(matrix, servers, n_events=50, seed=11)
        c = chaos_workload(matrix, servers, n_events=50, seed=12)
        assert a == b
        assert a != c

    def test_events_are_state_valid(self, matrix, servers):
        """No duplicate joins, no leaves of absent nodes, no double
        crashes/partitions — the workload must replay on any runtime."""
        events = chaos_workload(matrix, servers, n_events=80, seed=3)
        server_set = set(int(s) for s in servers)
        connected, down, unreachable = set(), set(), set()
        for event in events:
            if event.kind == "join":
                assert event.node not in connected
                assert event.node not in server_set
                connected.add(event.node)
            elif event.kind == "leave":
                assert event.node in connected
                connected.remove(event.node)
            elif event.kind == "crash":
                assert event.server not in down
                down.add(event.server)
            elif event.kind == "recover":
                assert event.server in down
                down.remove(event.server)
            elif event.kind == "partition":
                assert event.server not in unreachable
                unreachable.add(event.server)
            elif event.kind == "heal":
                assert event.server in unreachable
                unreachable.remove(event.server)
            else:
                pytest.fail(f"unexpected kind {event.kind}")

    def test_includes_faults_by_default(self, matrix, servers):
        events = chaos_workload(matrix, servers, n_events=120, seed=0)
        kinds = {e.kind for e in events}
        assert "join" in kinds and "leave" in kinds
        assert "crash" in kinds

    def test_validation(self, matrix, servers):
        with pytest.raises(InvalidParameterError):
            chaos_workload(matrix, servers, n_events=0)
        with pytest.raises(InvalidParameterError):
            chaos_workload(matrix, servers, join_probability=1.0)


class TestRunChaos:
    def test_property_holds_with_torn_tails(self, tmp_path, matrix, servers):
        report = run_chaos(
            matrix,
            servers,
            tmp_path,
            n_events=40,
            kill_points=(6, 21),
            seed=5,
            capacity=12,
            policy=DegradePolicy(max_backlog=6),
            checkpoint_every=10,
        )
        assert report.ok
        assert report.kill_points == (6, 21)
        assert all(r.torn_tail for r in report.results)
        assert all(r.state_match for r in report.results)
        assert all(r.trajectory_match for r in report.results)
        assert all(r.final_match for r in report.results)
        assert "verdict: OK" in report.render()

    def test_replays_wal_tail_past_checkpoint(self, tmp_path, matrix, servers):
        """A kill point off the checkpoint cadence forces real replay."""
        report = run_chaos(
            matrix,
            servers,
            tmp_path,
            n_events=30,
            kill_points=(17,),
            seed=1,
            checkpoint_every=10,
            tear_tail=False,
        )
        assert report.ok
        (result,) = report.results
        assert not result.torn_tail
        assert result.replayed > 0

    def test_wal_only_recovery(self, tmp_path, matrix, servers):
        """checkpoint_every=0 recovers from the genesis record alone."""
        report = run_chaos(
            matrix,
            servers,
            tmp_path,
            n_events=20,
            kill_points=(13,),
            seed=2,
            checkpoint_every=0,
        )
        assert report.ok
        assert report.results[0].replayed >= 13

    def test_explicit_workload_passthrough(self, tmp_path, matrix, servers):
        nodes = [
            u
            for u in range(matrix.n_nodes)
            if u not in set(int(s) for s in servers)
        ]
        workload = tuple(
            ChaosEvent("join", node=n) for n in nodes[:10]
        ) + (ChaosEvent("leave", node=nodes[0]),)
        report = run_chaos(
            matrix, servers, tmp_path, workload=workload, kill_points=(4,)
        )
        assert report.ok and report.n_events == 11

    def test_kill_point_out_of_range(self, tmp_path, matrix, servers):
        with pytest.raises(InvalidParameterError, match="outside"):
            run_chaos(
                matrix, servers, tmp_path, n_events=10, kill_points=(99,)
            )

    def test_default_kill_points_cover_the_run(self, tmp_path, matrix, servers):
        report = run_chaos(
            matrix, servers, tmp_path, n_events=24, seed=9, checkpoint_every=5
        )
        assert len(report.kill_points) == 3
        assert report.ok
