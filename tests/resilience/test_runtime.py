"""DurableRuntime: log-then-apply, checkpoints, byte-identical recovery."""

import os

import pytest

from repro.datasets.synthetic import small_world_latencies
from repro.errors import (
    CheckpointError,
    InvalidAssignmentError,
    InvalidParameterError,
    ResilienceError,
)
from repro.placement import random_placement
from repro.resilience import DegradePolicy, DurableRuntime, list_checkpoints
from repro.resilience.runtime import WAL_NAME


@pytest.fixture
def matrix():
    return small_world_latencies(30, seed=4)


@pytest.fixture
def servers(matrix):
    return random_placement(matrix, 3, seed=1)


def client_nodes(matrix, servers, n):
    server_set = set(int(s) for s in servers)
    return [u for u in range(matrix.n_nodes) if u not in server_set][:n]


def churn(runtime, nodes):
    """A deterministic little workload touching every event kind."""
    for node in nodes[:6]:
        runtime.join(node)
    runtime.leave(nodes[1])
    runtime.crash(0)
    runtime.join(nodes[6])
    runtime.partition([1])
    runtime.leave(nodes[2])
    runtime.heal([1])
    runtime.recover_server(0)
    runtime.rebalance(max_moves=4)


class TestFreshStart:
    def test_genesis_record_written(self, tmp_path, matrix, servers):
        with DurableRuntime(tmp_path, matrix, servers) as runtime:
            assert runtime.applied_seq == 1
            assert runtime.health == "healthy"
        from repro.resilience import read_wal

        records = read_wal(tmp_path / WAL_NAME).records
        assert records[0].kind == "open"
        assert records[0].data["matrix_fingerprint"]

    def test_refuses_existing_wal(self, tmp_path, matrix, servers):
        DurableRuntime(tmp_path, matrix, servers).close()
        with pytest.raises(ResilienceError, match="already exists"):
            DurableRuntime(tmp_path, matrix, servers)

    def test_refuses_existing_checkpoints(self, tmp_path, matrix, servers):
        runtime = DurableRuntime(tmp_path, matrix, servers)
        runtime.checkpoint()
        runtime.close()
        os.unlink(tmp_path / WAL_NAME)
        with pytest.raises(ResilienceError, match="checkpoints already"):
            DurableRuntime(tmp_path, matrix, servers)


class TestEventApi:
    def test_join_leave(self, tmp_path, matrix, servers):
        nodes = client_nodes(matrix, servers, 2)
        with DurableRuntime(tmp_path, matrix, servers) as runtime:
            assert runtime.join(nodes[0]) == "assigned"
            assert runtime.n_clients == 1
            with pytest.raises(InvalidAssignmentError, match="already"):
                runtime.join(nodes[0])
            assert runtime.leave(nodes[0]) == "left"
            assert runtime.leave(nodes[1]) == "absent"

    def test_crash_recover_validation(self, tmp_path, matrix, servers):
        with DurableRuntime(tmp_path, matrix, servers) as runtime:
            runtime.crash(0)
            with pytest.raises(InvalidParameterError, match="already down"):
                runtime.crash(0)
            runtime.recover_server(0)
            with pytest.raises(InvalidParameterError, match="already up"):
                runtime.recover_server(0)

    def test_partition_heal_validation(self, tmp_path, matrix, servers):
        with DurableRuntime(tmp_path, matrix, servers) as runtime:
            runtime.partition([1])
            with pytest.raises(InvalidParameterError, match="unreachable"):
                runtime.partition([1])
            runtime.heal([1])
            with pytest.raises(InvalidParameterError, match="reachable"):
                runtime.heal([1])
            with pytest.raises(InvalidParameterError):
                runtime.partition([])

    def test_capacity_exhaustion_queues_then_rejects(
        self, tmp_path, matrix, servers
    ):
        nodes = client_nodes(matrix, servers, 5)
        policy = DegradePolicy(max_backlog=1)
        with DurableRuntime(
            tmp_path, matrix, servers, capacity=1, policy=policy
        ) as runtime:
            assert [runtime.join(n) for n in nodes[:3]] == ["assigned"] * 3
            assert runtime.join(nodes[3]) == "queued"
            # Capacity is not a structural violation, so the same-event
            # tick already moved DEGRADED -> RECOVERING (waiting on a
            # leave to free a slot).
            assert runtime.health == "recovering"
            assert runtime.join(nodes[4]) == "rejected"
            assert runtime.leave(nodes[3]) == "dequeued"

    def test_total_outage_degrades_instead_of_raising(
        self, tmp_path, matrix, servers
    ):
        nodes = client_nodes(matrix, servers, 3)
        with DurableRuntime(tmp_path, matrix, servers) as runtime:
            for node in nodes:
                runtime.join(node)
            for s in range(3):
                runtime.crash(s)
            assert runtime.health == "degraded"
            assert runtime.n_clients == 0  # total outage sheds everyone
            assert runtime.join(nodes[0]) == "queued"
            runtime.recover_server(0)
            runtime.rebalance()  # RECOVERING drains on the next events
            assert runtime.health == "healthy"
            assert runtime.manager.is_connected(nodes[0])

    def test_closed_runtime_refuses_events(self, tmp_path, matrix, servers):
        runtime = DurableRuntime(tmp_path, matrix, servers)
        runtime.close()
        runtime.close()  # idempotent
        with pytest.raises(ResilienceError, match="closed"):
            runtime.join(client_nodes(matrix, servers, 1)[0])


class TestRecovery:
    def test_byte_identical_with_checkpoint(self, tmp_path, matrix, servers):
        nodes = client_nodes(matrix, servers, 8)
        runtime = DurableRuntime(
            tmp_path, matrix, servers, checkpoint_every=4
        )
        churn(runtime, nodes)
        expected = runtime.digest()
        expected_d = runtime.current_d()
        runtime.abandon()
        assert list_checkpoints(tmp_path)  # cadence produced at least one

        recovered = DurableRuntime.recover(tmp_path, matrix)
        assert recovered.digest() == expected
        assert recovered.current_d() == expected_d
        recovered.close()

    def test_byte_identical_wal_only(self, tmp_path, matrix, servers):
        """checkpoint_every=None: recovery replays the whole log."""
        nodes = client_nodes(matrix, servers, 8)
        runtime = DurableRuntime(
            tmp_path, matrix, servers, checkpoint_every=None
        )
        churn(runtime, nodes)
        expected = runtime.digest()
        runtime.abandon()
        assert not list_checkpoints(tmp_path)

        recovered = DurableRuntime.recover(tmp_path, matrix)
        assert recovered.digest() == expected
        recovered.close()

    def test_recovered_runtime_keeps_sequencing(
        self, tmp_path, matrix, servers
    ):
        nodes = client_nodes(matrix, servers, 8)
        runtime = DurableRuntime(tmp_path, matrix, servers)
        runtime.join(nodes[0])
        seq = runtime.applied_seq
        runtime.abandon()
        recovered = DurableRuntime.recover(tmp_path, matrix)
        assert recovered.applied_seq == seq
        recovered.join(nodes[1])
        assert recovered.applied_seq == seq + 1
        recovered.close()

    def test_torn_tail_is_truncated_on_recover(
        self, tmp_path, matrix, servers
    ):
        nodes = client_nodes(matrix, servers, 4)
        runtime = DurableRuntime(tmp_path, matrix, servers)
        for node in nodes:
            runtime.join(node)
        expected = runtime.digest()
        runtime.abandon()
        with open(tmp_path / WAL_NAME, "ab") as handle:
            handle.write(b'{"crc":"00000000","data"')
        with pytest.warns(RuntimeWarning, match="torn final record"):
            recovered = DurableRuntime.recover(tmp_path, matrix)
        assert recovered.digest() == expected
        recovered.close()

    def test_degrade_state_survives_recovery(self, tmp_path, matrix, servers):
        nodes = client_nodes(matrix, servers, 5)
        policy = DegradePolicy(max_backlog=4)
        runtime = DurableRuntime(
            tmp_path, matrix, servers, capacity=1, policy=policy
        )
        for node in nodes[:3]:
            runtime.join(node)
        assert runtime.join(nodes[3]) == "queued"
        expected = runtime.digest()
        runtime.abandon()
        recovered = DurableRuntime.recover(tmp_path, matrix)
        assert recovered.digest() == expected
        assert recovered.health == "recovering"
        assert recovered.degrade.backlog == (nodes[3],)
        recovered.close()

    def test_matrix_fingerprint_mismatch(self, tmp_path, matrix, servers):
        DurableRuntime(tmp_path, matrix, servers).close()
        other = small_world_latencies(30, seed=5)
        with pytest.raises(CheckpointError, match="fingerprint"):
            DurableRuntime.recover(tmp_path, other)

    def test_empty_directory_raises(self, tmp_path, matrix):
        with pytest.raises(ResilienceError, match="nothing to recover"):
            DurableRuntime.recover(tmp_path, matrix)

    def test_damaged_newest_checkpoint_falls_back(
        self, tmp_path, matrix, servers
    ):
        nodes = client_nodes(matrix, servers, 8)
        runtime = DurableRuntime(
            tmp_path, matrix, servers, checkpoint_every=3, keep_checkpoints=3
        )
        churn(runtime, nodes)
        expected = runtime.digest()
        runtime.abandon()
        checkpoints = list_checkpoints(tmp_path)
        assert len(checkpoints) >= 2
        with open(checkpoints[-1][1], "w", encoding="utf-8") as handle:
            handle.write("{corrupt")
        with pytest.warns(RuntimeWarning, match="skipping invalid"):
            recovered = DurableRuntime.recover(tmp_path, matrix)
        assert recovered.digest() == expected
        recovered.close()


class TestStateDict:
    def test_digest_changes_with_state(self, tmp_path, matrix, servers):
        nodes = client_nodes(matrix, servers, 2)
        with DurableRuntime(tmp_path, matrix, servers) as runtime:
            before = runtime.digest()
            runtime.join(nodes[0])
            after = runtime.digest()
        assert before != after

    def test_state_dict_is_json_safe(self, tmp_path, matrix, servers):
        import json

        nodes = client_nodes(matrix, servers, 3)
        with DurableRuntime(tmp_path, matrix, servers) as runtime:
            churn(runtime, nodes + client_nodes(matrix, servers, 8)[3:])
            state = runtime.state_dict()
        json.dumps(state)  # must not raise
        assert state["schema"] == 1
