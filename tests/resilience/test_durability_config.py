"""DurabilityConfig: validation, volatile mode, and the legacy shim."""

import warnings

import pytest

from repro.algorithms.online import OnlineConfig
from repro.datasets import synthesize_meridian_like
from repro.errors import InvalidParameterError, ResilienceError
from repro.placement import kcenter_b
from repro.resilience.runtime import DurabilityConfig, DurableRuntime


@pytest.fixture(scope="module")
def small_world():
    matrix = synthesize_meridian_like(30, seed=0)
    servers = kcenter_b(matrix, 3, seed=0)
    return matrix, servers


class TestValidation:
    def test_defaults_are_wal(self):
        config = DurabilityConfig()
        assert config.mode == "wal"
        assert config.durable

    def test_off_mode(self):
        assert not DurabilityConfig(mode="off").durable

    def test_bad_mode(self):
        with pytest.raises(InvalidParameterError):
            DurabilityConfig(mode="ram")

    def test_bad_intervals(self):
        with pytest.raises(InvalidParameterError):
            DurabilityConfig(checkpoint_every=-1)
        with pytest.raises(InvalidParameterError):
            DurabilityConfig(fsync_every=-1)
        with pytest.raises(InvalidParameterError):
            DurabilityConfig(keep_checkpoints=0)

    def test_roundtrip(self):
        config = DurabilityConfig(mode="off", checkpoint_every=None, fsync_every=1)
        assert DurabilityConfig.from_dict(config.to_dict()) == config


class TestRuntimeConstruction:
    def test_wal_mode_requires_directory(self, small_world):
        matrix, servers = small_world
        with pytest.raises(InvalidParameterError, match="directory"):
            DurableRuntime(None, matrix, servers)

    def test_volatile_mode_needs_no_directory(self, small_world):
        matrix, servers = small_world
        with DurableRuntime(
            None, matrix, servers, durability=DurabilityConfig(mode="off")
        ) as runtime:
            assert runtime.directory is None
            assert runtime.wal.path is None
            assert runtime.join(1) == "assigned"
            assert runtime.applied_seq == 2

    def test_legacy_kwargs_warn_but_work(self, small_world, tmp_path):
        matrix, servers = small_world
        with pytest.warns(DeprecationWarning, match="deprecated"):
            runtime = DurableRuntime(
                tmp_path / "rt", matrix, servers, checkpoint_every=5,
                fsync_every=1,
            )
        assert runtime.durability.checkpoint_every == 5
        assert runtime.durability.fsync_every == 1
        runtime.close()

    def test_double_specification_rejected(self, small_world, tmp_path):
        matrix, servers = small_world
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(InvalidParameterError, match="both"):
                DurableRuntime(
                    tmp_path / "rt2",
                    matrix,
                    servers,
                    durability=DurabilityConfig(checkpoint_every=5),
                    checkpoint_every=7,
                )

    def test_recover_refuses_off_mode(self, small_world, tmp_path):
        matrix, servers = small_world
        with pytest.raises(InvalidParameterError, match="off"):
            DurableRuntime.recover(
                tmp_path, matrix, durability=DurabilityConfig(mode="off")
            )

    def test_online_config_forwarded(self, small_world):
        matrix, servers = small_world
        with DurableRuntime(
            None,
            matrix,
            servers,
            online=OnlineConfig(capacity=2, join_policy="nearest"),
            durability=DurabilityConfig(mode="off"),
        ) as runtime:
            assert runtime.online_config.capacity == 2
            assert runtime.online_config.join_policy == "nearest"


class TestCrossModeIdentity:
    def test_volatile_digest_equals_wal_digest(self, small_world, tmp_path):
        """The whole point of _NullWal: durability must not perturb a
        single byte of observable state."""
        matrix, servers = small_world
        volatile = DurableRuntime(
            None, matrix, servers, durability=DurabilityConfig(mode="off")
        )
        durable = DurableRuntime(
            tmp_path / "twin",
            matrix,
            servers,
            durability=DurabilityConfig(checkpoint_every=3),
        )
        ops = [
            ("join", 1), ("join", 2), ("join", 5), ("crash", 0),
            ("join", 7), ("leave", 2), ("recover", 0), ("leave", 9),
        ]
        for op, arg in ops:
            for runtime in (volatile, durable):
                if op == "join":
                    runtime.join(arg)
                elif op == "leave":
                    runtime.leave(arg)
                elif op == "crash":
                    runtime.crash(arg)
                else:
                    runtime.recover_server(arg)
            assert volatile.digest() == durable.digest()
        durable.close()
        # ...and the durable twin recovers from disk to the same digest.
        recovered = DurableRuntime.recover(tmp_path / "twin", matrix)
        assert recovered.digest() == volatile.digest()
        recovered.close()
        volatile.close()

    def test_volatile_runtime_closed_semantics(self, small_world):
        matrix, servers = small_world
        runtime = DurableRuntime(
            None, matrix, servers, durability=DurabilityConfig(mode="off")
        )
        runtime.close()
        with pytest.raises(ResilienceError):
            runtime.join(1)
