"""Degraded-mode state machine: transitions, backlog, watermark, drain."""

import pytest

from repro.algorithms.online import OnlineAssignmentManager
from repro.datasets.synthetic import small_world_latencies
from repro.errors import InvalidParameterError, ResilienceError
from repro.resilience import (
    DEGRADED,
    HEALTHY,
    RECOVERING,
    DegradeController,
    DegradePolicy,
)
from repro.placement import random_placement


@pytest.fixture
def matrix():
    return small_world_latencies(30, seed=2)


@pytest.fixture
def servers(matrix):
    return random_placement(matrix, 3, seed=0)


def make(matrix, servers, *, capacity=None, policy=None):
    manager = OnlineAssignmentManager(matrix, servers, capacity=capacity)
    return manager, DegradeController(manager, policy)


def client_nodes(matrix, servers, n):
    server_set = set(int(s) for s in servers)
    return [u for u in range(matrix.n_nodes) if u not in server_set][:n]


class TestPolicy:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DegradePolicy(max_backlog=-1)
        with pytest.raises(InvalidParameterError):
            DegradePolicy(d_budget=0.0)

    def test_defaults(self):
        policy = DegradePolicy()
        assert policy.max_backlog == 64 and policy.d_budget is None


class TestTransitions:
    def test_starts_healthy(self, matrix, servers):
        _, degrade = make(matrix, servers)
        assert degrade.state == HEALTHY and degrade.violation() is None

    def test_total_outage_degrades_then_recovers(self, matrix, servers):
        manager, degrade = make(matrix, servers)
        for s in range(3):
            manager.deactivate_server(s)
        assert degrade.violation() == "no-usable-server"
        degrade.tick()
        assert degrade.state == DEGRADED
        manager.reactivate_server(0)
        degrade.tick()
        assert degrade.state == RECOVERING
        degrade.tick()  # empty backlog drains immediately
        assert degrade.state == HEALTHY
        assert [t[:2] for t in degrade.transitions] == [
            (HEALTHY, DEGRADED),
            (DEGRADED, RECOVERING),
            (RECOVERING, HEALTHY),
        ]

    def test_partition_of_every_server_is_a_violation(self, matrix, servers):
        manager, degrade = make(matrix, servers)
        for s in range(3):
            manager.partition_server(s)
        assert degrade.violation() == "no-usable-server"

    def test_latency_budget_violation(self, matrix, servers):
        manager, degrade = make(
            matrix, servers, policy=DegradePolicy(d_budget=1e-6)
        )
        manager.join(client_nodes(matrix, servers, 1)[0])
        assert degrade.violation() == "latency-budget"
        degrade.tick()
        assert degrade.state == DEGRADED

    def test_at_most_one_transition_per_tick(self, matrix, servers):
        manager, degrade = make(matrix, servers)
        for s in range(3):
            manager.deactivate_server(s)
        degrade.tick()
        manager.reactivate_server(0)
        degrade.tick()
        # One tick moved DEGRADED -> RECOVERING only, not on to HEALTHY.
        assert degrade.state == RECOVERING

    def test_relapse_from_recovering(self, matrix, servers):
        manager, degrade = make(matrix, servers)
        for s in range(3):
            manager.deactivate_server(s)
        degrade.tick()
        manager.reactivate_server(0)
        degrade.tick()
        assert degrade.state == RECOVERING
        manager.deactivate_server(0)
        degrade.tick()
        assert degrade.state == DEGRADED


class TestBacklog:
    def test_queue_up_to_watermark_then_reject(self, matrix, servers):
        _, degrade = make(
            matrix, servers, policy=DegradePolicy(max_backlog=2)
        )
        nodes = client_nodes(matrix, servers, 3)
        assert degrade.admission_blocked(nodes[0], "capacity-exhausted") == "queued"
        assert degrade.state == DEGRADED
        assert degrade.admission_blocked(nodes[1], "degraded") == "queued"
        assert degrade.admission_blocked(nodes[2], "degraded") == "rejected"
        assert degrade.backlog == (nodes[0], nodes[1])
        assert degrade.n_queued == 2 and degrade.n_rejected == 1

    def test_zero_watermark_rejects_immediately(self, matrix, servers):
        _, degrade = make(matrix, servers, policy=DegradePolicy(max_backlog=0))
        node = client_nodes(matrix, servers, 1)[0]
        assert degrade.admission_blocked(node, "degraded") == "rejected"

    def test_drain_admits_fifo_and_returns_healthy(self, matrix, servers):
        manager, degrade = make(matrix, servers)
        for s in range(3):
            manager.deactivate_server(s)
        degrade.tick()
        nodes = client_nodes(matrix, servers, 3)
        for node in nodes:
            degrade.admission_blocked(node, "degraded")
        manager.reactivate_server(1)
        degrade.tick()
        assert degrade.state == RECOVERING
        degrade.tick()
        assert degrade.state == HEALTHY
        assert degrade.backlog == ()
        assert degrade.n_drained == 3
        for node in nodes:
            assert manager.is_connected(node)

    def test_capacity_block_leaves_head_queued(self, matrix, servers):
        manager, degrade = make(matrix, servers, capacity=1)
        for s in range(3):
            manager.deactivate_server(s)
        degrade.tick()
        nodes = client_nodes(matrix, servers, 2)
        for node in nodes:
            degrade.admission_blocked(node, "degraded")
        manager.reactivate_server(0)  # one slot for two queued joins
        degrade.tick()
        degrade.tick()
        assert manager.is_connected(nodes[0])
        assert degrade.backlog == (nodes[1],)
        assert degrade.state == RECOVERING
        manager.reactivate_server(1)
        degrade.tick()
        assert degrade.state == HEALTHY and degrade.n_drained == 2

    def test_discard_queued(self, matrix, servers):
        _, degrade = make(matrix, servers)
        node = client_nodes(matrix, servers, 1)[0]
        degrade.admission_blocked(node, "degraded")
        assert degrade.in_backlog(node)
        assert degrade.discard_queued(node)
        assert not degrade.discard_queued(node)
        assert degrade.backlog == ()


class TestRestore:
    def test_roundtrip(self, matrix, servers):
        manager, degrade = make(matrix, servers)
        for s in range(3):
            manager.deactivate_server(s)
        degrade.tick()
        node = client_nodes(matrix, servers, 1)[0]
        degrade.admission_blocked(node, "degraded")
        data = degrade.to_dict()

        _, fresh = make(matrix, servers)
        fresh.restore(data)
        assert fresh.to_dict() == data
        assert fresh.state == DEGRADED and fresh.backlog == (node,)

    def test_refuses_controller_with_history(self, matrix, servers):
        manager, degrade = make(matrix, servers)
        for s in range(3):
            manager.deactivate_server(s)
        degrade.tick()
        with pytest.raises(ResilienceError, match="history"):
            degrade.restore(degrade.to_dict())

    def test_rejects_unknown_state(self, matrix, servers):
        _, degrade = make(matrix, servers)
        with pytest.raises(ResilienceError, match="unknown degrade state"):
            degrade.restore(
                {
                    "state": "on-fire",
                    "backlog": [],
                    "n_queued": 0,
                    "n_rejected": 0,
                    "n_drained": 0,
                    "transitions": [],
                }
            )
