"""Write-ahead log: append/read roundtrip, torn tails, corruption."""

import os

import pytest

from repro.errors import (
    InvalidParameterError,
    ResilienceError,
    WalCorruptionError,
)
from repro.resilience import (
    WriteAheadLog,
    read_wal,
    truncate_torn_tail,
)
from repro.resilience.wal import encode_record


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "events.wal")


def write_records(path, n, *, fsync_every=1):
    with WriteAheadLog(path, fsync_every=fsync_every) as log:
        for i in range(n):
            log.append("join", {"node": i})


class TestAppendRead:
    def test_roundtrip(self, wal_path):
        with WriteAheadLog(wal_path) as log:
            r1 = log.append("open", {"servers": [1, 2]})
            r2 = log.append("join", {"node": 7})
        assert (r1.seq, r2.seq) == (1, 2)
        result = read_wal(wal_path)
        assert not result.torn
        assert [r.kind for r in result.records] == ["open", "join"]
        assert result.records[1].data == {"node": 7}
        assert result.valid_bytes == os.path.getsize(wal_path)

    def test_missing_file_is_empty_log(self, wal_path):
        result = read_wal(wal_path)
        assert result.records == () and result.valid_bytes == 0

    def test_sequence_numbers_are_contiguous(self, wal_path):
        write_records(wal_path, 5)
        records = read_wal(wal_path).records
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]

    def test_closed_log_refuses_appends(self, wal_path):
        log = WriteAheadLog(wal_path)
        log.close()
        assert log.closed
        with pytest.raises(ResilienceError, match="closed"):
            log.append("join", {"node": 1})

    def test_parameter_validation(self, wal_path):
        with pytest.raises(InvalidParameterError):
            WriteAheadLog(wal_path, fsync_every=-1)
        with pytest.raises(InvalidParameterError):
            WriteAheadLog(wal_path, next_seq=0)

    def test_group_commit_still_readable_after_abandon(self, wal_path):
        log = WriteAheadLog(wal_path, fsync_every=100)
        for i in range(7):
            log.append("join", {"node": i})
        log.abandon()  # no final sync; appends were flushed per record
        assert len(read_wal(wal_path).records) == 7


class TestTornTail:
    def test_partial_final_line_is_reported_and_truncated(self, wal_path):
        write_records(wal_path, 3)
        clean_size = os.path.getsize(wal_path)
        with open(wal_path, "ab") as handle:
            handle.write(b'{"crc":"00000000","data":{"no')
        with pytest.warns(RuntimeWarning, match="torn final record"):
            result = read_wal(wal_path)
        assert result.torn and len(result.records) == 3
        assert truncate_torn_tail(wal_path, result)
        assert os.path.getsize(wal_path) == clean_size
        assert not read_wal(wal_path).torn

    def test_byte_truncated_final_record(self, wal_path):
        """A record cut mid-way through its bytes is a torn tail."""
        write_records(wal_path, 4)
        with open(wal_path, "rb") as handle:
            raw = handle.read()
        with open(wal_path, "wb") as handle:
            handle.write(raw[:-10])
        with pytest.warns(RuntimeWarning):
            result = read_wal(wal_path)
        assert result.torn and len(result.records) == 3

    def test_checksum_flip_on_last_record(self, wal_path):
        write_records(wal_path, 2)
        with open(wal_path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        lines[-1] = lines[-1].replace(b'"node":1', b'"node":9')
        with open(wal_path, "wb") as handle:
            handle.writelines(lines)
        with pytest.warns(RuntimeWarning, match="invalid record"):
            result = read_wal(wal_path)
        assert result.torn and len(result.records) == 1

    def test_truncate_is_noop_for_clean_log(self, wal_path):
        write_records(wal_path, 2)
        assert not truncate_torn_tail(wal_path, read_wal(wal_path))

    def test_resume_truncates_and_continues_sequence(self, wal_path):
        write_records(wal_path, 3)
        with open(wal_path, "ab") as handle:
            handle.write(b"garbage")
        with pytest.warns(RuntimeWarning):
            log, records = WriteAheadLog.resume(wal_path)
        assert [r.seq for r in records] == [1, 2, 3]
        with log:
            assert log.append("join", {"node": 99}).seq == 4
        assert len(read_wal(wal_path).records) == 4


class TestMidFileDamage:
    def test_valid_records_after_damage_raise(self, wal_path):
        """Truncating past acknowledged records must be refused."""
        write_records(wal_path, 4)
        with open(wal_path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        lines[1] = b'{"crc":"bad"}\n'
        with open(wal_path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(WalCorruptionError, match="mid-file"):
            read_wal(wal_path)

    def test_sequence_gap_with_valid_followers_raises(self, wal_path):
        write_records(wal_path, 3)
        with open(wal_path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        del lines[1]  # drop seq 2: seq 3 follows seq 1
        with open(wal_path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(WalCorruptionError):
            read_wal(wal_path)


def test_encode_record_is_compact_sorted_json():
    from repro.resilience import WalRecord

    line = encode_record(WalRecord(seq=1, kind="join", data={"node": 3}))
    assert line.startswith('{"crc":"')
    assert '"data":{"node":3},"kind":"join","seq":1}' in line
