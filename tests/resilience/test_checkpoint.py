"""Checkpoints: atomic write, validation, pruning, fallback on damage."""

import json
import os

import pytest

from repro.errors import CheckpointError
from repro.resilience import (
    list_checkpoints,
    load_checkpoint,
    load_latest_checkpoint,
    state_digest,
    write_checkpoint,
)


def sample_state(n):
    return {"schema": 1, "value": n, "d": float(n).hex()}


class TestWriteLoad:
    def test_roundtrip(self, tmp_path):
        path = write_checkpoint(tmp_path, 12, sample_state(12))
        checkpoint = load_checkpoint(path)
        assert checkpoint.seq == 12
        assert checkpoint.state == sample_state(12)

    def test_digest_matches_state_digest(self, tmp_path):
        path = write_checkpoint(tmp_path, 3, sample_state(3))
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["digest"] == state_digest(sample_state(3))

    def test_validation_rejects_bad_args(self, tmp_path):
        with pytest.raises(CheckpointError):
            write_checkpoint(tmp_path, -1, sample_state(0))
        with pytest.raises(CheckpointError):
            write_checkpoint(tmp_path, 1, sample_state(0), keep=0)

    def test_unknown_schema_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path, 1, sample_state(1))
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["schema_version"] = 99
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path)

    def test_tampered_state_fails_digest(self, tmp_path):
        path = write_checkpoint(tmp_path, 1, sample_state(1))
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["state"]["value"] = 999
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(CheckpointError, match="digest"):
            load_checkpoint(path)


class TestPruneAndLatest:
    def test_keeps_most_recent_n(self, tmp_path):
        for seq in (5, 10, 15, 20):
            write_checkpoint(tmp_path, seq, sample_state(seq), keep=2)
        assert [seq for seq, _ in list_checkpoints(tmp_path)] == [15, 20]

    def test_latest_returns_newest(self, tmp_path):
        write_checkpoint(tmp_path, 5, sample_state(5))
        write_checkpoint(tmp_path, 9, sample_state(9))
        latest = load_latest_checkpoint(tmp_path)
        assert latest is not None and latest.seq == 9

    def test_latest_skips_damaged_with_warning(self, tmp_path):
        write_checkpoint(tmp_path, 5, sample_state(5))
        newest = write_checkpoint(tmp_path, 9, sample_state(9))
        with open(newest, "w", encoding="utf-8") as handle:
            handle.write('{"half a checkp')
        with pytest.warns(RuntimeWarning, match="skipping invalid"):
            latest = load_latest_checkpoint(tmp_path)
        assert latest is not None and latest.seq == 5

    def test_empty_or_missing_directory(self, tmp_path):
        assert load_latest_checkpoint(tmp_path) is None
        assert load_latest_checkpoint(tmp_path / "nope") is None
        assert list_checkpoints(tmp_path / "nope") == []

    def test_foreign_files_ignored(self, tmp_path):
        (tmp_path / "events.wal").write_text("not a checkpoint")
        (tmp_path / "checkpoint-abc.json").write_text("{}")
        write_checkpoint(tmp_path, 1, sample_state(1))
        assert len(list_checkpoints(tmp_path)) == 1


def test_state_digest_is_order_insensitive_but_value_sensitive():
    a = {"x": 1, "y": 2}
    b = {"y": 2, "x": 1}
    assert state_digest(a) == state_digest(b)
    assert state_digest(a) != state_digest({"x": 1, "y": 3})
