"""Tests for the additional placement strategies."""

import numpy as np
import pytest

from repro.net.latency import LatencyMatrix
from repro.placement import coverage_radius, random_placement
from repro.placement.extra import (
    best_of_random_placement,
    k_median_placement,
    medoid_placement,
)

STRATEGIES = [k_median_placement, best_of_random_placement, medoid_placement]


@pytest.fixture(scope="module")
def matrix():
    return LatencyMatrix.random_metric(40, seed=8)


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.__name__)
class TestContract:
    def test_k_distinct_sorted(self, strategy, matrix):
        servers = strategy(matrix, 6, seed=0)
        assert servers.shape == (6,)
        assert np.unique(servers).size == 6
        assert np.all(np.diff(servers) > 0)

    def test_deterministic_per_seed(self, strategy, matrix):
        np.testing.assert_array_equal(
            strategy(matrix, 5, seed=2), strategy(matrix, 5, seed=2)
        )

    def test_invalid_k(self, strategy, matrix):
        with pytest.raises(ValueError):
            strategy(matrix, 0, seed=0)


class TestKMedian:
    def test_minimizes_total_distance_vs_random(self, matrix):
        def total_dist(centers):
            return matrix.values[:, centers].min(axis=1).sum()

        km = k_median_placement(matrix, 5, seed=0)
        random_totals = [
            total_dist(random_placement(matrix, 5, seed=s)) for s in range(10)
        ]
        assert total_dist(km) < np.mean(random_totals)


class TestBestOfRandom:
    def test_beats_single_random_draw(self, matrix):
        best = best_of_random_placement(matrix, 5, seed=0, draws=16)
        singles = [
            coverage_radius(matrix, random_placement(matrix, 5, seed=s))
            for s in range(10)
        ]
        assert coverage_radius(matrix, best) <= np.mean(singles)

    def test_invalid_draws(self, matrix):
        with pytest.raises(ValueError):
            best_of_random_placement(matrix, 5, draws=0)


class TestMedoids:
    def test_picks_most_central(self, matrix):
        servers = medoid_placement(matrix, 3)
        totals = matrix.values.sum(axis=0) + matrix.values.sum(axis=1)
        expected = np.sort(np.argsort(totals, kind="stable")[:3])
        np.testing.assert_array_equal(servers, expected)

    def test_clustered_failure_mode(self):
        # Two tight clusters far apart: medoids all land in the bigger
        # one, giving a coverage radius near the inter-cluster distance.
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.5, size=(15, 2))
        b = rng.normal(100.0, 0.5, size=(5, 2))
        matrix = LatencyMatrix.from_coordinates(np.vstack([a, b]))
        servers = medoid_placement(matrix, 3)
        assert np.all(servers < 15)  # all in the big cluster
        assert coverage_radius(matrix, servers) > 50.0
