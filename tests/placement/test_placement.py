"""Tests for repro.placement (random, K-center-A, K-center-B)."""

import numpy as np
import pytest

from repro.net.latency import LatencyMatrix
from repro.placement import (
    coverage_radius,
    gonzalez_kcenter,
    greedy_kcenter,
    kcenter_a,
    kcenter_b,
    random_placement,
)

STRATEGIES = [random_placement, gonzalez_kcenter, greedy_kcenter]


@pytest.fixture
def matrix():
    return LatencyMatrix.random_metric(50, seed=0)


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.__name__)
class TestCommonContract:
    def test_returns_k_distinct_sorted_nodes(self, strategy, matrix):
        servers = strategy(matrix, 7, seed=1)
        assert servers.shape == (7,)
        assert np.unique(servers).size == 7
        assert np.all(np.diff(servers) > 0)
        assert servers.min() >= 0 and servers.max() < matrix.n_nodes

    def test_deterministic_per_seed(self, strategy, matrix):
        a = strategy(matrix, 5, seed=3)
        b = strategy(matrix, 5, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_k_equals_n(self, strategy, matrix):
        servers = strategy(matrix, matrix.n_nodes, seed=0)
        np.testing.assert_array_equal(servers, np.arange(matrix.n_nodes))

    def test_k_one(self, strategy, matrix):
        servers = strategy(matrix, 1, seed=0)
        assert servers.shape == (1,)

    def test_invalid_k_rejected(self, strategy, matrix):
        with pytest.raises(ValueError):
            strategy(matrix, 0, seed=0)
        with pytest.raises(ValueError):
            strategy(matrix, matrix.n_nodes + 1, seed=0)


class TestCoverageRadius:
    def test_single_center(self, matrix):
        radius = coverage_radius(matrix, np.array([0]))
        assert radius == pytest.approx(matrix.values[:, 0].max())

    def test_all_centers_zero(self, matrix):
        radius = coverage_radius(matrix, np.arange(matrix.n_nodes))
        assert radius == 0.0

    def test_empty_centers_rejected(self, matrix):
        with pytest.raises(ValueError):
            coverage_radius(matrix, np.array([], dtype=int))

    def test_monotone_in_center_set(self, matrix):
        small = coverage_radius(matrix, np.array([0, 1]))
        large = coverage_radius(matrix, np.array([0, 1, 2, 3]))
        assert large <= small


class TestKCenterQuality:
    def test_kcenter_beats_random_on_average(self, matrix):
        k = 6
        random_radii = [
            coverage_radius(matrix, random_placement(matrix, k, seed=s))
            for s in range(20)
        ]
        a = coverage_radius(matrix, kcenter_a(matrix, k, seed=0))
        b = coverage_radius(matrix, kcenter_b(matrix, k, seed=0))
        assert a < np.mean(random_radii)
        assert b < np.mean(random_radii)

    def test_gonzalez_two_approximation_on_metric(self):
        # On a metric space, Gonzalez's radius is at most 2x optimal.
        # Brute-force the optimum on a small instance.
        import itertools

        matrix = LatencyMatrix.random_metric(12, seed=4)
        k = 3
        best = np.inf
        for combo in itertools.combinations(range(12), k):
            best = min(best, coverage_radius(matrix, np.array(combo)))
        achieved = coverage_radius(matrix, gonzalez_kcenter(matrix, k, seed=0))
        assert achieved <= 2.0 * best + 1e-9

    def test_greedy_improves_or_matches_gonzalez_often(self, matrix):
        # Not a theorem — but B should at least be competitive on average.
        ks = [3, 5, 8]
        a_radii = [coverage_radius(matrix, kcenter_a(matrix, k, seed=1)) for k in ks]
        b_radii = [coverage_radius(matrix, kcenter_b(matrix, k, seed=1)) for k in ks]
        assert np.mean(b_radii) <= np.mean(a_radii) * 1.2

    def test_radius_decreases_with_k(self, matrix):
        radii = [
            coverage_radius(matrix, kcenter_b(matrix, k, seed=0))
            for k in (2, 4, 8, 16)
        ]
        assert all(r2 <= r1 + 1e-9 for r1, r2 in zip(radii, radii[1:]))


class TestAliases:
    def test_paper_names(self):
        assert kcenter_a is gonzalez_kcenter
        assert kcenter_b is greedy_kcenter
