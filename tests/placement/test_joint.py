"""Tests for joint server selection + assignment."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.core import ClientAssignmentProblem, max_interaction_path_length
from repro.datasets.synthetic import small_world_latencies
from repro.errors import InvalidProblemError
from repro.placement import (
    joint_selection_exhaustive,
    joint_selection_greedy,
    kcenter_b,
)


@pytest.fixture(scope="module")
def matrix():
    return small_world_latencies(25, seed=12)


class TestGreedySelection:
    def test_result_consistency(self, matrix):
        result = joint_selection_greedy(matrix, 4, seed=0)
        assert result.servers.shape == (4,)
        assert np.unique(result.servers).size == 4
        # Reported objective matches re-evaluating the assignment.
        assert result.objective == pytest.approx(
            max_interaction_path_length(result.assignment)
        )
        np.testing.assert_array_equal(
            result.assignment.problem.servers, result.servers
        )

    def test_monotone_in_k(self, matrix):
        objectives = [
            joint_selection_greedy(matrix, k, seed=0).objective
            for k in (1, 2, 4)
        ]
        # Forward selection extends the previous set, so D is
        # non-increasing in k.
        assert all(b <= a + 1e-9 for a, b in zip(objectives, objectives[1:]))

    def test_restricted_candidates(self, matrix):
        candidates = [0, 3, 7, 11, 19]
        result = joint_selection_greedy(
            matrix, 3, candidates=candidates, seed=0
        )
        assert set(result.servers.tolist()) <= set(candidates)

    def test_invalid_k(self, matrix):
        with pytest.raises(ValueError):
            joint_selection_greedy(matrix, 0)
        with pytest.raises(ValueError):
            joint_selection_greedy(matrix, 3, candidates=[1, 2])

    def test_evaluation_count(self, matrix):
        candidates = list(range(10))
        result = joint_selection_greedy(matrix, 2, candidates=candidates)
        assert result.evaluations == 10 + 9


class TestExhaustiveSelection:
    def test_beats_or_matches_greedy(self, matrix):
        candidates = list(range(8))
        greedy_result = joint_selection_greedy(
            matrix, 3, candidates=candidates, seed=0
        )
        exact_result = joint_selection_exhaustive(
            matrix, 3, candidates=candidates, seed=0
        )
        assert exact_result.objective <= greedy_result.objective + 1e-9

    def test_subset_guard(self, matrix):
        with pytest.raises(InvalidProblemError):
            joint_selection_exhaustive(matrix, 10, max_subsets=5)

    def test_single_server(self, matrix):
        result = joint_selection_exhaustive(
            matrix, 1, candidates=list(range(6))
        )
        # With one server, the best site minimizes the two largest legs;
        # compare against direct enumeration.
        best = np.inf
        for s in range(6):
            problem = ClientAssignmentProblem(matrix, [s])
            a = get_algorithm("greedy")(problem)
            best = min(best, max_interaction_path_length(a))
        assert result.objective == pytest.approx(best)


class TestJointVsDecoupled:
    def test_joint_no_worse_than_decoupled_on_average(self):
        wins = 0
        trials = 4
        for seed in range(trials):
            matrix = small_world_latencies(30, seed=100 + seed)
            k = 4
            joint = joint_selection_greedy(matrix, k, algorithm="greedy", seed=0)
            servers = kcenter_b(matrix, k, seed=0)
            problem = ClientAssignmentProblem(matrix, servers)
            decoupled = max_interaction_path_length(
                get_algorithm("greedy")(problem)
            )
            if joint.objective <= decoupled + 1e-9:
                wins += 1
        assert wins >= trials - 1
