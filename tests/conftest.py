"""Shared fixtures for the test suite.

Fixtures produce *small* instances so the full suite stays fast; the
benchmark harness covers realistic scales.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Assignment, ClientAssignmentProblem
from repro.datasets.synthetic import small_world_latencies
from repro.net.latency import LatencyMatrix
from repro.placement import random_placement


@pytest.fixture
def tiny_matrix() -> LatencyMatrix:
    """A fixed 5-node symmetric matrix with easily hand-checked values."""
    d = np.array(
        [
            [0.0, 2.0, 4.0, 6.0, 8.0],
            [2.0, 0.0, 3.0, 5.0, 7.0],
            [4.0, 3.0, 0.0, 2.0, 5.0],
            [6.0, 5.0, 2.0, 0.0, 3.0],
            [8.0, 7.0, 5.0, 3.0, 0.0],
        ]
    )
    return LatencyMatrix(d)


@pytest.fixture
def small_matrix() -> LatencyMatrix:
    """A 40-node synthetic matrix (non-metric, symmetric)."""
    return small_world_latencies(40, seed=7)


@pytest.fixture
def medium_matrix() -> LatencyMatrix:
    """A 100-node synthetic matrix for slightly larger scenarios."""
    return small_world_latencies(100, seed=13)


@pytest.fixture
def small_problem(small_matrix: LatencyMatrix) -> ClientAssignmentProblem:
    """40 clients over 5 random servers."""
    servers = random_placement(small_matrix, 5, seed=3)
    return ClientAssignmentProblem(small_matrix, servers)


@pytest.fixture
def capacitated_problem(small_matrix: LatencyMatrix) -> ClientAssignmentProblem:
    """40 clients over 5 servers with capacity 12 each."""
    servers = random_placement(small_matrix, 5, seed=3)
    return ClientAssignmentProblem(small_matrix, servers, capacities=12)


@pytest.fixture
def tiny_problem(tiny_matrix: LatencyMatrix) -> ClientAssignmentProblem:
    """5 nodes: servers at {1, 3}, clients everywhere."""
    return ClientAssignmentProblem(tiny_matrix, servers=[1, 3])


def make_assignment(problem: ClientAssignmentProblem, mapping) -> Assignment:
    """Helper used across test modules."""
    return Assignment(problem, np.asarray(mapping, dtype=np.int64))
