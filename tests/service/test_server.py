"""The asyncio server: concurrency, frame robustness, lifecycle."""

import threading

import pytest

from repro.service.client import RemoteError, ServiceClient
from repro.service.protocol import encode_frame
from repro.service.server import ServerThread
from repro.service.workload import generate_events


@pytest.fixture()
def server():
    with ServerThread() as (host, port):
        yield host, port


def _open(client, **params):
    return client.open_session(nodes=40, n_servers=4, **params)["session"]


class TestBasics:
    def test_ping_over_wire(self, server):
        host, port = server
        with ServiceClient(host, port) as client:
            result = client.ping()
            assert result["pong"] is True

    def test_error_replies_carry_codes(self, server):
        host, port = server
        with ServiceClient(host, port) as client:
            with pytest.raises(RemoteError) as info:
                client.call("join", session="ghost", node=1)
            assert info.value.code == "unknown-session"

    def test_two_clients_share_sessions(self, server):
        host, port = server
        with ServiceClient(host, port) as a, ServiceClient(host, port) as b:
            sid = _open(a)
            # b sees and can drive the session a opened.
            rows = b.call("list_sessions")["sessions"]
            assert [r["session"] for r in rows] == [sid]
            result = b.call("join", session=sid, node=1)
            assert result["outcome"] == "assigned"
            assert a.query(sid)["n_clients"] == 1


class TestFrameRobustness:
    def test_malformed_json_keeps_connection_open(self, server):
        host, port = server
        with ServiceClient(host, port) as client:
            client.send_raw(b"{this is not json}\n")
            reply = client.recv()
            assert reply["ok"] is False
            assert reply["error"]["code"] == "bad-frame"
            # The connection survived: a normal request still works.
            assert client.ping()["pong"] is True

    def test_non_object_frame_rejected(self, server):
        host, port = server
        with ServiceClient(host, port) as client:
            client.send_raw(b"[1,2,3]\n")
            assert client.recv()["error"]["code"] == "bad-frame"
            assert client.ping()["pong"] is True

    def test_oversized_frame_rejected_and_stream_resyncs(self, server):
        host, port = server
        small_cap = 4096
        with ServerThread(max_frame_bytes=small_cap) as (host, port):
            with ServiceClient(host, port) as client:
                blob = {"op": "ping", "pad": "x" * (small_cap * 2)}
                client.send_raw(encode_frame(blob))
                reply = client.recv()
                assert reply["error"]["code"] == "frame-too-large"
                # Stream re-synchronized at the newline boundary.
                assert client.ping()["pong"] is True

    def test_batch_of_garbage_then_work(self, server):
        host, port = server
        with ServiceClient(host, port) as client:
            for payload in (b"\n", b"null\n", b'"x"\n', b"12\n"):
                client.send_raw(payload)
            replies = client.drain()
            assert all(r["ok"] is False for r in replies)
            sid = _open(client)
            assert client.call("join", session=sid, node=1)["outcome"] == "assigned"


class TestConcurrentSessions:
    N_CLIENTS = 6
    EVENTS_EACH = 400

    def test_concurrent_multi_session_stress(self, server):
        """Many threads, each its own connection + session + workload.

        Sessions are independent worlds sharing one server (and one
        cached matrix), so per-session results must equal a serial run
        of the same seeded workload.
        """
        host, port = server
        digests = {}
        errors = []

        def drive(worker: int) -> None:
            try:
                with ServiceClient(host, port) as client:
                    opened = client.open_session(
                        nodes=60, n_servers=5, capacity=8
                    )
                    sid = opened["session"]
                    servers = [int(s) for s in opened["servers"]]
                    events = generate_events(
                        60,
                        servers,
                        n_events=self.EVENTS_EACH,
                        seed=worker,
                        fault_every=97,
                    )
                    for start in range(0, len(events), 100):
                        client.batch(sid, events[start : start + 100])
                    digests[worker] = client.query(sid, "digest")["digest"]
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((worker, exc))

        threads = [
            threading.Thread(target=drive, args=(w,))
            for w in range(self.N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors, errors
        assert len(digests) == self.N_CLIENTS
        # Same seed -> same digest, regardless of interleaving: workers
        # with equal seeds would agree; here all differ, so check
        # against a serial re-run instead.
        with ServiceClient(host, port) as client:
            for worker in range(self.N_CLIENTS):
                opened = client.open_session(nodes=60, n_servers=5, capacity=8)
                sid = opened["session"]
                servers = [int(s) for s in opened["servers"]]
                events = generate_events(
                    60,
                    servers,
                    n_events=self.EVENTS_EACH,
                    seed=worker,
                    fault_every=97,
                )
                for start in range(0, len(events), 100):
                    client.batch(sid, events[start : start + 100])
                assert client.query(sid, "digest")["digest"] == digests[worker]
                client.close_session(sid)

    def test_interleaved_requests_are_totally_ordered(self, server):
        # Two connections hammering ONE session: every event gets a
        # distinct, gapless sequence number.
        host, port = server
        with ServiceClient(host, port) as a, ServiceClient(host, port) as b:
            sid = _open(a, capacity=None)
            seen = []
            lock = threading.Lock()

            def drive(client, nodes):
                for node in nodes:
                    join = client.call("join", session=sid, node=node)
                    leave = client.call("leave", session=sid, node=node)
                    with lock:
                        seen.extend([join["seq"], leave["seq"]])

            t1 = threading.Thread(target=drive, args=(a, range(1, 16)))
            t2 = threading.Thread(target=drive, args=(b, range(16, 31)))
            t1.start(); t2.start()
            t1.join(30); t2.join(30)
            assert sorted(seen) == list(range(2, 62))


class TestLifecycle:
    def test_server_thread_restart_rejected(self):
        st = ServerThread()
        st.start()
        with pytest.raises(RuntimeError):
            st.start()
        st.stop()
        st.stop()  # idempotent

    def test_owned_service_closed_on_stop(self):
        st = ServerThread()
        host, port = st.start()
        with ServiceClient(host, port) as client:
            _open(client)
        st.stop()
        assert st.server.service._closed
