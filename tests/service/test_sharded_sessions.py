"""Sharded sessions over the wire: equivalence, fault rejection, config."""

import numpy as np
import pytest

from repro.service.core import AssignmentService, SessionConfig


@pytest.fixture()
def service():
    with AssignmentService() as svc:
        yield svc


def _open(service, *, shards, session=None, **params):
    request = {
        "op": "open_session",
        "nodes": 60,
        "n_servers": 6,
        "shards": shards,
        **params,
    }
    if session is not None:
        request["session"] = session
    reply = service.handle(request)
    assert reply["ok"], reply
    return reply["result"]["session"]


def _trajectory(seed=23, n_events=60, nodes=60):
    rng = np.random.default_rng(seed)
    connected: list = []
    events = []
    for _ in range(n_events):
        candidates = [n for n in range(nodes) if n not in connected]
        if connected and (rng.random() < 0.3 or not candidates):
            node = connected.pop(int(rng.integers(len(connected))))
            events.append(("leave", node))
        else:
            node = candidates[int(rng.integers(len(candidates)))]
            events.append(("join", node))
            connected.append(node)
    return events


def test_sharded_session_matches_unsharded_over_the_wire(service):
    """Same nodes, seeds and event sequence: a shards=4 session must
    report identical servers, D values and outcomes as shards=1."""
    flat = _open(service, shards=1, session="flat")
    sharded = _open(service, shards=4, session="sharded")
    for op, node in _trajectory():
        a = service.handle({"op": op, "session": flat, "node": node})
        b = service.handle({"op": op, "session": sharded, "node": node})
        assert a["ok"] and b["ok"], (a, b)
        assert a["result"]["outcome"] == b["result"]["outcome"]
        assert a["result"]["d"] == b["result"]["d"]  # hex-exact
        assert a["result"].get("server") == b["result"].get("server")
    stats_a = service.handle(
        {"op": "query", "session": flat, "what": "stats"}
    )["result"]
    stats_b = service.handle(
        {"op": "query", "session": sharded, "what": "stats"}
    )["result"]
    assert stats_a["loads"] == stats_b["loads"]
    assert stats_a["d"] == stats_b["d"]
    assert stats_a["n_clients"] == stats_b["n_clients"]


def test_fault_events_rejected_on_sharded_sessions(service):
    sid = _open(service, shards=2)
    service.handle({"op": "join", "session": sid, "node": 1})
    for request in (
        {"op": "crash", "session": sid, "server": 0},
        {"op": "recover", "session": sid, "server": 0},
        {"op": "partition", "session": sid, "servers": [1]},
        {"op": "heal", "session": sid, "servers": [1]},
    ):
        reply = service.handle(request)
        assert not reply["ok"]
        assert reply["error"]["code"] == "session-state"
        assert "shards=1" in reply["error"]["message"]
    # The rejection changed nothing: the client is still connected.
    stats = service.handle(
        {"op": "query", "session": sid, "what": "stats"}
    )["result"]
    assert stats["n_clients"] == 1
    assert stats["n_usable"] == 6


def test_sharded_sessions_are_volatile_only(service):
    reply = service.handle(
        {
            "op": "open_session",
            "nodes": 60,
            "n_servers": 6,
            "shards": 2,
            "durability": "wal",
        }
    )
    assert not reply["ok"]
    assert reply["error"]["code"] == "invalid-parameter"
    assert "volatile" in reply["error"]["message"]


def test_sharded_queries_and_rebalance(service):
    sid = _open(service, shards=4)
    for node in range(10):
        service.handle({"op": "join", "session": sid, "node": node})
    digest = service.handle(
        {"op": "query", "session": sid, "what": "digest"}
    )["result"]
    assert len(digest["digest"]) == 64
    d = service.handle({"op": "query", "session": sid, "what": "d"})["result"]
    assert d["d_ms"] > 0.0
    health = service.handle(
        {"op": "query", "session": sid, "what": "health"}
    )["result"]
    assert health["health"] == "healthy"
    rebalance = service.handle(
        {"op": "rebalance", "session": sid, "max_moves": 8}
    )
    assert rebalance["ok"], rebalance
    assert rebalance["result"]["moves"] >= 0


def test_sharded_batch_round_trip(service):
    sid = _open(service, shards=2)
    events = [
        {"op": "join", "node": 1},
        {"op": "join", "node": 2},
        {"op": "leave", "node": 1},
        {"op": "crash", "server": 0},  # rejected inline, not fatally
    ]
    reply = service.handle({"op": "batch", "session": sid, "events": events})
    assert reply["ok"], reply
    results = reply["result"]["results"]
    assert results[0]["outcome"] == "assigned"
    assert results[2]["outcome"] == "left"
    assert results[3].get("error", {}).get("code") == "session-state"


def test_config_round_trips_shards(service):
    sid = _open(service, shards=4)
    reply = service.handle({"op": "query", "session": sid, "what": "config"})
    config = reply["result"]["config"]
    assert config["shards"] == 4
    rebuilt = SessionConfig.from_dict(config)
    assert rebuilt.online.shards == 4


def test_close_session_final_stats(service):
    sid = _open(service, shards=2)
    service.handle({"op": "join", "session": sid, "node": 4})
    reply = service.handle({"op": "close_session", "session": sid})
    assert reply["ok"], reply
    assert reply["result"]["final"]["n_clients"] == 1
