"""AssignmentService core: sessions, dispatch, error codes, queries."""

import pytest

from repro.algorithms.online import OnlineConfig
from repro.errors import BadRequestError
from repro.resilience.runtime import DurabilityConfig
from repro.service.core import AssignmentService, SessionConfig


@pytest.fixture()
def service():
    with AssignmentService() as svc:
        yield svc


@pytest.fixture()
def small_config():
    return SessionConfig(nodes=40, n_servers=4, online=OnlineConfig(capacity=6))


def _open(service, **params):
    reply = service.handle({"op": "open_session", "nodes": 40, "n_servers": 4, **params})
    assert reply["ok"], reply
    return reply["result"]["session"]


class TestSessionLifecycle:
    def test_ping(self, service):
        reply = service.handle({"id": 1, "op": "ping"})
        assert reply["ok"] and reply["result"]["pong"] is True
        assert reply["id"] == 1

    def test_open_returns_placement_and_fingerprint(self, service):
        reply = service.handle({"op": "open_session", "nodes": 40, "n_servers": 4})
        result = reply["result"]
        assert result["session"] == "s1"
        assert len(result["servers"]) == 4
        assert result["matrix_fingerprint"]
        assert result["durability"] == "off"
        assert result["wal"] is None

    def test_session_ids_monotonic(self, service):
        assert _open(service) == "s1"
        assert _open(service) == "s2"
        service.handle({"op": "close_session", "session": "s1"})
        assert _open(service) == "s3"

    def test_named_session_and_duplicate_rejected(self, service):
        reply = service.handle(
            {"op": "open_session", "session": "alpha", "nodes": 40, "n_servers": 4}
        )
        assert reply["result"]["session"] == "alpha"
        dup = service.handle(
            {"op": "open_session", "session": "alpha", "nodes": 40, "n_servers": 4}
        )
        assert not dup["ok"]
        assert dup["error"]["code"] == "session-state"

    def test_close_returns_final_stats(self, service):
        sid = _open(service)
        service.handle({"op": "join", "session": sid, "node": 1})
        reply = service.handle({"op": "close_session", "session": sid})
        assert reply["result"]["closed"] == sid
        assert reply["result"]["final"]["events"] == 1

    def test_list_sessions(self, service):
        _open(service)
        _open(service)
        reply = service.handle({"op": "list_sessions"})
        rows = reply["result"]["sessions"]
        assert [r["session"] for r in rows] == ["s1", "s2"]
        assert all(r["health"] == "healthy" for r in rows)

    def test_wal_session_has_wal_path(self, service):
        reply = service.handle(
            {"op": "open_session", "nodes": 40, "n_servers": 4, "durability": "wal"}
        )
        assert reply["result"]["durability"] == "wal"
        assert reply["result"]["wal"].endswith("events.wal")

    def test_matrix_cache_shared_across_sessions(self, service, small_config):
        first = service.open_session(small_config)
        second = service.open_session(small_config)
        assert first.matrix is second.matrix


class TestErrorReplies:
    def test_unknown_session(self, service):
        reply = service.handle({"op": "join", "session": "nope", "node": 1})
        assert not reply["ok"]
        assert reply["error"]["code"] == "unknown-session"

    def test_unknown_op(self, service):
        reply = service.handle({"op": "frobnicate"})
        assert reply["error"]["code"] == "unknown-op"

    def test_missing_op(self, service):
        reply = service.handle({"id": 4})
        assert reply["error"]["code"] == "bad-request"
        assert reply["id"] == 4

    def test_non_dict_request(self, service):
        reply = service.handle(["not", "a", "dict"])
        assert reply["error"]["code"] == "bad-request"

    def test_bad_param_types(self, service):
        sid = _open(service)
        assert (
            service.handle({"op": "join", "session": sid, "node": "x"})["error"]["code"]
            == "bad-request"
        )
        assert (
            service.handle({"op": "partition", "session": sid, "servers": []})[
                "error"
            ]["code"]
            == "bad-request"
        )

    def test_double_join_is_invalid_assignment(self, service):
        sid = _open(service)
        service.handle({"op": "join", "session": sid, "node": 1})
        reply = service.handle({"op": "join", "session": sid, "node": 1})
        assert reply["error"]["code"] == "invalid-assignment"

    def test_crash_down_server_is_invalid_parameter(self, service):
        sid = _open(service)
        service.handle({"op": "crash", "session": sid, "server": 0})
        reply = service.handle({"op": "crash", "session": sid, "server": 0})
        assert reply["error"]["code"] == "invalid-parameter"

    def test_unknown_session_parameter_rejected(self, service):
        reply = service.handle({"op": "open_session", "bogus_knob": 3})
        assert reply["error"]["code"] == "bad-request"
        assert "bogus_knob" in reply["error"]["message"]

    def test_handle_never_raises(self, service):
        # Every reply is an envelope, even for garbage.
        for request in (None, 42, {"op": None}, {"op": []}, {}):
            reply = service.handle(request)
            assert reply["ok"] is False


class TestEventsAndQueries:
    def test_join_assigns_to_server(self, service):
        sid = _open(service)
        reply = service.handle({"op": "join", "session": sid, "node": 2})
        result = reply["result"]
        assert result["outcome"] == "assigned"
        assert isinstance(result["server"], int)
        assert result["clients"] == 1
        assert result["health"] == "healthy"
        assert set(result) >= {"op", "outcome", "d", "clients", "health", "seq"}

    def test_leave_outcomes(self, service):
        sid = _open(service)
        service.handle({"op": "join", "session": sid, "node": 2})
        assert (
            service.handle({"op": "leave", "session": sid, "node": 2})["result"][
                "outcome"
            ]
            == "left"
        )
        assert (
            service.handle({"op": "leave", "session": sid, "node": 2})["result"][
                "outcome"
            ]
            == "absent"
        )

    def test_degraded_join_reply_is_structured(self, service):
        # Crash all but one server, then exhaust it: joins must surface
        # queued/rejected outcomes, not exceptions.
        reply = service.handle(
            {"op": "open_session", "nodes": 40, "n_servers": 2, "capacity": 1,
             "max_backlog": 2}
        )
        sid = reply["result"]["session"]
        service.handle({"op": "crash", "session": sid, "server": 0})
        outcomes = []
        for node in (1, 2, 3, 4, 5):
            result = service.handle({"op": "join", "session": sid, "node": node})
            assert result["ok"], result
            outcomes.append(result["result"]["outcome"])
        assert "queued" in outcomes or "rejected" in outcomes
        health = service.handle({"op": "query", "session": sid, "what": "health"})
        assert health["result"]["health"] in ("degraded", "recovering")
        backlog = service.handle({"op": "query", "session": sid, "what": "backlog"})
        assert isinstance(backlog["result"]["backlog"], list)

    def test_crash_recover_cycle(self, service):
        sid = _open(service)
        for node in range(1, 6):
            service.handle({"op": "join", "session": sid, "node": node})
        crash = service.handle({"op": "crash", "session": sid, "server": 0})
        assert crash["result"]["outcome"] == "crashed"
        assert crash["result"]["evacuated"] >= 0
        recover = service.handle({"op": "recover", "session": sid, "server": 0})
        assert recover["result"]["outcome"] == "recovered"

    def test_partition_heal_cycle(self, service):
        sid = _open(service)
        part = service.handle({"op": "partition", "session": sid, "servers": [1]})
        assert part["result"]["outcome"] == "partitioned"
        heal = service.handle({"op": "heal", "session": sid, "servers": [1]})
        assert heal["result"]["outcome"] == "healed"

    def test_query_d_and_digest_and_stats(self, service):
        sid = _open(service)
        service.handle({"op": "join", "session": sid, "node": 3})
        d = service.handle({"op": "query", "session": sid, "what": "d"})["result"]
        assert d["d_ms"] >= 0.0 and isinstance(d["d"], str)
        digest = service.handle({"op": "query", "session": sid, "what": "digest"})[
            "result"
        ]
        assert len(digest["digest"]) == 64
        stats = service.handle({"op": "query", "session": sid, "what": "stats"})[
            "result"
        ]
        assert stats["n_clients"] == 1
        assert stats["events"] == 1

    def test_query_interactivity(self, service):
        sid = _open(service)
        empty = service.handle(
            {"op": "query", "session": sid, "what": "interactivity"}
        )["result"]
        assert empty["lower_bound_ms"] is None
        service.handle({"op": "join", "session": sid, "node": 3})
        service.handle({"op": "join", "session": sid, "node": 5})
        result = service.handle(
            {"op": "query", "session": sid, "what": "interactivity"}
        )["result"]
        assert result["lower_bound_ms"] > 0
        assert result["normalized"] >= 1.0 - 1e-9

    def test_query_config_roundtrips(self, service, small_config):
        session = service.open_session(small_config)
        reply = service.handle(
            {"op": "query", "session": session.id, "what": "config"}
        )
        rebuilt = SessionConfig.from_dict(reply["result"]["config"])
        assert rebuilt == small_config

    def test_unknown_query(self, service):
        sid = _open(service)
        reply = service.handle({"op": "query", "session": sid, "what": "nope"})
        assert reply["error"]["code"] == "bad-request"


class TestBatch:
    def test_batch_applies_in_order(self, service):
        sid = _open(service)
        events = [
            {"op": "join", "node": 1},
            {"op": "join", "node": 2},
            {"op": "leave", "node": 1},
        ]
        reply = service.handle({"op": "batch", "session": sid, "events": events})
        results = reply["result"]["results"]
        assert [r["outcome"] for r in results] == ["assigned", "assigned", "left"]
        assert [r["seq"] for r in results] == [2, 3, 4]

    def test_batch_tolerates_bad_event_inline(self, service):
        sid = _open(service)
        events = [
            {"op": "join", "node": 1},
            {"op": "join", "node": 1},  # duplicate: inline error
            {"op": "join", "node": 2},
        ]
        reply = service.handle({"op": "batch", "session": sid, "events": events})
        results = reply["result"]["results"]
        assert results[0]["outcome"] == "assigned"
        assert results[1]["error"]["code"] == "invalid-assignment"
        assert results[2]["outcome"] == "assigned"

    def test_batch_rejects_non_event_ops(self, service):
        sid = _open(service)
        reply = service.handle(
            {"op": "batch", "session": sid, "events": [{"op": "close_session"}]}
        )
        assert reply["error"]["code"] == "bad-request"

    def test_batch_needs_event_list(self, service):
        sid = _open(service)
        reply = service.handle({"op": "batch", "session": sid, "events": "nope"})
        assert reply["error"]["code"] == "bad-request"


class TestServiceLifecycle:
    def test_close_is_idempotent_and_final(self):
        svc = AssignmentService()
        svc.handle({"op": "open_session", "nodes": 40, "n_servers": 4})
        svc.close()
        svc.close()
        reply = svc.handle({"op": "ping"})
        assert reply["ok"]  # ping still works
        reply = svc.handle({"op": "open_session", "nodes": 40, "n_servers": 4})
        assert reply["error"]["code"] == "session-state"

    def test_wal_base_dir_cleanup(self, tmp_path):
        base = tmp_path / "svc"
        with AssignmentService(base_dir=str(base)) as svc:
            reply = svc.handle(
                {"op": "open_session", "nodes": 40, "n_servers": 4,
                 "durability": "wal"}
            )
            assert reply["ok"]
            assert (base / "s1" / "events.wal").exists()
        # Caller-provided base dir is preserved on close.
        assert base.exists()

    def test_default_config_merge(self):
        default = SessionConfig(nodes=40, n_servers=4)
        with AssignmentService(default_config=default) as svc:
            reply = svc.handle({"op": "open_session", "capacity": 3})
            result = reply["result"]
            session = svc.session(result["session"])
            assert session.config.nodes == 40
            assert session.config.online.capacity == 3
