"""Wire framing: canonical encoding, size caps, malformed frames."""

import json

import pytest

from repro.errors import (
    BadRequestError,
    FrameTooLargeError,
    ProtocolError,
    error_code,
    error_codes,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    OPS,
    decode_frame,
    encode_frame,
    error_reply,
    ok_reply,
    parse_request,
)


class TestEncodeDecode:
    def test_roundtrip(self):
        frame = {"op": "join", "id": 7, "node": 3}
        assert decode_frame(encode_frame(frame)) == frame

    def test_canonical_bytes(self):
        # Key order must not matter: canonical encoding sorts keys.
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b == b'{"a":2,"b":1}\n'

    def test_newline_terminated(self):
        assert encode_frame({}).endswith(b"\n")

    def test_compact_no_spaces(self):
        assert b" " not in encode_frame({"a": [1, 2], "b": {"c": 3}})

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"{not json}\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"[1,2,3]\n")
        with pytest.raises(ProtocolError):
            decode_frame(b'"just a string"\n')

    def test_invalid_utf8_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b'\xff\xfe{"op":"ping"}\n')

    def test_oversized_frame_rejected(self):
        big = encode_frame({"op": "x", "blob": "y" * MAX_FRAME_BYTES})
        with pytest.raises(FrameTooLargeError):
            decode_frame(big)

    def test_custom_cap(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(FrameTooLargeError):
            decode_frame(frame, max_bytes=4)
        assert decode_frame(frame, max_bytes=1024) == {"op": "ping"}


class TestRequestValidation:
    def test_missing_op(self):
        with pytest.raises(BadRequestError):
            parse_request({"id": 1})

    def test_non_string_op(self):
        with pytest.raises(BadRequestError):
            parse_request({"op": 42})

    def test_empty_op(self):
        with pytest.raises(BadRequestError):
            parse_request({"op": ""})

    def test_valid_passthrough(self):
        frame = {"op": "ping", "id": 9}
        assert parse_request(frame) is frame


class TestReplies:
    def test_ok_reply_shape(self):
        reply = ok_reply(5, {"pong": True})
        assert reply == {"id": 5, "ok": True, "result": {"pong": True}}

    def test_error_reply_from_exception(self):
        reply = error_reply(2, ProtocolError("bad"))
        assert reply["ok"] is False
        assert reply["id"] == 2
        assert reply["error"]["code"] == "bad-frame"
        assert reply["error"]["message"] == "bad"

    def test_error_reply_explicit_code(self):
        reply = error_reply(None, code="frame-too-large", message="nope")
        assert reply["error"] == {"code": "frame-too-large", "message": "nope"}

    def test_error_reply_needs_something(self):
        with pytest.raises(ValueError):
            error_reply(1)

    def test_error_codes_are_stable_kebab_case(self):
        codes = error_codes()
        assert "unknown-session" in codes
        assert "frame-too-large" in codes
        for code in codes:
            assert code == code.lower()
            assert " " not in code

    def test_error_code_for_foreign_exception(self):
        assert error_code(ValueError("x")) == "internal-error"

    def test_ops_table_includes_lifecycle_and_events(self):
        for op in ("ping", "open_session", "batch", "join", "query"):
            assert op in OPS

    def test_reply_json_serializable(self):
        reply = error_reply(3, FrameTooLargeError("big"))
        assert json.loads(encode_frame(reply)[:-1]) == reply
