"""The output-equivalence contract, enforced.

The same seeded event sequence must produce **byte-identical**
assignment trajectories and state digests through every execution
path:

- the raw library stack (:mod:`repro.service.replay` — no service
  code),
- the in-process service (``AssignmentService.handle``),
- the wire protocol (TCP JSON-lines through a live server),

and at **both** durability modes (``off`` and ``wal`` — the WAL-backed
runtime must not perturb a single reply byte). These are the
acceptance tests of the service redesign: if any layer drifts, the
canonical-JSON digests diverge and the diff points at the first
unequal event.
"""

import json

import pytest

from repro.algorithms.online import OnlineConfig
from repro.resilience.runtime import DurabilityConfig, DurableRuntime
from repro.service.client import ServiceClient
from repro.service.core import AssignmentService, SessionConfig
from repro.service.replay import replay_events, trajectory_digest
from repro.service.server import ServerThread
from repro.service.workload import generate_events

NODES = 100
EVENTS_10K = 10_000

CONFIG_OFF = SessionConfig(
    nodes=NODES,
    n_servers=8,
    online=OnlineConfig(capacity=16),
    durability=DurabilityConfig(mode="off"),
    max_backlog=48,
)


def _canonical(trajectory):
    return json.dumps(list(trajectory), sort_keys=True, separators=(",", ":"))


def _events(servers, n_events=EVENTS_10K, seed=42):
    return generate_events(
        NODES,
        servers,
        n_events=n_events,
        seed=seed,
        fault_every=211,
        partition_every=307,
        rebalance_every=401,
    )


def _service_run(config, events, base_dir=None):
    """Drive the events through AssignmentService.handle in-process."""
    with AssignmentService(base_dir=base_dir) as svc:
        session = svc.open_session(config)
        reply = svc.handle(
            {"op": "batch", "session": session.id, "events": events}
        )
        assert reply["ok"], reply
        digest = svc.handle(
            {"op": "query", "session": session.id, "what": "digest"}
        )["result"]["digest"]
        return reply["result"]["results"], digest, svc.matrix_for(config)


@pytest.fixture(scope="module")
def library_baseline():
    """The reference: raw manager+failover+degrade, no service code."""
    config = CONFIG_OFF
    matrix = config.build_matrix()
    servers = config.resolve_servers(matrix)
    events = _events(servers)
    result = replay_events(matrix, config, events)
    return config, events, result


class TestInProcessEquivalence:
    def test_10k_events_durability_off(self, library_baseline):
        config, events, lib = library_baseline
        traj, digest, _ = _service_run(config, events)
        assert digest == lib.digest
        assert _canonical(traj) == _canonical(lib.trajectory)

    def test_10k_events_durability_wal(self, library_baseline, tmp_path):
        config, events, lib = library_baseline
        wal_config = SessionConfig(
            **{
                **_config_kwargs(config),
                "durability": DurabilityConfig(mode="wal", checkpoint_every=500),
            }
        )
        traj, digest, matrix = _service_run(
            wal_config, events, base_dir=str(tmp_path)
        )
        # WAL-backed replies and state are byte-identical to the
        # durability-free library path...
        assert digest == lib.digest
        assert _canonical(traj) == _canonical(lib.trajectory)
        # ...and the on-disk state independently recovers to the same
        # digest (checkpoint + WAL-tail re-execution).
        recovered = DurableRuntime.recover(str(tmp_path / "s1"), matrix)
        try:
            assert recovered.digest() == lib.digest
        finally:
            recovered.close()

    def test_trajectory_digest_matches_full_compare(self, library_baseline):
        config, events, lib = library_baseline
        traj, _, _ = _service_run(config, events)
        assert trajectory_digest(traj) == trajectory_digest(lib.trajectory)

    def test_outcome_mix_is_nontrivial(self, library_baseline):
        # Guard against a vacuous pass: the seeded workload must
        # actually exercise joins, leaves, faults and degraded mode.
        _, _, lib = library_baseline
        for outcome in ("assigned", "left", "crashed", "recovered",
                        "partitioned", "healed", "rebalanced"):
            assert lib.outcomes.get(outcome, 0) > 0, lib.outcomes


class TestWireEquivalence:
    def test_wire_matches_library(self, library_baseline):
        config, events, lib = library_baseline
        with ServerThread() as (host, port):
            with ServiceClient(host, port) as client:
                opened = client.open_session(**config.to_dict())
                session = opened["session"]
                trajectory = []
                for start in range(0, len(events), 500):
                    trajectory.extend(
                        client.batch(session, events[start : start + 500])
                    )
                digest = client.query(session, "digest")["digest"]
        assert digest == lib.digest
        assert _canonical(trajectory) == _canonical(lib.trajectory)

    def test_wire_wal_matches_library(self, library_baseline, tmp_path):
        config, events, lib = library_baseline
        params = {
            **config.to_dict(),
            "durability": "wal",
            "checkpoint_every": 500,
        }
        service = AssignmentService(base_dir=str(tmp_path))
        with ServerThread(service) as (host, port):
            with ServiceClient(host, port) as client:
                opened = client.open_session(**params)
                session = opened["session"]
                trajectory = []
                for start in range(0, len(events), 500):
                    trajectory.extend(
                        client.batch(session, events[start : start + 500])
                    )
                digest = client.query(session, "digest")["digest"]
        assert digest == lib.digest
        assert _canonical(trajectory) == _canonical(lib.trajectory)

    def test_pipelined_wire_replies_in_order(self, library_baseline):
        # Pipelining (many batches in flight) must not reorder
        # replies or perturb a byte.
        config, events, lib = library_baseline
        subset = events[:2000]
        with ServerThread() as (host, port):
            with ServiceClient(host, port) as client:
                opened = client.open_session(**config.to_dict())
                session = opened["session"]
                ids = [
                    client.send(
                        "batch",
                        session=session,
                        events=subset[start : start + 250],
                    )
                    for start in range(0, len(subset), 250)
                ]
                replies = client.drain()
        assert [r["id"] for r in replies] == ids
        trajectory = []
        for reply in replies:
            trajectory.extend(ServiceClient.unwrap(reply)["results"])
        assert _canonical(trajectory) == _canonical(lib.trajectory[:2000])


def _config_kwargs(config: SessionConfig) -> dict:
    return {
        "nodes": config.nodes,
        "kind": config.kind,
        "matrix_seed": config.matrix_seed,
        "n_servers": config.n_servers,
        "placement": config.placement,
        "placement_seed": config.placement_seed,
        "servers": config.servers,
        "online": config.online,
        "durability": config.durability,
        "max_backlog": config.max_backlog,
        "d_budget": config.d_budget,
        "readmit_moves": config.readmit_moves,
        "shed_policy": config.shed_policy,
    }
