"""Tests for the content-keyed lower-bound cache."""

import numpy as np
import pytest

from repro.core import ClientAssignmentProblem, interaction_lower_bound
from repro.datasets import planet_instance
from repro.net.latency import LatencyMatrix
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel import (
    CacheStats,
    LowerBoundCache,
    cached_lower_bound,
    lb_cache_stats_snapshot,
    lower_bound_cache,
)


def _problem(seed=0, n=20, s=4):
    rng = np.random.default_rng(seed)
    sym = rng.uniform(1.0, 50.0, size=(n, n))
    sym = (sym + sym.T) / 2.0
    np.fill_diagonal(sym, 0.0)
    matrix = LatencyMatrix(sym)
    servers = np.arange(s, dtype=np.int64)
    return matrix, ClientAssignmentProblem(matrix, servers)


class TestLowerBoundCache:
    def test_matches_direct_computation(self):
        _, problem = _problem()
        cache = LowerBoundCache()
        assert cache.lower_bound(problem) == interaction_lower_bound(problem)

    def test_hit_on_repeat(self):
        _, problem = _problem()
        cache = LowerBoundCache()
        a = cache.lower_bound(problem)
        b = cache.lower_bound(problem)
        assert a == b
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_content_keyed_across_objects(self):
        # Two distinct matrix objects with identical bytes share an entry.
        matrix_a, problem_a = _problem(seed=3)
        matrix_b = LatencyMatrix(matrix_a.values.copy())
        problem_b = ClientAssignmentProblem(matrix_b, problem_a.servers)
        cache = LowerBoundCache()
        cache.lower_bound(problem_a)
        cache.lower_bound(problem_b)
        assert cache.stats == cache.stats.__class__(hits=1, misses=1)

    def test_block_size_in_key(self):
        _, problem = _problem()
        cache = LowerBoundCache()
        cache.lower_bound(problem, block_size=256)
        cache.lower_bound(problem, block_size=64)
        assert cache.stats.misses == 2

    def test_server_and_client_sets_in_key(self):
        matrix, problem = _problem(n=20, s=4)
        other_servers = np.arange(4, 8, dtype=np.int64)
        other = ClientAssignmentProblem(matrix, other_servers)
        cache = LowerBoundCache()
        cache.lower_bound(problem)
        cache.lower_bound(other)
        assert cache.stats.misses == 2

    def test_capacity_ignored(self):
        _, problem = _problem()
        cache = LowerBoundCache()
        a = cache.lower_bound(problem)
        b = cache.lower_bound(problem.with_capacity(7))
        assert a == b
        assert cache.stats.hits == 1

    def test_provider_identity_fallback(self):
        inst = planet_instance(30, 4, seed=1)
        problem = ClientAssignmentProblem(
            inst.provider, inst.servers, inst.clients
        )
        cache = LowerBoundCache()
        a = cache.lower_bound(problem)
        b = cache.lower_bound(problem)
        assert a == b
        assert cache.stats.hits == 1

    def test_coordinate_provider_content_keyed(self):
        # Two independently built planet providers with the same seed
        # share entries via CoordinateProvider.content_token().
        first = planet_instance(30, 4, seed=1)
        second = planet_instance(30, 4, seed=1)
        assert first.provider is not second.provider
        cache = LowerBoundCache()
        a = cache.lower_bound(
            ClientAssignmentProblem(first.provider, first.servers, first.clients)
        )
        b = cache.lower_bound(
            ClientAssignmentProblem(
                second.provider, second.servers, second.clients
            )
        )
        assert a == b
        assert cache.stats == CacheStats(hits=1, misses=1, evictions=0)

    def test_distinct_coordinate_content_not_shared(self):
        first = planet_instance(30, 4, seed=1)
        second = planet_instance(30, 4, seed=2)
        cache = LowerBoundCache()
        cache.lower_bound(
            ClientAssignmentProblem(first.provider, first.servers, first.clients)
        )
        cache.lower_bound(
            ClientAssignmentProblem(
                second.provider, second.servers, second.clients
            )
        )
        assert cache.stats.misses == 2

    def test_eviction(self):
        cache = LowerBoundCache(maxsize=1)
        _, p1 = _problem(seed=1)
        _, p2 = _problem(seed=2)
        cache.lower_bound(p1)
        cache.lower_bound(p2)
        cache.lower_bound(p1)  # evicted, recomputed
        assert cache.stats.evictions >= 1
        assert cache.stats.misses == 3

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LowerBoundCache(maxsize=0)

    def test_registry_counters(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            cache = LowerBoundCache()
            _, problem = _problem()
            cache.lower_bound(problem)
            cache.lower_bound(problem)
        snap = reg.snapshot()
        assert snap["counters"]["parallel.lb_cache.hits"] == 1
        assert snap["counters"]["parallel.lb_cache.misses"] == 1


class TestProcessGlobal:
    def test_cached_lower_bound_uses_global(self):
        _, problem = _problem(seed=9)
        before = lb_cache_stats_snapshot()
        a = cached_lower_bound(problem)
        b = cached_lower_bound(problem)
        delta = lb_cache_stats_snapshot() - before
        assert a == b == interaction_lower_bound(problem)
        assert delta.hits >= 1
        assert lower_bound_cache() is lower_bound_cache()
