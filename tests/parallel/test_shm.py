"""Shared-memory matrix publication and attachment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import small_world_latencies
from repro.errors import InvalidLatencyMatrixError
from repro.net.latency import LatencyMatrix
from repro.parallel.shm import (
    SharedMatrixHandle,
    attach_matrix,
    publish_matrix,
    shared_memory_available,
)

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="no usable shared memory here"
)


@needs_shm
def test_publish_and_attach_round_trip():
    matrix = small_world_latencies(25, seed=3)
    with publish_matrix(matrix) as published:
        assert published.handle.is_shared
        assert published.handle.shape == (25, 25)
        attached = attach_matrix(published.handle)
        assert np.array_equal(attached.values, matrix.values)


@needs_shm
def test_attached_view_is_readonly_and_zero_copy():
    matrix = small_world_latencies(20, seed=4)
    with publish_matrix(matrix) as published:
        attached = attach_matrix(published.handle)
        assert not attached.values.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            attached.values[0, 1] = 999.0


@needs_shm
def test_attachment_is_cached_per_process():
    matrix = small_world_latencies(15, seed=5)
    with publish_matrix(matrix) as published:
        first = attach_matrix(published.handle)
        second = attach_matrix(published.handle)
        assert first is second


@needs_shm
def test_close_is_idempotent():
    matrix = small_world_latencies(10, seed=6)
    published = publish_matrix(matrix)
    published.close()
    published.close()  # second close is a no-op, not an error


def test_inline_fallback_round_trip():
    matrix = small_world_latencies(12, seed=7)
    with publish_matrix(matrix, prefer_shared=False) as published:
        handle = published.handle
        assert not handle.is_shared
        assert handle.inline is not None
        attached = attach_matrix(handle)
        assert np.array_equal(attached.values, matrix.values)
        assert not attached.values.flags.writeable


def test_handle_nbytes():
    handle = SharedMatrixHandle(shape=(100, 100), shm_name="x")
    assert handle.nbytes == 100 * 100 * 8


def test_empty_handle_rejected():
    handle = SharedMatrixHandle(shape=(3, 3))
    with pytest.raises(ValueError, match="neither"):
        attach_matrix(handle)


def test_wrap_readonly_requires_readonly_float64_square():
    values = np.zeros((4, 4))
    values.setflags(write=False)
    wrapped = LatencyMatrix.wrap_readonly(values)
    assert wrapped.values is values

    writable = np.zeros((4, 4))
    with pytest.raises(InvalidLatencyMatrixError):
        LatencyMatrix.wrap_readonly(writable)

    not_square = np.zeros((4, 3))
    not_square.setflags(write=False)
    with pytest.raises(InvalidLatencyMatrixError):
        LatencyMatrix.wrap_readonly(not_square)


@needs_shm
def test_float32_publishes_at_half_size():
    matrix = small_world_latencies(24, seed=7, dtype=np.float32)
    assert matrix.dtype == np.dtype(np.float32)
    with publish_matrix(matrix) as published:
        handle = published.handle
        assert handle.dtype == "float32"
        assert handle.np_dtype == np.dtype(np.float32)
        assert handle.nbytes == 24 * 24 * 4
        attached = attach_matrix(handle)
        assert attached.dtype == np.dtype(np.float32)
        assert np.array_equal(attached.values, matrix.values)


def test_inline_fallback_preserves_float32():
    matrix = small_world_latencies(12, seed=8, dtype=np.float32)
    with publish_matrix(matrix, prefer_shared=False) as published:
        assert not published.handle.is_shared
        assert published.handle.dtype == "float32"
        attached = attach_matrix(published.handle)
        assert attached.dtype == np.dtype(np.float32)
        assert np.array_equal(attached.values, matrix.values)


def test_handle_dtype_defaults_to_float64():
    handle = SharedMatrixHandle(shape=(10, 10), shm_name="x")
    assert handle.np_dtype == np.dtype(np.float64)
    assert handle.nbytes == 10 * 10 * 8
