"""Instance cache: keying, LRU bounds, capacity-base sharing, counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import interaction_lower_bound
from repro.datasets.synthetic import small_world_latencies
from repro.parallel.cache import (
    CacheStats,
    InstanceCache,
    instance_cache,
)


@pytest.fixture
def matrix():
    return small_world_latencies(30, seed=11)


def test_miss_then_hit(matrix):
    cache = InstanceCache()
    first = cache.instance(matrix, "random", 5, 7)
    second = cache.instance(matrix, "random", 5, 7)
    assert first is second
    assert cache.stats == CacheStats(hits=1, misses=1)


def test_distinct_keys_distinct_entries(matrix):
    cache = InstanceCache()
    a = cache.instance(matrix, "random", 5, 7)
    b = cache.instance(matrix, "random", 5, 8)       # other seed
    c = cache.instance(matrix, "random", 6, 7)       # other size
    d = cache.instance(matrix, "k-center-a", 5, 7)   # other placement
    entries = [a, b, c, d]
    assert len({id(e) for e in entries}) == 4
    assert cache.stats.misses == 4


def test_cached_values_match_direct_construction(matrix):
    cache = InstanceCache()
    cached = cache.instance(matrix, "k-center-b", 6, 3)
    from repro.core import ClientAssignmentProblem
    from repro.placement import kcenter_b

    servers = kcenter_b(matrix, 6, seed=3)
    problem = ClientAssignmentProblem(matrix, servers)
    assert np.array_equal(cached.servers, servers)
    assert cached.lower_bound == pytest.approx(
        float(interaction_lower_bound(problem))
    )


def test_capacity_sweep_shares_base(matrix):
    """Fig. 10's pattern: one placement, many capacities — one build."""
    cache = InstanceCache()
    base = cache.instance(matrix, "random", 5, 7)
    capped_entries = [
        cache.instance(matrix, "random", 5, 7, capacity=c)
        for c in (8, 10, 20)
    ]
    for entry in capped_entries:
        assert entry.servers is base.servers
        assert entry.lower_bound == base.lower_bound
        assert entry.problem.capacities is not None
    # Base sharing counts as hits: placement + lower bound were reused.
    assert cache.stats == CacheStats(hits=3, misses=1)


def test_capacity_first_parks_base(matrix):
    """Asking for a capacitated instance first still caches the base."""
    cache = InstanceCache()
    capped = cache.instance(matrix, "random", 4, 2, capacity=8)
    assert cache.stats.misses == 1
    second = cache.instance(matrix, "random", 4, 2, capacity=12)
    assert cache.stats.hits == 1
    assert second.servers is capped.servers


def test_lru_eviction():
    cache = InstanceCache(maxsize=2)
    m = small_world_latencies(20, seed=1)
    cache.instance(m, "random", 4, 0)
    cache.instance(m, "random", 4, 1)
    cache.instance(m, "random", 4, 2)  # evicts seed 0
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    cache.instance(m, "random", 4, 0)  # rebuilt: it was evicted
    assert cache.stats.hits == 0


def test_unknown_placement_rejected(matrix):
    cache = InstanceCache()
    with pytest.raises(KeyError, match="unknown placement"):
        cache.instance(matrix, "nope", 5, 0)


def test_bad_maxsize_rejected():
    with pytest.raises(ValueError, match="maxsize"):
        InstanceCache(maxsize=0)


def test_clear_resets(matrix):
    cache = InstanceCache()
    cache.instance(matrix, "random", 5, 7)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats == CacheStats()


def test_stats_arithmetic():
    a = CacheStats(hits=3, misses=2, evictions=1)
    b = CacheStats(hits=1, misses=1, evictions=0)
    assert a + b == CacheStats(hits=4, misses=3, evictions=1)
    assert a - b == CacheStats(hits=2, misses=1, evictions=1)
    assert a.lookups == 5
    assert a.hit_rate == pytest.approx(0.6)
    assert CacheStats().hit_rate == 0.0


def test_process_global_cache_is_singleton():
    assert instance_cache() is instance_cache()


def test_backend_participates_in_the_key(matrix):
    """A numba trial must never share an entry with a numpy one — the
    key carries the kernel backend even though the built instance is
    backend-independent."""
    cache = InstanceCache()
    a = cache.instance(matrix, "random", 5, 7, backend="numpy")
    b = cache.instance(matrix, "random", 5, 7, backend="numba")
    c = cache.instance(matrix, "random", 5, 7, backend=None)
    assert len({id(e) for e in (a, b, c)}) == 3
    assert cache.stats.misses == 3
    assert cache.instance(matrix, "random", 5, 7, backend="numpy") is a
    assert cache.stats.hits == 1
    # Backend-distinct entries still describe the same servers.
    assert np.array_equal(a.servers, b.servers)


def test_dtype_participates_in_the_key(matrix):
    """float32 and float64 variants of one instance never alias, even
    if object ids were recycled across garbage collections."""
    cache = InstanceCache()
    f64 = cache.instance(matrix, "random", 5, 7)
    f32_matrix = matrix.astype(np.float32)
    f32 = cache.instance(f32_matrix, "random", 5, 7)
    assert f64 is not f32
    assert cache.stats.misses == 2
    assert f32.problem.matrix.dtype == np.dtype(np.float32)
    # The capacity sweep shares its base per dtype, not across dtypes.
    capped = cache.instance(f32_matrix, "random", 5, 7, capacity=9)
    assert capped.problem.matrix.dtype == np.dtype(np.float32)
