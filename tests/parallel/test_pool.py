"""TrialPool: serial/parallel equivalence, failure containment, stats."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets.synthetic import small_world_latencies
from repro.errors import TrialExecutionError
from repro.parallel import (
    TrialOutcome,
    TrialPool,
    resolve_workers,
    run_trials,
    successful_values,
)


# ----------------------------------------------------------------------
# Module-level trial functions (workers import them by qualified name)
# ----------------------------------------------------------------------
def _square(matrix, task):
    return task * task


def _matrix_row_sum(matrix, task):
    return float(matrix.values[task].sum())


def _fail_on_three(matrix, task):
    if task == 3:
        raise ValueError("three is right out")
    return task


def _fail_always(matrix, task):
    raise ValueError(f"no trial {task}")


def _flaky_until_marker(matrix, task):
    """Raises once, then succeeds: the marker file survives the retry."""
    index, marker = task
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("attempted")
        raise RuntimeError("first attempt always fails")
    return index


def _crash_until_marker(matrix, task):
    """Kills its worker process once, then succeeds on re-execution."""
    index, marker = task
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("attempted")
        os._exit(17)
    return index


def _poison(matrix, task):
    """A task that kills any worker that runs it, every time."""
    index, poisoned = task
    if index == poisoned:
        os._exit(23)
    return index


# ----------------------------------------------------------------------
def test_resolve_workers():
    assert resolve_workers(0) == 0
    assert resolve_workers(None) == 0
    assert resolve_workers("serial") == 0
    assert resolve_workers("2") == 2
    assert resolve_workers(3) == 3
    assert resolve_workers(-1) >= 1


def test_serial_map_preserves_order_and_values():
    with TrialPool(0) as pool:
        outcomes = pool.map_trials(_square, [3, 1, 4, 1, 5])
    assert [o.index for o in outcomes] == [0, 1, 2, 3, 4]
    assert [o.value for o in outcomes] == [9, 1, 16, 1, 25]
    assert all(o.ok and not o.retried for o in outcomes)
    assert pool.stats.n_trials == 5
    assert pool.stats.n_failed == 0


def test_parallel_matches_serial_results():
    tasks = list(range(23))
    with TrialPool(0) as pool:
        serial = pool.map_trials(_square, tasks)
    with TrialPool(2, chunk_size=3) as pool:
        parallel = pool.map_trials(_square, tasks)
    assert [o.value for o in serial] == [o.value for o in parallel]
    assert [o.index for o in parallel] == list(range(23))


def test_parallel_delivers_matrix_via_shared_memory():
    matrix = small_world_latencies(30, seed=5)
    tasks = list(range(matrix.n_nodes))
    expected = [float(matrix.values[i].sum()) for i in tasks]
    with TrialPool(2) as pool:
        outcomes = pool.map_trials(_matrix_row_sum, tasks, matrix=matrix)
    assert [o.value for o in outcomes] == expected


def test_empty_task_list():
    with TrialPool(2) as pool:
        assert pool.map_trials(_square, []) == []
    assert pool.stats.n_trials == 0


def test_exception_is_contained_and_retried_inline():
    with TrialPool(0) as pool:
        outcomes = pool.map_trials(_fail_on_three, [1, 2, 3, 4])
    ok = [o for o in outcomes if o.ok]
    bad = [o for o in outcomes if not o.ok]
    assert [o.value for o in ok] == [1, 2, 4]
    assert len(bad) == 1 and bad[0].index == 2
    assert bad[0].retried
    assert "ValueError" in bad[0].error
    assert pool.stats.n_failed == 1
    assert pool.stats.n_retried == 1


def test_transient_exception_recovers_on_in_place_retry(tmp_path):
    marker = str(tmp_path / "attempted")
    with TrialPool(0) as pool:
        outcomes = pool.map_trials(_flaky_until_marker, [(7, marker)])
    (outcome,) = outcomes
    assert outcome.ok and outcome.value == 7 and outcome.retried


def test_worker_crash_is_retried_then_isolated(tmp_path):
    """A worker killed mid-chunk costs a retry, not the sweep."""
    marker = str(tmp_path / "crashed-once")
    tasks = [(i, marker) for i in range(6)]
    with TrialPool(2, chunk_size=2) as pool:
        outcomes = pool.map_trials(_crash_until_marker, tasks)
    assert [o.index for o in outcomes] == list(range(6))
    assert all(o.ok for o in outcomes)
    assert [o.value for o in outcomes] == list(range(6))
    assert pool.stats.n_crashed_chunks >= 1
    assert pool.stats.n_failed == 0


def test_poison_task_reported_failed_not_fatal():
    """A task that always kills its worker fails alone; others succeed."""
    tasks = [(i, 4) for i in range(8)]
    with TrialPool(2, chunk_size=2) as pool:
        outcomes = pool.map_trials(_poison, tasks)
    assert [o.index for o in outcomes] == list(range(8))
    by_index = {o.index: o for o in outcomes}
    assert not by_index[4].ok
    assert "crashed" in by_index[4].error
    for i in range(8):
        if i != 4:
            assert by_index[i].ok and by_index[i].value == i
    assert pool.stats.n_failed == 1


def test_pool_rejects_use_after_close():
    pool = TrialPool(0)
    pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.map_trials(_square, [1])


def test_run_trials_without_pool_is_serial():
    outcomes = run_trials(_square, [2, 3])
    assert [o.value for o in outcomes] == [4, 9]


def test_successful_values_filters_and_raises():
    good = [TrialOutcome(index=0, value=1), TrialOutcome(index=1, value=2)]
    mixed = good + [TrialOutcome(index=2, error="boom")]
    assert successful_values(mixed, context="x") == [1, 2]
    assert successful_values([], context="x") == []
    with pytest.raises(TrialExecutionError, match="all 1 trial"):
        successful_values(
            [TrialOutcome(index=0, error="boom")], context="sweep point"
        )


def test_stats_describe_mentions_backend_and_cache():
    with TrialPool(0) as pool:
        pool.map_trials(_square, [1, 2])
    line = pool.stats.describe()
    assert "serial" in line
    assert "2 trials" in line
    assert "instance cache" in line


def test_chunking_never_drops_tasks():
    tasks = list(range(17))
    for chunk_size in (1, 2, 5, 17, 100):
        with TrialPool(2, chunk_size=chunk_size) as pool:
            outcomes = pool.map_trials(_square, tasks)
        assert [o.value for o in outcomes] == [t * t for t in tasks]


def test_trial_outcomes_carry_wall_time():
    with TrialPool(0) as pool:
        outcomes = pool.map_trials(_square, [1, 2, 3])
    assert all(o.seconds >= 0.0 for o in outcomes)
    assert pool.stats.trial_seconds >= 0.0
    assert pool.stats.wall_seconds > 0.0


def test_values_identical_to_single_worker():
    matrix = small_world_latencies(20, seed=9)
    tasks = list(range(matrix.n_nodes))
    with TrialPool(1) as pool:
        one = pool.map_trials(_matrix_row_sum, tasks, matrix=matrix)
    with TrialPool(3) as pool:
        three = pool.map_trials(_matrix_row_sum, tasks, matrix=matrix)
    assert np.array_equal(
        [o.value for o in one], [o.value for o in three]
    )


def _fail_twice_then_succeed(matrix, task):
    """Needs two retries: raises until the marker holds two attempts."""
    index, marker = task
    attempts = 0
    if os.path.exists(marker):
        with open(marker, "r", encoding="utf-8") as fh:
            attempts = int(fh.read())
    if attempts < 2:
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write(str(attempts + 1))
        raise RuntimeError(f"attempt {attempts} fails")
    return index


class TestRetryPolicy:
    def test_validation(self):
        from repro.errors import InvalidParameterError
        from repro.parallel import RetryPolicy

        with pytest.raises(InvalidParameterError):
            RetryPolicy(retries=-1)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(base_seconds=-0.1)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(cap_seconds=-1.0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(jitter=1.5)

    def test_default_delay_is_zero(self):
        from repro.parallel import RetryPolicy

        policy = RetryPolicy()
        assert policy.retries == 1
        assert policy.delay_seconds(0, 0) == 0.0

    def test_exponential_growth_and_cap(self):
        from repro.parallel import RetryPolicy

        policy = RetryPolicy(
            retries=8, base_seconds=0.1, cap_seconds=0.4, jitter=0.0
        )
        delays = [policy.delay_seconds(0, k) for k in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_is_seeded_and_bounded(self):
        from repro.parallel import RetryPolicy

        policy = RetryPolicy(
            retries=4, base_seconds=0.1, cap_seconds=1.0, jitter=0.5, seed=42
        )
        same = RetryPolicy(
            retries=4, base_seconds=0.1, cap_seconds=1.0, jitter=0.5, seed=42
        )
        other = RetryPolicy(
            retries=4, base_seconds=0.1, cap_seconds=1.0, jitter=0.5, seed=43
        )
        d = policy.delay_seconds(3, 1)
        assert d == same.delay_seconds(3, 1)
        assert d != other.delay_seconds(3, 1)
        # Equal-jitter band: raw * (1 - jitter * u), u in [0, 1).
        assert 0.1 < d <= 0.2
        # Different tasks back off at decorrelated times.
        assert policy.delay_seconds(4, 1) != d

    def test_retries_zero_fails_without_retry(self, tmp_path):
        from repro.parallel import RetryPolicy

        marker = str(tmp_path / "never-read")
        with TrialPool(0, retry=RetryPolicy(retries=0)) as pool:
            outcomes = pool.map_trials(_flaky_until_marker, [(1, marker)])
        (outcome,) = outcomes
        assert not outcome.ok and not outcome.retried
        assert pool.stats.n_retried == 0

    def test_multiple_backoff_retries_recover(self, tmp_path):
        from repro.parallel import RetryPolicy

        marker = str(tmp_path / "attempts")
        policy = RetryPolicy(
            retries=2, base_seconds=0.001, cap_seconds=0.002, seed=0
        )
        with TrialPool(0, retry=policy) as pool:
            outcomes = pool.map_trials(
                _fail_twice_then_succeed, [(5, marker)]
            )
        (outcome,) = outcomes
        assert outcome.ok and outcome.value == 5 and outcome.retried
        assert pool.stats.n_retried == 1

    def test_retry_counters_reach_registry(self, tmp_path):
        from repro.obs import registry
        from repro.parallel import RetryPolicy

        before = registry().counter("pool.retry.attempts").value
        marker = str(tmp_path / "counted")
        policy = RetryPolicy(retries=2, base_seconds=0.001, seed=1)
        with TrialPool(0, retry=policy) as pool:
            pool.map_trials(_fail_twice_then_succeed, [(0, marker)])
        assert registry().counter("pool.retry.attempts").value == before + 2
