"""The competitive-ratio harness: invariants, paths, parallel identity."""

from __future__ import annotations

import pytest

from repro.algorithms.policies import policy_names
from repro.errors import InvalidParameterError, ScenarioError
from repro.obs import MetricsRegistry, use_registry
from repro.parallel import TrialPool, lower_bound_cache
from repro.scenarios import (
    Checkpoint,
    FlashCrowd,
    InstanceSpec,
    ReplayOptions,
    ReplayResult,
    Scenario,
    bundled_scenario,
    check_ratios,
    compare_policies,
    replay_scenario,
    scenario_names,
)

FAST = ReplayOptions(checkpoint_every=64, offline_algorithm=None)


@pytest.fixture(autouse=True)
def _fresh_lb_cache():
    lower_bound_cache().clear()
    yield


class TestReplayOptions:
    def test_round_trip(self):
        options = ReplayOptions(path="sharded", shards=2, checkpoint_every=8)
        assert ReplayOptions.from_dict(options.to_dict()) == options

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"path": "carrier-pigeon"},
            {"shards": 0},
            {"checkpoint_every": 0},
            {"maintain_moves": -1},
            {"block_size": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ScenarioError):
            ReplayOptions(**kwargs)


class TestRatioInvariant:
    """Empirical competitive ratio >= 1 on every bundled adversary."""

    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("policy", sorted(policy_names()))
    def test_bundled_scenarios(self, name, policy):
        result = replay_scenario(bundled_scenario(name), policy, options=FAST)
        assert result.checkpoints, "replay produced no checkpoints"
        check_ratios(result)
        for checkpoint in result.checkpoints:
            assert checkpoint.ratio >= 1.0 - 1e-9
            assert checkpoint.lower_bound > 0

    def test_check_ratios_raises_on_violation(self):
        bogus = ReplayResult(
            scenario="x",
            policy="greedy",
            path="library",
            n_events=1,
            checkpoints=(
                Checkpoint(
                    event_index=0,
                    time=0.0,
                    n_connected=1,
                    d_online=0.5,
                    lower_bound=1.0,
                    ratio=0.5,
                ),
            ),
        )
        with pytest.raises(ScenarioError):
            check_ratios(bogus)


class TestReplay:
    def test_unknown_policy_rejected(self):
        with pytest.raises(InvalidParameterError):
            replay_scenario(bundled_scenario("diurnal"), "nope", options=FAST)

    def test_result_round_trip(self):
        result = replay_scenario(
            bundled_scenario("capacity-crunch"), "greedy", options=FAST
        )
        assert ReplayResult.from_dict(result.to_dict()) == result

    def test_capacity_crunch_rejects_under_greedy(self):
        result = replay_scenario(
            bundled_scenario("capacity-crunch"), "greedy", options=FAST
        )
        assert result.counters["rejected"] > 0
        capacity = bundled_scenario("capacity-crunch").instance.capacity
        for checkpoint in result.checkpoints:
            assert checkpoint.max_load <= capacity

    def test_offline_reference_columns(self):
        options = ReplayOptions(checkpoint_every=64)
        result = replay_scenario(
            bundled_scenario("diurnal"), "greedy", options=options
        )
        final = result.final
        assert final.d_offline is not None
        assert final.regret == pytest.approx(final.d_online - final.d_offline)

    def test_fault_scenario_replays_crash_and_recover(self):
        result = replay_scenario(
            bundled_scenario("regional-outage"), "greedy", options=FAST
        )
        moved = result.counters["evacuated"] + result.counters["shed"]
        assert moved > 0
        check_ratios(result)

    def test_metrics_recorded(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            replay_scenario(bundled_scenario("diurnal"), "spread", options=FAST)
        counters = registry.snapshot()["counters"]
        assert counters["scenarios.replays"] == 1
        assert counters["scenarios.events"] > 0
        assert counters["scenarios.replay.spread.checkpoints"] >= 1
        assert counters["scenarios.replay.spread.ratio_sum"] >= 1.0


class TestShardedPath:
    def test_matches_library_checkpoints(self):
        scenario = bundled_scenario("capacity-crunch")
        library = replay_scenario(scenario, "greedy", options=FAST)
        sharded = replay_scenario(
            scenario,
            "greedy",
            options=ReplayOptions(
                path="sharded",
                shards=3,
                checkpoint_every=64,
                offline_algorithm=None,
            ),
        )
        assert [c.to_dict() for c in sharded.checkpoints] == [
            c.to_dict() for c in library.checkpoints
        ]
        assert sharded.counters == library.counters

    def test_rejects_fault_scenarios(self):
        with pytest.raises(ScenarioError):
            replay_scenario(
                bundled_scenario("regional-outage"),
                "greedy",
                options=ReplayOptions(path="sharded", offline_algorithm=None),
            )


class TestWirePath:
    WIRE = ReplayOptions(
        path="wire", checkpoint_every=64, offline_algorithm=None
    )

    def test_rejects_fault_scenarios(self):
        with pytest.raises(ScenarioError):
            replay_scenario(
                bundled_scenario("regional-outage"), "greedy", options=self.WIRE
            )

    def test_rejects_planet_instances(self):
        with pytest.raises(ScenarioError):
            replay_scenario(
                bundled_scenario("diurnal"), "greedy", options=self.WIRE
            )

    def test_matches_library_decisions(self):
        scenario = Scenario(
            name="wire-equivalence",
            instance=InstanceSpec(
                kind="meridian", n_clients=60, n_servers=4, seed=6, capacity=20
            ),
            segments=(FlashCrowd(start=0.0, duration=6.0, joins=50),),
            seed=19,
        )
        library = replay_scenario(
            scenario,
            "nearest",
            options=ReplayOptions(
                checkpoint_every=16, maintain_moves=0, offline_algorithm=None
            ),
        )
        wire = replay_scenario(
            scenario,
            "nearest",
            options=ReplayOptions(
                path="wire", checkpoint_every=16, offline_algorithm=None
            ),
        )
        assert [c.d_online for c in wire.checkpoints] == [
            c.d_online for c in library.checkpoints
        ]
        assert [c.ratio for c in wire.checkpoints] == [
            c.ratio for c in library.checkpoints
        ]
        check_ratios(wire)


def _strip_timing(result: ReplayResult) -> dict:
    doc = result.to_dict()
    doc.pop("elapsed_seconds")
    return doc


class TestComparePolicies:
    def test_empty_policy_list_rejected(self):
        with pytest.raises(ScenarioError):
            compare_policies(bundled_scenario("diurnal"), [])

    def test_serial_matches_parallel(self):
        scenario = bundled_scenario("capacity-crunch")
        policies = ["greedy", "spread"]
        with TrialPool(0) as serial:
            a = compare_policies(
                scenario, policies, options=FAST, pool=serial
            )
        with TrialPool(4) as parallel:
            b = compare_policies(
                scenario, policies, options=FAST, pool=parallel
            )
        assert [r.policy for r in a] == policies
        assert [_strip_timing(r) for r in a] == [_strip_timing(r) for r in b]

    def test_lb_cache_shared_across_policies(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            lower_bound_cache().clear()
            compare_policies(
                bundled_scenario("diurnal"),
                ["greedy", "nearest", "threshold"],
                options=FAST,
            )
        counters = registry.snapshot()["counters"]
        # All policies face the same trace, so after the first policy
        # pays for each checkpoint's lower bound the rest hit the cache.
        assert counters["parallel.lb_cache.hits"] > 0
        assert (
            counters["parallel.lb_cache.hits"]
            >= counters["parallel.lb_cache.misses"]
        )
