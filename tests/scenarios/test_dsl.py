"""The scenario DSL: validation, JSON round-trips, compile determinism."""

from __future__ import annotations

import json

import pytest

from repro.errors import ScenarioError
from repro.faults.models import DownInterval, Partition
from repro.scenarios import (
    SEGMENT_KINDS,
    CapacityCrunch,
    CorrelatedBursts,
    DiurnalWave,
    Drain,
    FlashCrowd,
    InstanceSpec,
    NemesisChurn,
    RegionalOutage,
    Scenario,
    ScenarioEvent,
    bundled_scenario,
    scenario_names,
    segment_from_dict,
)


class TestInstanceSpec:
    def test_bad_kind_rejected(self):
        with pytest.raises(ScenarioError):
            InstanceSpec(kind="pingmesh")

    def test_bad_capacity_rejected(self):
        with pytest.raises(ScenarioError):
            InstanceSpec(capacity=0)

    def test_nodes_is_universe_size(self):
        spec = InstanceSpec(n_clients=100, n_servers=8)
        assert spec.nodes == 108

    def test_planet_has_no_wire_twin(self):
        with pytest.raises(ScenarioError):
            InstanceSpec(kind="planet").session_config()

    def test_meridian_build_matches_session_config(self):
        spec = InstanceSpec(kind="meridian", n_clients=40, n_servers=4, seed=3)
        built = spec.build()
        config = spec.session_config()
        assert list(built.servers) == list(
            config.resolve_servers(config.build_matrix())
        )
        assert built.clients.size == 40
        assert not set(built.servers) & set(built.clients)

    def test_round_trip(self):
        spec = InstanceSpec(
            kind="mit", n_clients=30, n_servers=3, seed=9, capacity=12
        )
        assert InstanceSpec.from_dict(spec.to_dict()) == spec


class TestSegments:
    @pytest.mark.parametrize(
        "segment",
        [
            FlashCrowd(start=1.0, duration=5.0, joins=20, server=2),
            DiurnalWave(start=0.0, duration=50.0, period=25.0, joins=60),
            CorrelatedBursts(start=2.0, period=10.0, bursts=3, joins=8, leaves=5),
            CapacityCrunch(start=0.0, duration=10.0, joins=30, server=1),
            NemesisChurn(start=5.0, duration=20.0, events=40, leave_fraction=0.3),
            Drain(start=3.0, duration=4.0, leaves=10),
            RegionalOutage(server=2, start=8.0, duration=6.0, partition=True),
        ],
    )
    def test_json_round_trip(self, segment):
        doc = json.loads(json.dumps(segment.to_dict()))
        assert segment_from_dict(doc) == segment

    def test_every_kind_registered(self):
        assert sorted(SEGMENT_KINDS) == sorted(
            s.kind
            for s in (
                FlashCrowd,
                DiurnalWave,
                CorrelatedBursts,
                CapacityCrunch,
                NemesisChurn,
                Drain,
                RegionalOutage,
            )
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError):
            segment_from_dict({"kind": "meteor-strike"})

    def test_bad_field_rejected(self):
        with pytest.raises(ScenarioError):
            segment_from_dict({"kind": "drain", "leaves": 5, "bogus": 1})

    def test_validation(self):
        with pytest.raises(ScenarioError):
            FlashCrowd(duration=0.0)
        with pytest.raises(ScenarioError):
            DiurnalWave(trough=0.0)
        with pytest.raises(ScenarioError):
            NemesisChurn(leave_fraction=1.0)

    def test_outage_contributes_down_interval(self):
        outage = RegionalOutage(server=1, start=5.0, duration=3.0)
        assert outage.down_intervals() == [
            DownInterval(server=1, start=5.0, end=8.0)
        ]
        assert outage.partitions() == []

    def test_partition_outage_contributes_partition(self):
        outage = RegionalOutage(
            server=2, start=5.0, duration=3.0, partition=True
        )
        assert outage.down_intervals() == []
        assert outage.partitions() == [
            Partition(servers=(2,), start=5.0, end=8.0)
        ]


class TestScenario:
    def test_bundled_names_sorted(self):
        names = scenario_names()
        assert names == sorted(names)
        assert "flash-crowd" in names
        assert len(names) == 6

    def test_unknown_bundled_rejected(self):
        with pytest.raises(ScenarioError):
            bundled_scenario("does-not-exist")

    @pytest.mark.parametrize("name", scenario_names())
    def test_bundled_json_round_trip(self, name):
        scenario = bundled_scenario(name)
        clone = Scenario.loads(scenario.dumps())
        assert clone == scenario
        assert clone.to_dict() == scenario.to_dict()

    def test_empty_name_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario(name="")

    def test_non_segment_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario(name="x", segments=("not-a-segment",))

    def test_bad_document_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario.loads("[1, 2, 3]")
        with pytest.raises(ScenarioError):
            Scenario.loads("{not json")
        with pytest.raises(ScenarioError):
            Scenario.from_dict({"name": "x", "bogus_field": 1})

    def test_out_of_range_outage_rejected(self):
        scenario = Scenario(
            name="x",
            instance=InstanceSpec(n_clients=20, n_servers=4),
            segments=(RegionalOutage(server=9, start=1.0, duration=1.0),),
        )
        with pytest.raises(ScenarioError):
            scenario.fault_schedule()

    def test_fault_schedule_composition(self):
        scenario = bundled_scenario("regional-outage")
        schedule = scenario.fault_schedule()
        assert len(schedule.down_intervals) == 1
        assert len(schedule.partitions) == 1


class TestCompile:
    @pytest.fixture(scope="class")
    def scenario(self):
        return Scenario(
            name="compile-test",
            instance=InstanceSpec(
                kind="planet", n_clients=80, n_servers=6, n_clusters=8, seed=2
            ),
            segments=(
                FlashCrowd(start=0.0, duration=5.0, joins=30),
                RegionalOutage(server=1, start=6.0, duration=4.0),
                Drain(start=11.0, duration=3.0, leaves=10),
            ),
            seed=77,
            rebalance_every=16,
        )

    def test_deterministic(self, scenario):
        first = scenario.compile()
        second = scenario.compile()
        assert first.events == second.events

    def test_round_tripped_scenario_compiles_identically(self, scenario):
        clone = Scenario.loads(scenario.dumps())
        assert clone.compile().events == scenario.compile().events

    def test_canonical_ordering(self, scenario):
        trace = scenario.compile()
        times = [e.time for e in trace.events]
        assert times == sorted(times)
        assert [e.seq for e in trace.events] == list(range(trace.n_events))

    def test_fault_edges_present(self, scenario):
        trace = scenario.compile()
        ops = [e.op for e in trace.events]
        assert "crash" in ops
        assert "recover" in ops
        assert ops.index("crash") < ops.index("recover")
        assert trace.has_faults

    def test_rebalance_inserted(self, scenario):
        trace = scenario.compile()
        assert any(e.op == "rebalance" for e in trace.events)

    def test_counts(self, scenario):
        trace = scenario.compile()
        assert trace.n_joins == 30
        assert trace.n_leaves == 10

    def test_joins_are_distinct_clients(self, scenario):
        built = scenario.instance.build()
        trace = scenario.compile(built)
        joined = [e.node for e in trace.events if e.op == "join"]
        assert len(joined) == len(set(joined))
        assert set(joined) <= {int(n) for n in built.clients}

    def test_leaves_only_connected_clients(self, scenario):
        trace = scenario.compile()
        connected = set()
        for event in trace.events:
            if event.op == "join":
                assert event.node not in connected
                connected.add(event.node)
            elif event.op == "leave":
                assert event.node in connected
                connected.discard(event.node)

    def test_nemesis_targets_resolved_obliviously(self):
        scenario = bundled_scenario("nemesis")
        trace = scenario.compile()
        # Nemesis intents resolve to plain join/leave node events: the
        # trace carries no policy-dependent targeting.
        assert {e.op for e in trace.events} <= {"join", "leave"}
        assert trace.events == scenario.compile().events


class TestScenarioEvent:
    def test_wire_shapes(self):
        assert ScenarioEvent(0.0, 0, "join", node=5).to_event_dict() == {
            "op": "join", "node": 5
        }
        assert ScenarioEvent(0.0, 0, "crash", server=2).to_event_dict() == {
            "op": "crash", "server": 2
        }
        assert ScenarioEvent(0.0, 0, "partition", server=1).to_event_dict() == {
            "op": "partition", "servers": [1]
        }
        assert ScenarioEvent(0.0, 0, "rebalance").to_event_dict() == {
            "op": "rebalance", "max_moves": 8
        }

    def test_unknown_op_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioEvent(0.0, 0, "meteor").to_event_dict()
