"""The ``repro scenarios`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scenarios import bundled_scenario, scenario_names

FAST = ["--checkpoint-every", "64", "--offline", "none"]


class TestList:
    def test_lists_every_bundled_scenario(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out


class TestRun:
    def test_run_report(self, capsys):
        code = main(
            ["scenarios", "run", "--scenario", "capacity-crunch",
             "--policy", "greedy"] + FAST
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ratio vs lower bound" in out
        assert "rejected=18" in out

    def test_run_json(self, capsys):
        code = main(
            ["scenarios", "run", "--scenario", "diurnal",
             "--policy", "spread", "--json"] + FAST
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["scenario"] == "diurnal"
        assert doc["policy"] == "spread"
        assert all(c["ratio"] >= 1.0 for c in doc["checkpoints"])

    def test_run_out_file(self, tmp_path, capsys):
        out_path = tmp_path / "replay.json"
        code = main(
            ["scenarios", "run", "--scenario", "diurnal",
             "--policy", "greedy", "--out", str(out_path)] + FAST
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["policy"] == "greedy"

    def test_show_prints_document(self, capsys):
        code = main(["scenarios", "run", "--scenario", "nemesis", "--show"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"] == "nemesis"
        assert doc["segments"]

    def test_run_from_file(self, tmp_path, capsys):
        path = tmp_path / "custom.json"
        path.write_text(bundled_scenario("capacity-crunch").dumps())
        code = main(
            ["scenarios", "run", "--file", str(path), "--policy", "spread"]
            + FAST
        )
        assert code == 0
        assert "capacity-crunch" in capsys.readouterr().out

    def test_sharded_path(self, capsys):
        code = main(
            ["scenarios", "run", "--scenario", "diurnal",
             "--policy", "nearest", "--path", "sharded", "--shards", "3"]
            + FAST
        )
        assert code == 0
        assert "sharded path" in capsys.readouterr().out

    def test_unknown_scenario_is_cli_error(self, capsys):
        code = main(["scenarios", "run", "--scenario", "nope"] + FAST)
        assert code == 1
        assert "scenario-error" in capsys.readouterr().err

    def test_unknown_policy_is_cli_error(self, capsys):
        code = main(
            ["scenarios", "run", "--scenario", "diurnal",
             "--policy", "nope"] + FAST
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_sharded_fault_scenario_is_cli_error(self, capsys):
        code = main(
            ["scenarios", "run", "--scenario", "regional-outage",
             "--path", "sharded"] + FAST
        )
        assert code == 1
        assert "scenario-error" in capsys.readouterr().err


class TestCompare:
    def test_acceptance_command(self, capsys):
        # The PR's acceptance invocation, minus the offline solve.
        code = main(
            ["scenarios", "compare", "--scenario", "flash-crowd",
             "--policies", "nearest,threshold,spread"] + FAST
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean ratio" in out
        assert "nearest" in out and "threshold" in out and "spread" in out
        assert "mean competitive ratio" in out

    def test_compare_json_workers(self, capsys):
        code = main(
            ["scenarios", "compare", "--scenario", "capacity-crunch",
             "--policies", "greedy,spread", "--workers", "2", "--json"]
            + FAST
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["policies"] == ["greedy", "spread"]
        assert len(doc["results"]) == 2

    def test_workers_match_serial(self, capsys):
        args = [
            "scenarios", "compare", "--scenario", "diurnal",
            "--policies", "greedy,nearest", "--json",
        ] + FAST
        assert main(args + ["--workers", "0"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(args + ["--workers", "4"]) == 0
        parallel = json.loads(capsys.readouterr().out)

        def strip(doc):
            for result in doc["results"]:
                result.pop("elapsed_seconds")
            return doc

        assert strip(serial) == strip(parallel)
