"""Tests for server processing delays (repro.sim.processing + DIA)."""

import numpy as np
import pytest

from repro.algorithms import greedy
from repro.core import ClientAssignmentProblem, OffsetSchedule
from repro.datasets.synthetic import small_world_latencies
from repro.placement import random_placement
from repro.sim import (
    ProcessingModel,
    ServerQueue,
    poisson_workload,
    simulate_assignment,
    uniform_workload,
)


class TestProcessingModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessingModel(-1.0)
        with pytest.raises(ValueError):
            ProcessingModel(1.0, load_factor=-0.5)

    def test_effective_service_time(self):
        model = ProcessingModel(2.0, load_factor=0.1)
        assert model.effective_service_time(0) == pytest.approx(2.0)
        assert model.effective_service_time(10) == pytest.approx(4.0)

    def test_zero_service_time_allowed(self):
        assert ProcessingModel(0.0).effective_service_time(5) == 0.0


class TestServerQueue:
    def test_idle_server_completes_after_service(self):
        q = ServerQueue(2)
        assert q.submit(0, 10.0, 3.0) == pytest.approx(13.0)
        assert q.max_backlog == 0.0

    def test_busy_server_queues(self):
        q = ServerQueue(1)
        q.submit(0, 0.0, 5.0)
        completion = q.submit(0, 1.0, 5.0)
        assert completion == pytest.approx(10.0)
        assert q.max_backlog == pytest.approx(4.0)

    def test_servers_independent(self):
        q = ServerQueue(2)
        q.submit(0, 0.0, 100.0)
        assert q.submit(1, 0.0, 1.0) == pytest.approx(1.0)

    def test_job_counters(self):
        q = ServerQueue(2)
        q.submit(0, 0.0, 1.0)
        q.submit(0, 0.0, 1.0)
        q.submit(1, 0.0, 1.0)
        assert q.jobs_processed(0) == 2
        assert q.jobs_processed() == 3


@pytest.fixture(scope="module")
def solved():
    matrix = small_world_latencies(24, seed=50)
    problem = ClientAssignmentProblem(matrix, random_placement(matrix, 3, seed=0))
    return problem, greedy(problem)


class TestSimulationWithProcessing:
    def test_zero_service_time_unchanged(self, solved):
        problem, assignment = solved
        schedule = OffsetSchedule(assignment)
        ops = uniform_workload(problem.n_clients, ops_per_client=2, seed=0)
        base = simulate_assignment(schedule, ops)
        with_proc = simulate_assignment(
            schedule, ops, processing=ProcessingModel(0.0)
        )
        assert with_proc.healthy == base.healthy
        assert with_proc.max_interaction_time == pytest.approx(
            base.max_interaction_time
        )

    def test_processing_delays_updates(self, solved):
        # Service time with zero slack in the schedule must make some
        # updates late.
        problem, assignment = solved
        schedule = OffsetSchedule(assignment)
        ops = uniform_workload(problem.n_clients, ops_per_client=2, seed=1)
        report = simulate_assignment(
            schedule,
            ops,
            processing=ProcessingModel(5.0),
            allow_late=True,
        )
        assert report.late_client_updates > 0
        assert report.max_interaction_time > report.delta

    def test_backlog_reported(self, solved):
        problem, assignment = solved
        schedule = OffsetSchedule(assignment)
        # Many near-simultaneous ops -> FIFO backlog builds.
        ops = poisson_workload(problem.n_clients, rate=0.5, horizon=20.0, seed=2)
        report = simulate_assignment(
            schedule,
            ops,
            processing=ProcessingModel(3.0),
            allow_late=True,
        )
        assert report.max_processing_backlog > 0.0

    def test_slack_delta_absorbs_processing(self, solved):
        # Provisioning headroom in delta hides a small service time.
        problem, assignment = solved
        from repro.core import max_interaction_path_length

        d = max_interaction_path_length(assignment)
        schedule = OffsetSchedule(assignment, delta=d + 100.0)
        ops = uniform_workload(problem.n_clients, ops_per_client=1, seed=3)
        report = simulate_assignment(
            schedule,
            ops,
            processing=ProcessingModel(2.0),
            allow_late=True,
        )
        assert report.late_client_updates == 0

    def test_overload_worse_than_balanced(self, solved):
        """§IV-E's rationale: a server with far more clients builds a
        larger backlog under load-dependent service times."""
        problem, _ = solved
        from repro.core import Assignment

        n = problem.n_clients
        # Everyone on server 0 vs spread across 3 servers.
        lopsided = Assignment(problem, np.zeros(n, dtype=np.int64))
        spread = Assignment(problem, np.arange(n) % 3)
        ops = poisson_workload(n, rate=0.2, horizon=50.0, seed=4)
        model = ProcessingModel(1.0, load_factor=0.2)
        reports = {}
        for name, a in (("lopsided", lopsided), ("spread", spread)):
            reports[name] = simulate_assignment(
                OffsetSchedule(a), ops, processing=model, allow_late=True
            )
        assert (
            reports["lopsided"].max_processing_backlog
            > reports["spread"].max_processing_backlog
        )
