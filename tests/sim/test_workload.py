"""Tests for workload generators."""

import numpy as np
import pytest

from repro.sim.workload import (
    adversarial_pair_workload,
    lockstep_workload,
    poisson_workload,
    uniform_workload,
)


def assert_seq_matches_issuance_order(ops):
    keyed = [(op.issue_sim_time, op.client) for op in ops]
    assert keyed == sorted(keyed)
    assert [op.seq for op in ops] == list(range(len(ops)))


class TestPoisson:
    def test_basic_properties(self):
        ops = poisson_workload(5, rate=0.5, horizon=50.0, seed=0)
        assert all(0 <= op.issue_sim_time < 50.0 for op in ops)
        assert all(0 <= op.client < 5 for op in ops)
        assert_seq_matches_issuance_order(ops)

    def test_rate_scales_volume(self):
        low = poisson_workload(10, rate=0.1, horizon=100.0, seed=1)
        high = poisson_workload(10, rate=1.0, horizon=100.0, seed=1)
        assert len(high) > len(low)

    def test_seeded(self):
        a = poisson_workload(4, rate=0.3, horizon=30.0, seed=2)
        b = poisson_workload(4, rate=0.3, horizon=30.0, seed=2)
        assert a == b

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            poisson_workload(3, rate=0.0)
        with pytest.raises(ValueError):
            poisson_workload(3, horizon=-1.0)


class TestUniform:
    def test_count(self):
        ops = uniform_workload(6, ops_per_client=3, seed=0)
        assert len(ops) == 18
        counts = np.bincount([op.client for op in ops], minlength=6)
        assert np.all(counts == 3)
        assert_seq_matches_issuance_order(ops)

    def test_zero_ops(self):
        assert uniform_workload(3, ops_per_client=0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            uniform_workload(3, ops_per_client=-1)


class TestLockstep:
    def test_simultaneous_rounds(self):
        ops = lockstep_workload(4, rounds=3, interval=10.0)
        assert len(ops) == 12
        times = sorted({op.issue_sim_time for op in ops})
        assert times == [0.0, 10.0, 20.0]
        assert_seq_matches_issuance_order(ops)

    def test_tie_break_by_client(self):
        ops = lockstep_workload(3, rounds=1)
        assert [op.client for op in ops[:3]] == [0, 1, 2]


class TestAdversarialPair:
    def test_gap_order(self):
        ops = adversarial_pair_workload(2, 7, gap=0.5, rounds=2, interval=10.0)
        assert len(ops) == 4
        assert ops[0].client == 2 and ops[1].client == 7
        assert ops[1].issue_sim_time - ops[0].issue_sim_time == pytest.approx(0.5)
        assert_seq_matches_issuance_order(ops)

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            adversarial_pair_workload(0, 1, gap=0.0)


class TestFlashCrowd:
    def test_burst_density(self):
        from repro.sim.workload import flash_crowd_workload

        ops = flash_crowd_workload(
            20,
            base_rate=0.1,
            burst_rate=5.0,
            burst_start=40.0,
            burst_duration=10.0,
            horizon=100.0,
            seed=0,
        )
        in_burst = sum(1 for op in ops if 40.0 <= op.issue_sim_time < 50.0)
        outside = len(ops) - in_burst
        # The 10-time-unit burst should out-produce the other 90 units.
        assert in_burst > outside
        assert_seq_matches_issuance_order(ops)

    def test_invalid_params(self):
        from repro.sim.workload import flash_crowd_workload

        with pytest.raises(ValueError):
            flash_crowd_workload(3, base_rate=0.0)
        with pytest.raises(ValueError):
            flash_crowd_workload(3, burst_start=200.0, horizon=100.0)
        with pytest.raises(ValueError):
            flash_crowd_workload(3, burst_duration=0.0)


class TestDiurnal:
    def test_peak_trough_density(self):
        from repro.sim.workload import diurnal_workload

        ops = diurnal_workload(
            30,
            peak_rate=2.0,
            trough_rate=0.1,
            period=100.0,
            horizon=100.0,
            seed=1,
        )
        # Peak is around t=25 (sin max), trough around t=75.
        peak_window = sum(1 for op in ops if 10 <= op.issue_sim_time < 40)
        trough_window = sum(1 for op in ops if 60 <= op.issue_sim_time < 90)
        assert peak_window > 2 * trough_window
        assert_seq_matches_issuance_order(ops)

    def test_invalid_params(self):
        from repro.sim.workload import diurnal_workload

        with pytest.raises(ValueError):
            diurnal_workload(3, peak_rate=0.1, trough_rate=0.5)
        with pytest.raises(ValueError):
            diurnal_workload(3, period=-1.0)


class TestSequencing:
    def test_ordered_timed_ties_by_key(self):
        from repro.sim.sequencing import ordered_timed

        raw = [(1.0, 3), (0.5, 9), (1.0, 1), (0.5, 2)]
        assert ordered_timed(raw) == [(0.5, 2), (0.5, 9), (1.0, 1), (1.0, 3)]

    def test_sequence_timed_assigns_in_order(self):
        from repro.sim.sequencing import sequence_timed

        out = sequence_timed(
            [(2.0, "b"), (1.0, "a")], lambda seq, t, k: (seq, t, k)
        )
        assert out == [(0, 1.0, "a"), (1, 2.0, "b")]

    def test_flash_crowd_byte_identical(self):
        from repro.sim.workload import flash_crowd_workload

        a = flash_crowd_workload(15, seed=7)
        b = flash_crowd_workload(15, seed=7)
        assert repr(a) == repr(b)
        assert a == b

    def test_diurnal_byte_identical(self):
        from repro.sim.workload import diurnal_workload

        a = diurnal_workload(15, seed=7)
        b = diurnal_workload(15, seed=7)
        assert repr(a) == repr(b)
        assert a == b
