"""Bucket synchronization (Gautier et al. [12]) vs the paper's
constant-lag criterion."""

import pytest

from repro.algorithms import greedy
from repro.core import (
    ClientAssignmentProblem,
    OffsetSchedule,
    max_interaction_path_length,
)
from repro.datasets.synthetic import small_world_latencies
from repro.errors import SimulationError
from repro.placement import random_placement
from repro.sim import DIASimulation, poisson_workload, simulate_assignment


@pytest.fixture(scope="module")
def setup():
    matrix = small_world_latencies(25, seed=9)
    problem = ClientAssignmentProblem(matrix, random_placement(matrix, 3, seed=0))
    assignment = greedy(problem)
    schedule = OffsetSchedule(assignment)
    ops = poisson_workload(problem.n_clients, rate=0.02, horizon=400, seed=1)
    return assignment, schedule, ops


class TestBucketMode:
    def test_order_preserved_but_lag_varies(self, setup):
        _assignment, schedule, ops = setup
        report = simulate_assignment(schedule, ops, bucket_size=50.0)
        assert report.order_preserved
        assert not report.constant_lag
        assert not report.fair  # the paper's criterion is strict

    def test_no_lateness(self, setup):
        # Bucket quantization only delays executions, so no message
        # misses its (later) deadline.
        _assignment, schedule, ops = setup
        report = simulate_assignment(schedule, ops, bucket_size=50.0)
        assert report.late_server_arrivals == 0
        assert report.late_client_updates == 0

    def test_consistency_holds(self, setup):
        # Every server quantizes identically, so logs still match.
        _assignment, schedule, ops = setup
        report = simulate_assignment(schedule, ops, bucket_size=50.0)
        assert report.servers_consistent

    def test_interaction_times_bounded_by_bucket(self, setup):
        assignment, schedule, ops = setup
        d = max_interaction_path_length(assignment)
        for bucket in (10.0, 100.0):
            report = simulate_assignment(schedule, ops, bucket_size=bucket)
            assert report.min_interaction_time >= d - 1e-9
            assert report.max_interaction_time <= d + bucket + 1e-9

    def test_interaction_spread_grows_with_bucket(self, setup):
        _assignment, schedule, ops = setup
        spreads = []
        for bucket in (10.0, 50.0, 200.0):
            report = simulate_assignment(schedule, ops, bucket_size=bucket)
            spreads.append(
                report.max_interaction_time - report.min_interaction_time
            )
        assert spreads == sorted(spreads)

    def test_constant_lag_mode_unchanged(self, setup):
        _assignment, schedule, ops = setup
        report = simulate_assignment(schedule, ops)  # no bucket
        assert report.fair
        assert report.constant_lag
        assert report.order_preserved

    def test_invalid_bucket_rejected(self, setup):
        _assignment, schedule, _ops = setup
        with pytest.raises(SimulationError):
            DIASimulation(schedule, bucket_size=0.0)
        with pytest.raises(SimulationError):
            DIASimulation(schedule, bucket_size=-5.0)
