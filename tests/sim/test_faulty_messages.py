"""DIA simulation under message faults: drops, duplicates, spikes."""

import pytest

from repro.algorithms import greedy
from repro.core import ClientAssignmentProblem, OffsetSchedule
from repro.datasets.synthetic import small_world_latencies
from repro.faults import FaultSchedule, IIDLoss, LatencySpike
from repro.placement import random_placement
from repro.sim import poisson_workload, simulate_assignment


@pytest.fixture(scope="module")
def solved():
    matrix = small_world_latencies(30, seed=20)
    problem = ClientAssignmentProblem(
        matrix, random_placement(matrix, 4, seed=1)
    )
    assignment = greedy(problem)
    return problem, assignment


@pytest.fixture(scope="module")
def schedule(solved):
    _problem, assignment = solved
    return OffsetSchedule(assignment)


@pytest.fixture(scope="module")
def ops(solved):
    problem, _assignment = solved
    return poisson_workload(problem.n_clients, rate=0.02, horizon=300, seed=0)


class TestBaseline:
    def test_no_faults_keyword_changes_nothing(self, schedule, ops):
        plain = simulate_assignment(schedule, ops)
        explicit = simulate_assignment(schedule, ops, faults=FaultSchedule())
        assert plain.healthy and explicit.healthy
        assert plain.n_messages == explicit.n_messages
        assert explicit.dropped_messages == 0
        assert explicit.duplicated_messages == 0
        assert explicit.duplicate_deliveries == 0


class TestDuplication:
    def test_duplicates_are_suppressed(self, schedule, ops):
        faults = FaultSchedule(loss=IIDLoss(0.0, p_duplicate=0.3))
        report = simulate_assignment(schedule, ops, seed=0, faults=faults)
        # At-least-once delivery is made idempotent by receiver-side
        # dedup, so duplication alone never breaks the §II guarantees.
        assert report.healthy
        assert report.servers_consistent
        assert report.duplicated_messages > 0
        assert report.duplicate_deliveries == report.duplicated_messages
        assert report.dropped_messages == 0


class TestLoss:
    def test_drops_are_counted_and_break_consistency(self, schedule, ops):
        faults = FaultSchedule(loss=IIDLoss(0.10))
        report = simulate_assignment(schedule, ops, seed=0, faults=faults)
        assert report.dropped_messages > 0
        # A dropped operation leaves a hole in some server's log.
        assert not report.servers_consistent
        assert not report.healthy

    def test_deterministic_under_seed(self, schedule, ops):
        faults = FaultSchedule(loss=IIDLoss(0.05, p_duplicate=0.05))
        a = simulate_assignment(schedule, ops, seed=7, faults=faults)
        b = simulate_assignment(schedule, ops, seed=7, faults=faults)
        assert a.dropped_messages == b.dropped_messages
        assert a.duplicated_messages == b.duplicated_messages
        assert a.n_messages == b.n_messages
        assert a.servers_consistent == b.servers_consistent


class TestLatencySpikes:
    def test_spike_causes_late_arrivals_and_repairs(self, schedule, ops):
        faults = FaultSchedule(
            spikes=[LatencySpike(0.0, 1e9, 4.0)]  # 4x latency everywhere
        )
        report = simulate_assignment(
            schedule, ops, allow_late=True, faults=faults
        )
        assert report.late_server_arrivals > 0
        assert report.repairs > 0
        assert not report.healthy

    def test_spike_outside_window_is_harmless(self, schedule, ops):
        last_issue = max(op.issue_sim_time for op in ops)
        faults = FaultSchedule(
            spikes=[LatencySpike(last_issue + 1e6, 10.0, 5.0)]
        )
        report = simulate_assignment(schedule, ops, faults=faults)
        assert report.healthy
        assert report.late_server_arrivals == 0
