"""Tests for the discrete-event engine and clocks."""

import pytest

from repro.errors import SimulationError
from repro.sim.clocks import SimulationClock
from repro.sim.engine import EventEngine


class TestEventEngine:
    def test_events_fire_in_time_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule(3.0, "c", lambda t, p: fired.append((t, p)))
        engine.schedule(1.0, "a", lambda t, p: fired.append((t, p)))
        engine.schedule(2.0, "b", lambda t, p: fired.append((t, p)))
        engine.run()
        assert fired == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_ties_fire_in_scheduling_order(self):
        engine = EventEngine()
        fired = []
        for name in "xyz":
            engine.schedule(5.0, name, lambda t, p: fired.append(p))
        engine.run()
        assert fired == ["x", "y", "z"]

    def test_handlers_can_schedule_more(self):
        engine = EventEngine()
        fired = []

        def chain(t, p):
            fired.append(p)
            if p < 3:
                engine.schedule(t + 1.0, p + 1, chain)

        engine.schedule(0.0, 0, chain)
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0

    def test_until_stops_early(self):
        engine = EventEngine()
        fired = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, t, lambda tt, p: fired.append(p))
        engine.run(until=2.0)
        assert fired == [1.0, 2.0]
        assert engine.pending == 1

    def test_scheduling_into_past_rejected(self):
        engine = EventEngine()

        def bad(t, p):
            engine.schedule(t - 1.0, None, lambda *a: None)

        engine.schedule(5.0, None, bad)
        with pytest.raises(SimulationError):
            engine.run()

    def test_max_events_guard(self):
        engine = EventEngine()

        def forever(t, p):
            engine.schedule(t + 1.0, None, forever)

        engine.schedule(0.0, None, forever)
        with pytest.raises(SimulationError):
            engine.run(max_events=50)

    def test_events_processed_counter(self):
        engine = EventEngine()
        for t in range(5):
            engine.schedule(float(t), None, lambda *a: None)
        engine.run()
        assert engine.events_processed == 5


class TestSimulationClock:
    def test_round_trip(self):
        clock = SimulationClock(10.0)
        assert clock.sim_time(5.0) == 15.0
        assert clock.wall_time(15.0) == 5.0

    def test_zero_offset(self):
        clock = SimulationClock()
        assert clock.sim_time(7.5) == 7.5

    def test_negative_offset(self):
        clock = SimulationClock(-3.0)
        assert clock.sim_time(10.0) == 7.0

    def test_repr(self):
        assert "+2.000" in repr(SimulationClock(2.0))


class TestEngineResume:
    def test_run_until_then_resume(self):
        engine = EventEngine()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.schedule(t, t, lambda tt, p: fired.append(p))
        engine.run(until=2.0)
        assert fired == [1.0, 2.0]
        engine.run()  # resume drains the rest
        assert fired == [1.0, 2.0, 3.0, 4.0]
        assert engine.pending == 0

    def test_schedule_after_partial_run(self):
        engine = EventEngine()
        fired = []
        engine.schedule(1.0, "a", lambda t, p: fired.append(p))
        engine.run()
        engine.schedule(5.0, "b", lambda t, p: fired.append(p))
        engine.run()
        assert fired == ["a", "b"]
