"""Tests for the DIA simulation: the §II analysis must hold end to end."""

import numpy as np
import pytest

from repro.algorithms import greedy, nearest_server
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    OffsetSchedule,
    max_interaction_path_length,
)
from repro.datasets.synthetic import small_world_latencies
from repro.errors import ConsistencyViolation, SimulationError
from repro.net.jitter import LogNormalJitter
from repro.placement import random_placement
from repro.sim import (
    DIASimulation,
    adversarial_pair_workload,
    lockstep_workload,
    poisson_workload,
    simulate_assignment,
    uniform_workload,
)
from repro.sim.dia import percentile_schedule


@pytest.fixture(scope="module")
def solved():
    matrix = small_world_latencies(30, seed=20)
    problem = ClientAssignmentProblem(matrix, random_placement(matrix, 4, seed=1))
    assignment = greedy(problem)
    return problem, assignment


@pytest.fixture(scope="module")
def schedule(solved):
    _problem, assignment = solved
    return OffsetSchedule(assignment)


class TestHealthyRun:
    def test_no_jitter_run_is_healthy(self, solved, schedule):
        problem, _assignment = solved
        ops = poisson_workload(problem.n_clients, rate=0.02, horizon=300, seed=0)
        report = simulate_assignment(schedule, ops)
        assert report.healthy
        assert report.late_server_arrivals == 0
        assert report.late_client_updates == 0
        assert report.repairs == 0

    def test_interaction_times_all_equal_d(self, solved, schedule):
        # §II-D: with the paper's offsets every pairwise interaction time
        # equals D exactly.
        problem, assignment = solved
        d = max_interaction_path_length(assignment)
        ops = poisson_workload(problem.n_clients, rate=0.02, horizon=300, seed=1)
        report = simulate_assignment(schedule, ops)
        assert report.min_interaction_time == pytest.approx(d)
        assert report.max_interaction_time == pytest.approx(d)

    def test_message_count(self, solved, schedule):
        # Each operation: 1 (client->home) + (|S|-1) forwards + one
        # update per client.
        problem, _assignment = solved
        ops = uniform_workload(problem.n_clients, ops_per_client=1, seed=2)
        report = simulate_assignment(schedule, ops)
        per_op = 1 + (problem.n_servers - 1) + problem.n_clients
        assert report.n_messages == len(ops) * per_op

    def test_servers_execute_all_ops_consistently(self, solved, schedule):
        problem, _assignment = solved
        ops = lockstep_workload(problem.n_clients, rounds=2, interval=500.0)
        report = simulate_assignment(schedule, ops)
        assert report.servers_consistent
        assert report.fair

    def test_simultaneous_operations_ordered_fairly(self, solved, schedule):
        problem, _assignment = solved
        ops = lockstep_workload(problem.n_clients, rounds=3, interval=400.0)
        report = simulate_assignment(schedule, ops)
        assert report.healthy

    def test_adversarial_pair_fairness(self, solved, schedule):
        # The op issued a hair later must execute later at every server,
        # even though its issuer may be much closer to the servers.
        problem, _assignment = solved
        ops = adversarial_pair_workload(0, 1, gap=0.001, rounds=4, interval=600.0)
        report = simulate_assignment(schedule, ops)
        assert report.fair
        assert report.servers_consistent

    def test_empty_workload(self, schedule):
        report = simulate_assignment(schedule, [])
        assert report.n_operations == 0
        assert report.healthy
        assert np.isnan(report.min_interaction_time)


class TestInfeasibleLag:
    def test_delta_below_d_raises_in_simulation(self, solved):
        # Force a schedule with delta < D by hand-crafting offsets is
        # impossible through the public API (OffsetSchedule refuses), so
        # verify the refusal itself plus the boundary acceptance.
        _problem, assignment = solved
        d = max_interaction_path_length(assignment)
        from repro.errors import InfeasibleScheduleError

        with pytest.raises(InfeasibleScheduleError):
            OffsetSchedule(assignment, delta=d - 1.0)
        OffsetSchedule(assignment, delta=d)  # boundary OK

    def test_larger_delta_still_healthy(self, solved):
        problem, assignment = solved
        d = max_interaction_path_length(assignment)
        schedule = OffsetSchedule(assignment, delta=1.7 * d)
        ops = poisson_workload(problem.n_clients, rate=0.02, horizon=200, seed=3)
        report = simulate_assignment(schedule, ops)
        assert report.healthy
        assert report.min_interaction_time == pytest.approx(1.7 * d)


class TestJitter:
    def test_jitter_causes_lateness_at_tight_delta(self, solved, schedule):
        problem, _assignment = solved
        ops = poisson_workload(problem.n_clients, rate=0.02, horizon=300, seed=4)
        report = simulate_assignment(
            schedule, ops, jitter=LogNormalJitter(0.4), seed=5, allow_late=True
        )
        assert report.late_server_arrivals + report.late_client_updates > 0

    def test_strict_mode_raises_on_lateness(self, solved, schedule):
        problem, _assignment = solved
        ops = poisson_workload(problem.n_clients, rate=0.02, horizon=300, seed=4)
        with pytest.raises(ConsistencyViolation):
            simulate_assignment(
                schedule, ops, jitter=LogNormalJitter(0.4), seed=5, allow_late=False
            )

    def test_percentile_planning_reduces_lateness(self, solved):
        problem, assignment = solved
        jitter = LogNormalJitter(0.3)
        ops = poisson_workload(problem.n_clients, rate=0.02, horizon=300, seed=6)

        def lateness(q):
            sched = percentile_schedule(assignment, jitter, q)
            report = simulate_assignment(
                sched,
                ops,
                jitter=jitter,
                seed=7,
                allow_late=True,
                base_matrix=problem.matrix.values,
            )
            return report.late_server_arrivals + report.late_client_updates

        l50, l99 = lateness(50), lateness(99.5)
        assert l99 < l50

    def test_percentile_planning_increases_delta(self, solved):
        _problem, assignment = solved
        jitter = LogNormalJitter(0.3)
        d50 = percentile_schedule(assignment, jitter, 50).delta
        d99 = percentile_schedule(assignment, jitter, 99).delta
        assert d99 > d50

    def test_repairs_restore_consistency(self, solved, schedule):
        # Even with heavy jitter, the timewarp repair path must leave all
        # server logs identical (consistency repaired at artifact cost).
        problem, _assignment = solved
        ops = poisson_workload(problem.n_clients, rate=0.05, horizon=200, seed=8)
        report = simulate_assignment(
            schedule, ops, jitter=LogNormalJitter(0.6), seed=9, allow_late=True
        )
        assert report.servers_consistent

    def test_base_matrix_shape_checked(self, schedule):
        with pytest.raises(SimulationError):
            DIASimulation(schedule, base_matrix=np.zeros((2, 2)))


class TestAcrossAlgorithms:
    @pytest.mark.parametrize("algorithm", [nearest_server, greedy])
    def test_any_assignment_is_simulatable(self, algorithm):
        matrix = small_world_latencies(20, seed=30)
        problem = ClientAssignmentProblem(
            matrix, random_placement(matrix, 3, seed=0)
        )
        assignment = algorithm(problem)
        schedule = OffsetSchedule(assignment)
        ops = uniform_workload(problem.n_clients, ops_per_client=2, seed=0)
        report = simulate_assignment(schedule, ops)
        assert report.healthy
        assert report.max_interaction_time == pytest.approx(
            max_interaction_path_length(assignment)
        )

    def test_better_assignment_gives_better_interactivity(self):
        # The end-to-end payoff: greedy's simulated interaction time is
        # no worse than nearest-server's.
        matrix = small_world_latencies(25, seed=31)
        problem = ClientAssignmentProblem(
            matrix, random_placement(matrix, 4, seed=0)
        )
        ops = uniform_workload(problem.n_clients, ops_per_client=1, seed=1)
        times = {}
        for fn in (nearest_server, greedy):
            schedule = OffsetSchedule(fn(problem))
            times[fn.__name__] = simulate_assignment(
                schedule, ops
            ).max_interaction_time
        assert times["greedy"] <= times["nearest_server"] + 1e-9


class TestRaiseForViolations:
    def test_healthy_run_silent(self, solved, schedule):
        problem, _assignment = solved
        ops = uniform_workload(problem.n_clients, ops_per_client=1, seed=10)
        report = simulate_assignment(schedule, ops)
        report.raise_for_violations()  # no exception

    def test_lateness_raises_consistency(self, solved, schedule):
        problem, _assignment = solved
        ops = poisson_workload(problem.n_clients, rate=0.02, horizon=300, seed=11)
        report = simulate_assignment(
            schedule, ops, jitter=LogNormalJitter(0.5), seed=12, allow_late=True
        )
        assert not report.healthy
        with pytest.raises(ConsistencyViolation):
            report.raise_for_violations()

    def test_unfair_report_raises_fairness(self):
        # Construct a synthetic report with fair=False directly.
        from repro.errors import FairnessViolation
        from repro.sim.dia import DIASimulationReport

        report = DIASimulationReport(
            delta=1.0,
            n_operations=1,
            n_messages=1,
            late_server_arrivals=0,
            late_client_updates=0,
            repairs=0,
            servers_consistent=True,
            fair=False,
            min_interaction_time=1.0,
            max_interaction_time=1.0,
        )
        with pytest.raises(FairnessViolation):
            report.raise_for_violations()


class TestAsymmetricMatrices:
    """The offset construction and simulator must handle directional
    latencies: d(u,v) != d(v,u)."""

    @pytest.fixture(scope="class")
    def asym_solved(self):
        from repro.net.latency import LatencyMatrix

        rng = np.random.default_rng(5)
        d = rng.uniform(5.0, 80.0, size=(20, 20))  # fully asymmetric
        np.fill_diagonal(d, 0.0)
        matrix = LatencyMatrix(d)
        problem = ClientAssignmentProblem(matrix, [0, 7, 13])
        return problem, greedy(problem)

    def test_schedule_feasible(self, asym_solved):
        _problem, assignment = asym_solved
        assert OffsetSchedule(assignment).check_constraints().feasible

    def test_healthy_run_with_interaction_time_d(self, asym_solved):
        problem, assignment = asym_solved
        d = max_interaction_path_length(assignment)
        schedule = OffsetSchedule(assignment)
        ops = poisson_workload(problem.n_clients, rate=0.05, horizon=200, seed=1)
        report = simulate_assignment(schedule, ops)
        assert report.healthy
        assert report.min_interaction_time == pytest.approx(d)
        assert report.max_interaction_time == pytest.approx(d)

    def test_delta_knee_asymmetric(self, asym_solved):
        from repro.experiments.delta_sweep import delta_sweep

        _problem, assignment = asym_solved
        points = delta_sweep(assignment, ratios=(0.9, 1.0, 1.1), seed=2)
        assert points[0].late_messages > 0
        assert points[1].late_messages == 0
        assert points[2].late_messages == 0
