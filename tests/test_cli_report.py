"""CLI `report` subcommand (full-evaluation orchestration)."""

import pytest

from repro.cli import main


class TestReportCommand:
    def test_quick_report_to_directory(self, capsys, tmp_path):
        out_dir = tmp_path / "results"
        code = main(["report", "--profile", "quick", "--out", str(out_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "[report]" in out
        assert "Paper claims" in out
        assert (out_dir / "report.txt").exists()
        assert (out_dir / "fig8.json").exists()

    def test_report_without_directory(self, capsys):
        code = main(["report", "--profile", "quick"])
        assert code == 0
        assert "Fig.10" in capsys.readouterr().out

    def test_report_with_ablations(self, capsys):
        code = main(["report", "--profile", "quick", "--ablations"])
        assert code == 0
        assert "Ablation" in capsys.readouterr().out
