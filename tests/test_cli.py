"""Tests for the CLI (dia-cap / python -m repro)."""

import numpy as np
import pytest

from repro.cli import main


class TestDataset:
    def test_describe(self, capsys):
        assert main(["dataset", "--nodes", "50", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "50 nodes" in out

    def test_write_npy(self, tmp_path, capsys):
        out_path = tmp_path / "m.npy"
        assert (
            main(["dataset", "--nodes", "20", "--out", str(out_path)]) == 0
        )
        matrix = np.load(out_path)
        assert matrix.shape == (20, 20)

    def test_write_text(self, tmp_path):
        out_path = tmp_path / "m.txt"
        assert main(["dataset", "--nodes", "10", "--out", str(out_path)]) == 0
        assert out_path.exists()

    def test_mit_kind(self, capsys):
        assert main(["dataset", "--nodes", "30", "--kind", "mit"]) == 0


class TestSolve:
    @pytest.mark.parametrize(
        "algorithm", ["nearest-server", "longest-first-batch", "greedy"]
    )
    def test_algorithms(self, capsys, algorithm):
        code = main(
            [
                "solve",
                "--nodes",
                "60",
                "--servers",
                "6",
                "--algorithm",
                algorithm,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "normalized interactivity" in out

    def test_capacitated(self, capsys):
        code = main(
            [
                "solve",
                "--nodes",
                "60",
                "--servers",
                "6",
                "--capacity",
                "15",
                "--algorithm",
                "distributed-greedy",
            ]
        )
        assert code == 0

    def test_kcenter_placement(self, capsys):
        code = main(
            [
                "solve",
                "--nodes",
                "60",
                "--servers",
                "6",
                "--placement",
                "k-center-b",
            ]
        )
        assert code == 0


class TestFig:
    def test_fig7(self, capsys, monkeypatch):
        assert main(["fig", "7", "--profile", "quick"]) == 0
        assert "Fig.7" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig", "8", "--profile", "quick"]) == 0
        assert "Fig.8" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["fig", "9", "--profile", "quick"]) == 0
        assert "Fig.9" in capsys.readouterr().out

    def test_fig10(self, capsys):
        assert main(["fig", "10", "--profile", "quick"]) == 0
        assert "Fig.10" in capsys.readouterr().out

    def test_fig7_kcenter_panel(self, capsys):
        assert (
            main(["fig", "7", "--profile", "quick", "--placement", "k-center-a"])
            == 0
        )

    def test_fig7_workers_flag_matches_serial(self, capsys):
        assert main(["fig", "7", "--profile", "quick"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["fig", "7", "--profile", "quick", "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out


class TestClaims:
    def test_quick_claims_pass(self, capsys):
        assert main(["claims", "--profile", "quick"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "FAIL" not in out


class TestSimulate:
    def test_no_jitter_healthy(self, capsys):
        code = main(
            ["simulate", "--nodes", "40", "--servers", "4", "--ops-rate", "0.01"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "healthy: True" in out

    def test_jitter_with_percentile(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes",
                "40",
                "--servers",
                "4",
                "--ops-rate",
                "0.01",
                "--jitter-sigma",
                "0.2",
                "--percentile",
                "99",
            ]
        )
        assert code == 0


class TestMeta:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestAblate:
    @pytest.mark.parametrize(
        "study", ["dga-initial", "greedy-cost", "placement"]
    )
    def test_matrix_studies(self, capsys, study):
        code = main(
            [
                "ablate",
                study,
                "--nodes",
                "70",
                "--servers",
                "7",
                "--runs",
                "2",
            ]
        )
        assert code == 0
        assert "Ablation" in capsys.readouterr().out

    def test_triangle_study(self, capsys):
        code = main(
            ["ablate", "triangle", "--nodes", "50", "--servers", "5", "--runs", "1"]
        )
        assert code == 0
        assert "violation rate" in capsys.readouterr().out

    def test_estimated_latencies_study(self, capsys):
        code = main(
            ["ablate", "estimated-latencies", "--nodes", "60", "--servers", "6"]
        )
        assert code == 0
        assert "Vivaldi" in capsys.readouterr().out


class TestChurn:
    def test_policies_compared(self, capsys):
        code = main(
            [
                "churn",
                "--nodes",
                "80",
                "--servers",
                "8",
                "--events",
                "60",
                "--rebalance-every",
                "15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nearest-server joins" in out
        assert "rebalance" in out


class TestFigPersistence:
    def test_save_then_load(self, capsys, tmp_path):
        path = tmp_path / "series.json"
        assert (
            main(["fig", "9", "--profile", "quick", "--save", str(path)]) == 0
        )
        assert path.exists()
        capsys.readouterr()
        assert main(["fig", "9", "--load", str(path)]) == 0
        assert "Fig.9" in capsys.readouterr().out


class TestAnalyze:
    def test_synthetic_matrix(self, capsys):
        assert main(["analyze", "--nodes", "60", "--clusters", "4"]) == 0
        out = capsys.readouterr().out
        assert "stretch vs metric closure" in out
        assert "k-medoids" in out

    def test_load_file(self, capsys, tmp_path):
        path = tmp_path / "m.npy"
        assert main(["dataset", "--nodes", "30", "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["analyze", "--load", str(path), "--clusters", "3"]) == 0
        assert "asymmetry" in capsys.readouterr().out


class TestFaults:
    def test_fault_injection_run(self, capsys):
        code = main(
            [
                "faults",
                "--nodes",
                "80",
                "--servers",
                "6",
                "--events",
                "80",
                "--mttf",
                "40",
                "--mttr",
                "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "crash(es)" in out
        assert "nearest joins" in out
        assert "greedy joins" in out
        assert "mean D" in out
        assert "evacuated" in out


class TestChaos:
    def test_smoke_verdict_ok(self, capsys, tmp_path):
        code = main(
            [
                "chaos",
                "--nodes",
                "50",
                "--servers",
                "4",
                "--events",
                "30",
                "--kill-at",
                "7",
                "19",
                "--checkpoint-every",
                "8",
                "--seed",
                "0",
                "--dir",
                str(tmp_path / "chaos"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: OK" in out
        assert "kill  replayed" in out

    def test_default_temp_dir_is_removed(self, capsys):
        import glob
        import os
        import tempfile

        code = main(
            ["chaos", "--nodes", "40", "--servers", "3", "--events", "12",
             "--kill-at", "5", "--no-torn-tail"]
        )
        assert code == 0
        assert "verdict: OK" in capsys.readouterr().out
        # No leftover working directories.
        leftovers = glob.glob(
            os.path.join(tempfile.gettempdir(), "repro-chaos-*")
        )
        assert leftovers == []


class TestServiceCommands:
    def test_loadgen_spawn_verified(self, capsys):
        code = main(
            ["loadgen", "--spawn", "--events", "1000", "--batch-size", "100",
             "--nodes", "60", "--servers", "5", "--seed", "1",
             "--fault-every", "97", "--verify"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "VERIFIED (wire == library)" in out
        assert "events/s" in out

    def test_loadgen_wal_session(self, capsys):
        code = main(
            ["loadgen", "--spawn", "--events", "500", "--nodes", "60",
             "--servers", "5", "--durability", "wal", "--verify"]
        )
        assert code == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_loadgen_min_throughput_failure(self, capsys):
        # An absurd floor must flip the exit code.
        code = main(
            ["loadgen", "--spawn", "--events", "300", "--nodes", "60",
             "--servers", "5", "--min-throughput", "1e12"]
        )
        assert code == 1
        assert "below the required" in capsys.readouterr().err

    def test_serve_then_drive_over_tcp(self):
        # Exercise `serve` end to end: spawn the CLI in a subprocess on
        # an ephemeral port, read the bound address off its stdout, and
        # drive it with the client.
        import os
        import re
        import subprocess
        import sys

        from repro.service import ServiceClient

        env = dict(os.environ)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"listening on [\d.]+:(\d+)", line)
            assert match, f"unexpected server banner: {line!r}"
            port = int(match.group(1))
            with ServiceClient("127.0.0.1", port) as client:
                assert client.ping()["pong"] is True
                sid = client.open_session(nodes=40, n_servers=4)["session"]
                result = client.call("join", session=sid, node=1)
                assert result["outcome"] == "assigned"
        finally:
            proc.terminate()
            proc.wait(10)


class TestSolveBackend:
    def test_explicit_numpy_backend(self, capsys):
        code = main(
            [
                "solve",
                "--nodes",
                "40",
                "--servers",
                "4",
                "--algorithm",
                "greedy",
                "--backend",
                "numpy",
            ]
        )
        assert code == 0
        assert "normalized interactivity" in capsys.readouterr().out

    def test_backend_choices_validated(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "solve",
                    "--nodes",
                    "40",
                    "--servers",
                    "4",
                    "--backend",
                    "gpu",
                ]
            )

    def test_numba_backend_fails_cleanly_when_absent(self, capsys):
        from repro.kernels import numba_available

        if numba_available():
            pytest.skip("numba importable here; the error path is unreachable")
        code = main(
            [
                "solve",
                "--nodes",
                "40",
                "--servers",
                "4",
                "--algorithm",
                "greedy",
                "--backend",
                "numba",
            ]
        )
        assert code != 0
        err = capsys.readouterr().err
        assert "numba" in err
