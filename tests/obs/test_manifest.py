"""Tests for repro.obs.manifest (provenance, fingerprints, ambience)."""

import json

import pytest

from repro._version import __version__
from repro.net.latency import LatencyMatrix
from repro.obs.manifest import (
    MANIFEST_ENV,
    MANIFEST_VERSION,
    RunManifest,
    build_manifest,
    current_manifest,
    fingerprint_matrix,
    manifest_scope,
    set_current_manifest,
)


@pytest.fixture(autouse=True)
def _clear_ambient():
    yield
    set_current_manifest(None)


class TestFingerprint:
    def test_stable_across_calls(self):
        matrix = LatencyMatrix.random_metric(20, seed=3)
        assert fingerprint_matrix(matrix) == fingerprint_matrix(matrix)

    def test_same_content_same_fingerprint(self):
        a = LatencyMatrix.random_metric(20, seed=3)
        b = LatencyMatrix.random_metric(20, seed=3)
        assert fingerprint_matrix(a) == fingerprint_matrix(b)

    def test_different_content_differs(self):
        a = LatencyMatrix.random_metric(20, seed=3)
        b = LatencyMatrix.random_metric(20, seed=4)
        assert fingerprint_matrix(a) != fingerprint_matrix(b)

    def test_format(self):
        fp = fingerprint_matrix(LatencyMatrix.random_metric(8, seed=0))
        assert len(fp) == 16
        int(fp, 16)  # hex


class TestBuildManifest:
    def test_core_fields(self):
        matrix = LatencyMatrix.random_metric(10, seed=1)
        manifest = build_manifest(
            command="fig",
            config={"figure": "7"},
            seeds={"seed": 0},
            matrix=matrix,
        )
        assert manifest.command == "fig"
        assert manifest.config == {"figure": "7"}
        assert manifest.seeds == {"seed": 0}
        assert manifest.dataset_fingerprint == fingerprint_matrix(matrix)
        assert "python" in manifest.platform

    def test_volatile_autocaptured(self):
        manifest = build_manifest(command="x", workers=4)
        for key in ("created_at", "hostname", "pid", "argv"):
            assert key in manifest.volatile
        assert manifest.volatile["workers"] == 4

    def test_finalize_records_wall(self):
        manifest = build_manifest(command="x")
        manifest.finalize(wall_seconds=1.23456789, extra_fact="ok")
        assert manifest.volatile["wall_seconds"] == pytest.approx(1.234568)
        assert manifest.volatile["extra_fact"] == "ok"


class TestToDict:
    def test_deterministic_core_excludes_volatile(self, monkeypatch):
        monkeypatch.delenv(MANIFEST_ENV, raising=False)
        manifest = build_manifest(command="x", config={"a": 1})
        body = manifest.to_dict()
        assert "volatile" not in body
        assert body["manifest_version"] == MANIFEST_VERSION
        assert body["package_version"] == __version__
        json.dumps(body)  # JSON-able

    def test_two_builds_same_core(self, monkeypatch):
        monkeypatch.delenv(MANIFEST_ENV, raising=False)
        a = build_manifest(command="x", config={"a": 1}, seeds={"seed": 7})
        b = build_manifest(command="x", config={"a": 1}, seeds={"seed": 7})
        assert a.to_dict() == b.to_dict()

    def test_env_gates_volatile(self, monkeypatch):
        manifest = build_manifest(command="x")
        monkeypatch.setenv(MANIFEST_ENV, "full")
        assert "volatile" in manifest.to_dict()
        monkeypatch.setenv(MANIFEST_ENV, "")
        assert "volatile" not in manifest.to_dict()

    def test_explicit_override_beats_env(self, monkeypatch):
        manifest = build_manifest(command="x")
        monkeypatch.delenv(MANIFEST_ENV, raising=False)
        assert "volatile" in manifest.to_dict(include_volatile=True)
        monkeypatch.setenv(MANIFEST_ENV, "full")
        assert "volatile" not in manifest.to_dict(include_volatile=False)


class TestAmbientManifest:
    def test_none_by_default(self):
        assert current_manifest() is None

    def test_set_and_restore(self):
        manifest = RunManifest(command="x")
        assert set_current_manifest(manifest) is None
        assert current_manifest() is manifest
        assert set_current_manifest(None) is manifest
        assert current_manifest() is None

    def test_scope(self):
        manifest = RunManifest(command="x")
        with manifest_scope(manifest) as active:
            assert active is manifest
            assert current_manifest() is manifest
        assert current_manifest() is None

    def test_dataset_for_stamps_ambient(self):
        from repro.experiments import profile
        from repro.experiments.figures import dataset_for

        prof = profile("quick")
        manifest = RunManifest(command="fig")
        with manifest_scope(manifest):
            matrix = dataset_for(prof)
        assert manifest.dataset_fingerprint == fingerprint_matrix(matrix)
