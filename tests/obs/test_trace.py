"""Tests for repro.obs.trace (spans, nesting, sinks, events)."""

import json

import pytest

from repro.errors import DatasetError
from repro.obs.sink import (
    NULL_SINK,
    JsonlSink,
    MemorySink,
    NullSink,
    open_sink,
    read_jsonl,
)
from repro.obs.trace import (
    _NOOP_SPAN,
    active_sink,
    emit_event,
    install_sink,
    span,
    tracing,
    tracing_enabled,
    uninstall_sink,
)


@pytest.fixture(autouse=True)
def _restore_sink():
    """Every test in this module leaves the null sink installed."""
    yield
    uninstall_sink(close=True)


class TestNullSinkFastPath:
    def test_disabled_by_default(self):
        assert not tracing_enabled()
        assert active_sink() is NULL_SINK

    def test_span_returns_shared_noop(self):
        assert span("anything", field=1) is _NOOP_SPAN
        assert span("other") is _NOOP_SPAN

    def test_noop_span_accepts_set(self):
        with span("x") as s:
            s.set(result=42)  # must not raise

    def test_emit_event_dropped(self):
        emit_event("metrics", metrics={})  # must not raise


class TestSpanNesting:
    def test_parent_child_ids(self):
        sink = MemorySink()
        install_sink(sink)
        with span("outer"):
            with span("inner"):
                pass
            with span("inner"):
                pass
        events = sink.events
        assert [e["name"] for e in events] == ["inner", "inner", "outer"]
        outer = events[2]
        assert outer["parent_id"] is None
        assert outer["depth"] == 0
        for inner in events[:2]:
            assert inner["parent_id"] == outer["span_id"]
            assert inner["depth"] == 1

    def test_span_ids_unique(self):
        sink = MemorySink()
        install_sink(sink)
        for _ in range(5):
            with span("s"):
                pass
        ids = [e["span_id"] for e in sink.events]
        assert len(set(ids)) == 5

    def test_fields_recorded(self):
        sink = MemorySink()
        install_sink(sink)
        with span("s", clients=40, evaluator="engine") as s:
            s.set(moves=3)
        event = sink.events[0]
        assert event["clients"] == 40
        assert event["evaluator"] == "engine"
        assert event["moves"] == 3

    def test_timestamps_monotonic_from_origin(self):
        sink = MemorySink()
        install_sink(sink)
        with span("a"):
            pass
        with span("b"):
            pass
        a, b = sink.events
        assert a["start"] >= 0.0
        assert b["start"] >= a["start"]
        assert a["duration"] >= 0.0

    def test_child_within_parent_extent(self):
        sink = MemorySink()
        install_sink(sink)
        with span("outer"):
            with span("inner"):
                pass
        inner, outer = sink.events
        assert inner["start"] >= outer["start"]
        assert (
            inner["start"] + inner["duration"]
            <= outer["start"] + outer["duration"] + 1e-9
        )


class TestInstallUninstall:
    def test_install_returns_previous(self):
        first = MemorySink()
        second = MemorySink()
        assert install_sink(first) is NULL_SINK
        assert install_sink(second) is first
        assert uninstall_sink(close=True) is second

    def test_tracing_scope(self):
        sink = MemorySink()
        with tracing(sink):
            assert tracing_enabled()
            with span("s"):
                pass
        assert not tracing_enabled()
        assert len(sink.events) == 1

    def test_emit_event_adds_timestamp(self):
        sink = MemorySink()
        install_sink(sink)
        emit_event("metrics", metrics={"counters": {}})
        event = sink.events[0]
        assert event["type"] == "metrics"
        assert event["ts"] >= 0.0


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing(JsonlSink(path)):
            with span("outer", x=1):
                with span("inner"):
                    pass
            emit_event("metrics", metrics={"counters": {"c": 1}})
        events = read_jsonl(path)
        assert len(events) == 3
        assert {e["type"] for e in events} == {"span", "metrics"}
        # every line is standalone JSON
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_flushes_on_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, flush_every=10_000)
        install_sink(sink)
        with span("s"):
            pass
        uninstall_sink(close=True)
        assert len(read_jsonl(path)) == 1

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_torn_final_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span", "name": "a"}\n{"type": "sp')
        with pytest.warns(RuntimeWarning, match="skipping undecodable"):
            events = read_jsonl(path)
        assert len(events) == 1

    def test_byte_truncated_file_yields_valid_prefix(self, tmp_path):
        """Regression: a trace cut at an arbitrary byte offset (disk
        full, SIGKILL mid-write) must return every intact line."""
        path = tmp_path / "trace.jsonl"
        with tracing(JsonlSink(path)):
            for name in ("a", "b", "c"):
                with span(name):
                    pass
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])  # cut into the last line
        with pytest.warns(RuntimeWarning, match="torn or truncated"):
            events = read_jsonl(path)
        assert len(events) == 2
        assert all(e["type"] == "span" for e in events)


class TestOpenSink:
    @pytest.mark.parametrize("spec", [None, "", "null", "off", "none", "NULL"])
    def test_null_specs(self, spec):
        assert open_sink(spec) is NULL_SINK

    def test_memory_spec(self):
        assert isinstance(open_sink("memory"), MemorySink)

    def test_path_spec(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = open_sink(str(path))
        assert isinstance(sink, JsonlSink)
        sink.close()

    def test_null_sink_is_singleton_instance(self):
        assert isinstance(NULL_SINK, NullSink)


class TestTelemetryNeverChangesResults:
    def test_algorithm_identical_with_and_without_tracing(self):
        from repro.algorithms import greedy
        from repro.core import ClientAssignmentProblem
        from repro.net.latency import LatencyMatrix

        matrix = LatencyMatrix.random_metric(30, seed=5)
        problem = ClientAssignmentProblem(matrix, servers=[0, 3, 7])
        baseline = greedy(problem)
        with tracing(MemorySink()):
            traced = greedy(problem)
        assert (traced.server_of == baseline.server_of).all()


class TestLoadTraceErrors:
    def test_empty_file_rejected(self, tmp_path):
        from repro.obs.report import load_trace

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_trace(path)
