"""Telemetry-equivalence: tracing and metrics never change results.

The determinism contract (docs/observability.md): the figure JSON a run
produces is byte-identical whether tracing is off, writing to a JSONL
file, or buffering in memory — and at any worker count.
"""

import json

import pytest

from repro.cli import main


def _run_fig(tmp_path, name, *cli_args):
    out = tmp_path / f"{name}.json"
    code = main(
        ["fig", "9", "--profile", "quick", "--save", str(out), *cli_args]
    )
    assert code == 0
    return out.read_bytes()


class TestFigureJsonEquivalence:
    def test_traced_equals_untraced(self, tmp_path, capsys):
        plain = _run_fig(tmp_path, "plain")
        traced = _run_fig(
            tmp_path, "traced", "--trace", str(tmp_path / "t.jsonl")
        )
        assert plain == traced

    def test_serial_equals_parallel(self, tmp_path, capsys):
        serial = _run_fig(tmp_path, "serial", "--workers", "0")
        parallel = _run_fig(
            tmp_path,
            "parallel",
            "--workers", "4",
            "--trace", str(tmp_path / "t4.jsonl"),
        )
        assert serial == parallel

    def test_repeat_runs_byte_identical(self, tmp_path, capsys):
        first = _run_fig(tmp_path, "first")
        second = _run_fig(tmp_path, "second")
        assert first == second

    def test_manifest_attached_and_core_only(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.obs.manifest import MANIFEST_ENV

        monkeypatch.delenv(MANIFEST_ENV, raising=False)
        payload = json.loads(_run_fig(tmp_path, "with_manifest"))
        manifest = payload["manifest"]
        assert manifest["command"] == "fig"
        assert manifest["dataset_fingerprint"]
        assert manifest["config"]["figure"] == "9"
        # Volatile facts (pid, timestamps) must not leak into results.
        assert "volatile" not in manifest
        # Execution mechanics must not shape the deterministic core.
        for key in ("workers", "save", "load", "trace"):
            assert key not in manifest["config"]

    def test_manifest_volatile_opt_in(self, tmp_path, capsys, monkeypatch):
        from repro.obs.manifest import MANIFEST_ENV

        monkeypatch.setenv(MANIFEST_ENV, "full")
        payload = json.loads(_run_fig(tmp_path, "full_manifest"))
        assert "volatile" in payload["manifest"]

    def test_old_files_without_manifest_still_load(self, tmp_path, capsys,
                                                   monkeypatch):
        from repro.experiments import load_manifest, load_result

        monkeypatch.delenv("REPRO_OBS_MANIFEST", raising=False)
        path = tmp_path / "legacy.json"
        payload = json.loads(_run_fig(tmp_path, "modern"))
        del payload["manifest"]
        path.write_text(json.dumps(payload))
        result = load_result(path)  # must not raise
        assert result
        assert load_manifest(path) is None

    def test_load_manifest_reads_provenance(self, tmp_path, capsys):
        from repro.experiments import load_manifest

        _run_fig(tmp_path, "prov")
        manifest = load_manifest(tmp_path / "prov.json")
        assert manifest is not None
        assert manifest["command"] == "fig"


class TestRegistryEquivalence:
    def test_null_registry_identical_results(self):
        from repro.algorithms import distributed_greedy
        from repro.core import ClientAssignmentProblem
        from repro.net.latency import LatencyMatrix
        from repro.obs.metrics import NullMetricsRegistry, use_registry

        matrix = LatencyMatrix.random_metric(30, seed=11)
        problem = ClientAssignmentProblem(matrix, servers=[0, 4, 9])
        baseline = distributed_greedy(problem, seed=1)
        with use_registry(NullMetricsRegistry()):
            nulled = distributed_greedy(problem, seed=1)
        assert (baseline.server_of == nulled.server_of).all()

    @pytest.mark.parametrize("workers", [0, 2])
    def test_trace_file_valid_at_any_worker_count(self, tmp_path, capsys,
                                                  workers):
        from repro.obs.sink import read_jsonl

        trace = tmp_path / "t.jsonl"
        code = main(
            [
                "fig", "9", "--profile", "quick",
                "--workers", str(workers),
                "--trace", str(trace),
            ]
        )
        assert code == 0
        events = read_jsonl(trace)
        types = {e["type"] for e in events}
        assert {"span", "metrics", "manifest"} <= types
        # Exactly one root span, named for the CLI command.
        roots = [
            e for e in events
            if e["type"] == "span" and e["parent_id"] is None
        ]
        assert [r["name"] for r in roots] == ["cli.fig"]
