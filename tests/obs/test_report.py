"""Tests for repro.obs.report (trace summarization and rendering)."""

import pytest

from repro.obs.report import render_summary, summarize, summarize_file


def _span(name, span_id, parent_id, depth, start, duration, **fields):
    event = {
        "type": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "depth": depth,
        "start": start,
        "duration": duration,
    }
    event.update(fields)
    return event


@pytest.fixture
def nested_trace():
    """cli.fig (10 s) -> fig.fig7 (8 s) -> pool.map_trials (2x3 s)."""
    return [
        _span("pool.map_trials", 3, 2, 2, 1.0, 3.0),
        _span("pool.map_trials", 4, 2, 2, 4.0, 3.0),
        _span("fig.fig7", 2, 1, 1, 0.5, 8.0),
        _span("cli.fig", 1, None, 0, 0.0, 10.0),
        {
            "type": "metrics",
            "ts": 10.0,
            "metrics": {
                "counters": {"pool.trials": 6},
                "gauges": {},
                "histograms": {},
            },
        },
        {
            "type": "manifest",
            "ts": 10.0,
            "manifest": {
                "command": "fig",
                "package_version": "1.0.0",
                "dataset_fingerprint": "abcd1234abcd1234",
            },
        },
    ]


class TestSummarize:
    def test_wall_and_coverage(self, nested_trace):
        summary = summarize(nested_trace)
        assert summary.n_events == 6
        assert summary.n_spans == 4
        assert summary.wall_seconds == pytest.approx(10.0)
        assert summary.root_seconds == pytest.approx(10.0)
        assert summary.coverage == pytest.approx(1.0)
        assert summary.root_name == "cli.fig"

    def test_phases_are_root_children(self, nested_trace):
        summary = summarize(nested_trace)
        by_name = {row.name: row for row in summary.phases}
        assert "fig.fig7" in by_name
        fig_row = by_name["fig.fig7"]
        assert fig_row.calls == 1
        assert fig_row.total_seconds == pytest.approx(8.0)
        # self time excludes the two pool spans
        assert fig_row.self_seconds == pytest.approx(2.0)
        # root's own untracked remainder shows up as a synthetic row
        assert "(cli.fig self)" in by_name
        assert by_name["(cli.fig self)"].total_seconds == pytest.approx(2.0)

    def test_hottest_ranked_by_self_time(self, nested_trace):
        summary = summarize(nested_trace)
        assert summary.hottest[0].name == "pool.map_trials"
        assert summary.hottest[0].self_seconds == pytest.approx(6.0)

    def test_top_limits_hottest(self, nested_trace):
        summary = summarize(nested_trace, top=1)
        assert len(summary.hottest) == 1

    def test_metrics_and_manifest_extracted(self, nested_trace):
        summary = summarize(nested_trace)
        assert summary.metrics["counters"] == {"pool.trials": 6}
        assert summary.manifest["command"] == "fig"

    def test_multiple_metrics_events_merged(self, nested_trace):
        extra = {
            "type": "metrics",
            "ts": 11.0,
            "metrics": {
                "counters": {"pool.trials": 4},
                "gauges": {},
                "histograms": {},
            },
        }
        summary = summarize(nested_trace + [extra])
        assert summary.metrics["counters"] == {"pool.trials": 10}

    def test_no_spans(self):
        summary = summarize([{"type": "metrics", "ts": 0.0, "metrics": {}}])
        assert summary.n_spans == 0
        assert summary.wall_seconds == 0.0

    def test_multiple_roots(self):
        events = [
            _span("a", 1, None, 0, 0.0, 1.0),
            _span("b", 2, None, 0, 1.0, 1.0),
        ]
        summary = summarize(events)
        assert summary.root_name is None
        assert {row.name for row in summary.phases} == {"a", "b"}


class TestRenderSummary:
    def test_contains_key_sections(self, nested_trace):
        text = render_summary(summarize(nested_trace))
        assert "per-phase breakdown" in text
        assert "hottest spans by self time" in text
        assert "merged metrics" in text
        assert "pool.trials = 6" in text
        assert "manifest: command='fig'" in text
        assert "dataset abcd1234abcd1234" in text

    def test_renders_without_metrics_or_manifest(self):
        events = [_span("a", 1, None, 0, 0.0, 1.0)]
        text = render_summary(summarize(events))
        assert "merged metrics" not in text
        assert "manifest:" not in text


class TestSummarizeFile:
    def test_round_trip_through_cli_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "fig", "9", "--profile", "quick",
                    "--trace", str(trace_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        summary = summarize_file(trace_path)
        assert summary.root_name == "cli.fig"
        # The span tree must account for (nearly) the whole trace.
        assert summary.coverage >= 0.9
        assert summary.metrics["counters"]["dga.runs"] >= 1
        assert summary.manifest is not None
        assert summary.manifest["dataset_fingerprint"]

    def test_obs_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.jsonl"
        assert (
            main(
                ["fig", "9", "--profile", "quick", "--trace", str(trace_path)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", str(trace_path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "root span: cli.fig" in out
        assert "per-phase breakdown" in out
        assert "dga.runs" in out


class TestKernelTiming:
    def _trace_with_kernels(self):
        return [
            _span("cli.solve", 1, None, 0, 0.0, 1.0),
            {
                "type": "metrics",
                "ts": 1.0,
                "metrics": {
                    "counters": {
                        "kernel.numpy.move_context.calls": 40,
                        "kernel.numpy.move_context.seconds": 0.02,
                        "kernel.numpy.reduction_top2.calls": 7,
                        "kernel.numpy.reduction_top2.seconds": 0.001,
                        "other.counter": 3,
                    },
                    "gauges": {},
                    "histograms": {},
                },
            },
        ]

    def test_kernel_section_rendered(self):
        text = render_summary(summarize(self._trace_with_kernels()))
        assert "kernel timing (per backend)" in text
        assert "numpy.move_context" in text
        assert "numpy.reduction_top2" in text
        # Sorted within a backend by total seconds, descending.
        assert text.index("numpy.move_context") < text.index(
            "numpy.reduction_top2"
        )

    def test_no_kernel_counters_no_section(self):
        events = [_span("a", 1, None, 0, 0.0, 1.0)]
        assert "kernel timing" not in render_summary(summarize(events))

    def test_solve_trace_carries_kernel_counters(self, tmp_path, capsys):
        import os

        from repro.cli import main

        trace_path = tmp_path / "trace.jsonl"
        os.environ["REPRO_OBS_TRACE"] = str(trace_path)
        try:
            assert (
                main(
                    [
                        "solve", "--nodes", "50", "--servers", "5",
                        "--algorithm", "greedy", "--backend", "numpy",
                    ]
                )
                == 0
            )
        finally:
            os.environ.pop("REPRO_OBS_TRACE", None)
        capsys.readouterr()
        assert main(["obs", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "kernel timing (per backend)" in out
        assert "numpy.reduction_top2" in out
