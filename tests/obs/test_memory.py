"""Peak-RSS tracking and the trace report's memory section."""

from __future__ import annotations

import sys

from repro.obs import (
    MetricsRegistry,
    PEAK_RSS_GAUGE,
    format_bytes,
    peak_rss_bytes,
    record_peak_rss,
    use_registry,
)
from repro.obs.report import render_summary, summarize


def test_peak_rss_is_positive_where_resource_exists():
    rss = peak_rss_bytes()
    if sys.platform.startswith(("linux", "darwin")):
        # A Python process has resident megabytes at minimum.
        assert rss > 1024 * 1024
    else:
        assert rss >= 0


def test_record_peak_rss_sets_the_gauge():
    metrics = MetricsRegistry()
    value = record_peak_rss(metrics)
    assert value == metrics.snapshot()["gauges"][PEAK_RSS_GAUGE]
    assert value == peak_rss_bytes()


def test_record_peak_rss_defaults_to_ambient_registry():
    metrics = MetricsRegistry()
    with use_registry(metrics):
        value = record_peak_rss()
    assert metrics.snapshot()["gauges"][PEAK_RSS_GAUGE] == value


def test_format_bytes():
    assert format_bytes(0) == "0 B"
    assert format_bytes(512) == "512 B"
    assert format_bytes(2048) == "2.00 KiB"
    assert format_bytes(int(1.5 * 2**30)) == "1.50 GiB"


def _metrics_event(counters=None, gauges=None):
    return {
        "type": "metrics",
        "ts": 1.0,
        "metrics": {
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": {},
        },
    }


def test_report_memory_section_renders_rss_and_provider_work():
    events = [
        _metrics_event(
            counters={
                "provider.coordinate.calls": 3,
                "provider.coordinate.rows": 120,
                "provider.coordinate.elements": 960,
            },
            gauges={PEAK_RSS_GAUGE: int(1.5 * 2**30)},
        )
    ]
    text = render_summary(summarize(events))
    assert "memory:" in text
    assert "peak RSS: 1.50 GiB" in text
    assert "coordinate provider: 3 block calls, 120 rows, 960 elements" in text


def test_report_memory_section_absent_without_signals():
    text = render_summary(summarize([_metrics_event(counters={"x": 1})]))
    assert "memory:" not in text
