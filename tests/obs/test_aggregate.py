"""Tests for repro.obs.aggregate (snapshot deltas, merges, pool flow)."""

import pytest

from repro.errors import InvalidParameterError
from repro.obs.aggregate import (
    empty_snapshot,
    merge_into_registry,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.metrics import MetricsRegistry


def _reg(counters=(), hist_values=()):
    reg = MetricsRegistry()
    for name, value in counters:
        reg.counter(name).inc(value)
    for name, value in hist_values:
        reg.histogram(name, bounds=(1.0, 10.0)).observe(value)
    return reg


class TestSnapshotDelta:
    def test_counters_subtract(self):
        reg = _reg(counters=[("c", 5)])
        before = reg.snapshot()
        reg.counter("c").inc(3)
        reg.counter("new").inc(2)
        delta = snapshot_delta(reg.snapshot(), before)
        assert delta["counters"] == {"c": 3, "new": 2}

    def test_unchanged_instruments_dropped(self):
        reg = _reg(counters=[("c", 5)], hist_values=[("h", 0.5)])
        before = reg.snapshot()
        delta = snapshot_delta(reg.snapshot(), before)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    def test_histograms_subtract_per_bucket(self):
        reg = _reg(hist_values=[("h", 0.5)])
        before = reg.snapshot()
        reg.histogram("h").observe(5.0)
        reg.histogram("h").observe(50.0)
        delta = snapshot_delta(reg.snapshot(), before)
        assert delta["histograms"]["h"]["counts"] == [0, 1, 1]
        assert delta["histograms"]["h"]["count"] == 2
        assert delta["histograms"]["h"]["sum"] == pytest.approx(55.0)

    def test_bounds_change_rejected(self):
        before = {
            "counters": {},
            "gauges": {},
            "histograms": {
                "h": {"bounds": [1.0], "counts": [0, 0], "sum": 0, "count": 0}
            },
        }
        after = {
            "counters": {},
            "gauges": {},
            "histograms": {
                "h": {"bounds": [2.0], "counts": [1, 0], "sum": 1, "count": 1}
            },
        }
        with pytest.raises(InvalidParameterError):
            snapshot_delta(after, before)

    def test_delta_from_empty_is_snapshot(self):
        reg = _reg(counters=[("c", 2)], hist_values=[("h", 3.0)])
        delta = snapshot_delta(reg.snapshot(), empty_snapshot())
        assert delta["counters"] == {"c": 2}
        assert delta["histograms"]["h"]["count"] == 1


class TestMergeSnapshots:
    def test_counters_add(self):
        left = _reg(counters=[("a", 1), ("b", 2)]).snapshot()
        right = _reg(counters=[("b", 3), ("c", 4)]).snapshot()
        merged = merge_snapshots(left, right)
        assert merged["counters"] == {"a": 1, "b": 5, "c": 4}

    def test_commutative(self):
        left = _reg(counters=[("a", 1)], hist_values=[("h", 0.5)]).snapshot()
        right = _reg(counters=[("a", 9)], hist_values=[("h", 5.0)]).snapshot()
        assert merge_snapshots(left, right) == merge_snapshots(right, left)

    def test_gauges_keep_max(self):
        left = {"counters": {}, "gauges": {"g": 3}, "histograms": {}}
        right = {"counters": {}, "gauges": {"g": 7}, "histograms": {}}
        assert merge_snapshots(left, right)["gauges"] == {"g": 7}
        assert merge_snapshots(right, left)["gauges"] == {"g": 7}

    def test_histograms_elementwise(self):
        left = _reg(hist_values=[("h", 0.5), ("h", 5.0)]).snapshot()
        right = _reg(hist_values=[("h", 50.0)]).snapshot()
        merged = merge_snapshots(left, right)
        assert merged["histograms"]["h"]["counts"] == [1, 1, 1]
        assert merged["histograms"]["h"]["count"] == 3

    def test_mismatched_bounds_rejected(self):
        left = _reg(hist_values=[("h", 1.0)]).snapshot()
        right = MetricsRegistry()
        right.histogram("h", bounds=(2.0,)).observe(1.0)
        with pytest.raises(InvalidParameterError):
            merge_snapshots(left, right.snapshot())

    def test_empty_is_identity(self):
        snap = _reg(counters=[("a", 1)], hist_values=[("h", 0.5)]).snapshot()
        assert merge_snapshots(snap, empty_snapshot()) == merge_snapshots(
            empty_snapshot(), snap
        )


class TestMergeIntoRegistry:
    def test_counters_and_histograms_fold_in(self):
        target = _reg(counters=[("c", 1)], hist_values=[("h", 0.5)])
        delta = _reg(counters=[("c", 4)], hist_values=[("h", 5.0)]).snapshot()
        merge_into_registry(delta, target)
        assert target.counter("c").value == 5
        h = target.histogram("h")
        assert h.count == 2
        assert h.counts == [1, 1, 0]

    def test_gauge_max(self):
        target = MetricsRegistry()
        target.gauge("g").set(10)
        merge_into_registry(
            {"counters": {}, "gauges": {"g": 3}, "histograms": {}}, target
        )
        assert target.gauge("g").value == 10

    def test_creates_missing_instruments(self):
        target = MetricsRegistry()
        delta = _reg(counters=[("new", 7)], hist_values=[("h", 0.5)]).snapshot()
        merge_into_registry(delta, target)
        assert target.counter("new").value == 7
        assert target.histogram("h").count == 1


# Module-level trial functions: workers import them by qualified name.
def _counting_greedy_trial(matrix, task):
    from repro.algorithms import greedy
    from repro.core import ClientAssignmentProblem
    from repro.obs.metrics import registry as _registry

    _registry().counter("test.trial_runs").inc()
    problem = ClientAssignmentProblem(matrix, servers=[0, 1, task])
    return greedy(problem).server_of.tolist()


def _counting_trial(matrix, task):
    from repro.obs.metrics import registry as _registry

    _registry().counter("test.trial_runs").inc()
    return task


class TestCrossProcessMerge:
    """Worker deltas land in the parent registry through the pool."""

    def test_parallel_run_merges_worker_metrics(self):
        from repro.net.latency import LatencyMatrix
        from repro.obs.metrics import registry, use_registry
        from repro.parallel import TrialPool
        from repro.parallel.pool import run_trials

        matrix = LatencyMatrix.random_metric(30, seed=2)
        with use_registry(MetricsRegistry()):
            with TrialPool(2) as pool:
                outcomes = run_trials(
                    _counting_greedy_trial, [3, 5, 7, 9], matrix=matrix, pool=pool
                )
            snap = registry().snapshot()
        assert all(o.ok for o in outcomes)
        # Worker-side increments (test.trial_runs, the instrumented
        # algorithms' counters) must be visible in the parent registry.
        assert snap["counters"]["test.trial_runs"] == 4
        assert snap["counters"]["greedy.batches"] >= 4
        assert snap["counters"]["pool.trials"] == 4

    def test_serial_run_not_double_counted(self):
        from repro.net.latency import LatencyMatrix
        from repro.obs.metrics import registry, use_registry
        from repro.parallel import TrialPool
        from repro.parallel.pool import run_trials

        matrix = LatencyMatrix.random_metric(20, seed=2)
        with use_registry(MetricsRegistry()):
            with TrialPool(0) as pool:
                run_trials(_counting_trial, [1, 2, 3], matrix=matrix, pool=pool)
            # Serial path: increments land directly in this registry;
            # the delta must NOT be merged on top.
            assert registry().counter("test.trial_runs").value == 3
