"""Tests for repro.obs.metrics (counters, gauges, histograms, registry)."""

import pytest

from repro.errors import InvalidParameterError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_float_amounts(self):
        c = Counter("x")
        c.inc(0.5)
        c.inc(0.25)
        assert c.value == pytest.approx(0.75)


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("x")
        g.set(10)
        g.set(3)
        assert g.value == 3


class TestHistogram:
    def test_bucketing_edges(self):
        h = Histogram("x", bounds=(1.0, 2.0, 5.0))
        # bisect_left on inclusive upper bounds: value == bound lands
        # in that bound's bucket; just above it spills into the next.
        h.observe(0.5)   # bucket 0 (<= 1)
        h.observe(1.0)   # bucket 0 (== bound is inclusive)
        h.observe(1.001) # bucket 1
        h.observe(2.0)   # bucket 1
        h.observe(5.0)   # bucket 2
        h.observe(5.001) # overflow bucket
        h.observe(100.0) # overflow bucket
        assert h.counts == [2, 2, 1, 2]
        assert h.count == 7
        assert h.sum == pytest.approx(0.5 + 1.0 + 1.001 + 2.0 + 5.0 + 5.001 + 100.0)

    def test_overflow_bucket_exists(self):
        h = Histogram("x", bounds=(1.0,))
        assert len(h.counts) == 2

    def test_mean(self):
        h = Histogram("x", bounds=(10.0,))
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == pytest.approx(3.0)

    def test_rejects_unsorted_or_empty_bounds(self):
        with pytest.raises(InvalidParameterError):
            Histogram("x", bounds=(2.0, 1.0))
        with pytest.raises(InvalidParameterError):
            Histogram("x", bounds=())


class TestMetricsRegistry:
    def test_instruments_memoized_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_histogram_bounds_bound_on_first_use(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1.0, 2.0))
        assert reg.histogram("h") is h  # None bounds = no constraint
        assert reg.histogram("h", bounds=(1.0, 2.0)) is h
        with pytest.raises(InvalidParameterError):
            reg.histogram("h", bounds=(3.0, 4.0))

    def test_default_bounds(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").bounds == DEFAULT_BUCKETS

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"] == {
            "bounds": [1.0],
            "counts": [1, 0],
            "sum": 0.5,
            "count": 1,
        }

    def test_snapshot_is_plain_data(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(1.0)
        json.dumps(reg.snapshot())  # must not raise

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestGlobalRegistry:
    def test_use_registry_swaps_and_restores(self):
        original = registry()
        fresh = MetricsRegistry()
        with use_registry(fresh) as active:
            assert active is fresh
            assert registry() is fresh
        assert registry() is original

    def test_set_registry_returns_previous(self):
        original = registry()
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert previous is original
            assert registry() is fresh
        finally:
            set_registry(original)


class TestNullMetricsRegistry:
    def test_instruments_discard_everything(self):
        reg = NullMetricsRegistry()
        c = reg.counter("c")
        c.inc(100)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_instrumented_code_runs_under_null_registry(self):
        from repro.core import ClientAssignmentProblem, IncrementalObjective
        from repro.net.latency import LatencyMatrix

        matrix = LatencyMatrix.random_metric(12, seed=0)
        problem = ClientAssignmentProblem(matrix, servers=[0, 1, 2])
        with use_registry(NullMetricsRegistry()):
            engine = IncrementalObjective(problem)
            engine.assign_many(range(problem.n_clients), 0)
            assert engine.d() > 0
