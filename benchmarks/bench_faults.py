"""Fault-injection benchmarks: D over time through crash/recover cycles.

Injects a seeded MTTF/MTTR crash schedule into the online churn process
and compares join policies (and readmission budgets) on the degraded
and recovered D. The qualitative claims asserted:

- failover keeps every surviving client assigned (no shed clients when
  capacity is unconstrained);
- degraded-mode D is never better than the healthy mean for the same
  policy (losing servers cannot help);
- placement-aware joins plus recovery readmission beat nearest-server
  matchmaking under the identical fault schedule.
"""

import pytest

from repro.experiments.reporting import format_table
from repro.faults import FaultSchedule, simulate_churn_with_faults
from repro.placement import kcenter_b

N_EVENTS = 250
N_SERVERS = 20


@pytest.fixture(scope="module")
def setup(bench_matrix):
    servers = kcenter_b(bench_matrix, N_SERVERS, seed=0)
    schedule = FaultSchedule.generate(
        N_SERVERS,
        float(N_EVENTS),
        mttf=150.0,
        mttr=40.0,
        seed=0,
        max_concurrent_down=N_SERVERS // 2,
    )
    return bench_matrix, servers, schedule


def test_fault_recovery_policies(benchmark, setup):
    matrix, servers, schedule = setup

    def run():
        rows = []
        for label, policy, readmit in (
            ("nearest joins", "nearest", 0),
            ("greedy joins", "greedy", 0),
            ("greedy + readmit/8", "greedy", 8),
        ):
            result = simulate_churn_with_faults(
                matrix,
                servers,
                schedule,
                n_events=N_EVENTS,
                join_policy=policy,
                readmit_moves=readmit,
                seed=0,
            )
            rows.append(
                [
                    label,
                    result.mean_d(),
                    result.peak_d(),
                    result.final_d(),
                    result.total_shed(),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    n_crashes = len(schedule.down_intervals)
    print(
        f"Fault-injection churn ({N_EVENTS} events, {N_SERVERS} K-center-B "
        f"servers, {n_crashes} crashes)\n"
        + format_table(
            ["policy", "mean D (ms)", "peak D (ms)", "final D (ms)", "shed"],
            rows,
        )
    )
    by_label = {row[0]: row for row in rows}
    # No client is ever shed without a capacity constraint.
    assert all(row[4] == 0 for row in rows)
    # Crash-aware greedy joins track or beat nearest joins on the mean.
    assert by_label["greedy joins"][1] <= 1.05 * by_label["nearest joins"][1]
    # Spending a readmission budget on each recovery helps the mean.
    assert (
        by_label["greedy + readmit/8"][1]
        <= by_label["greedy joins"][1] + 1e-9
    )


def test_degradation_profile(benchmark, setup):
    """Per-crash degradation/recovery arcs for the managed policy."""
    matrix, servers, schedule = setup

    def run():
        return simulate_churn_with_faults(
            matrix,
            servers,
            schedule,
            n_events=N_EVENTS,
            join_policy="greedy",
            readmit_moves=8,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    cycles = result.cycles()
    rows = [
        [
            c.server,
            c.crash_time,
            c.n_evacuated,
            c.inflation,
            "-" if c.recovery_ratio is None else f"{c.recovery_ratio:.3f}",
            c.rebalance_moves,
        ]
        for c in cycles
    ]
    print()
    print(
        "Crash cycles (greedy joins, readmit budget 8)\n"
        + format_table(
            ["server", "t_crash", "evacuated", "degrade x", "recover x", "moves"],
            rows,
        )
    )
    assert cycles, "the seeded schedule must produce at least one crash"
    # Evacuation never loses a client: every crash's stranded set is
    # moved (no shed) and the degraded D never drops below pre-fault.
    for c in cycles:
        assert c.n_shed == 0
        assert c.d_degraded >= c.d_pre_fault - 1e-9
