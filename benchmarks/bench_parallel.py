"""Serial-vs-parallel benchmark for the trial-execution pool.

Runs the full figure workload (Fig. 7-10 panels) of one profile twice —
once on the serial backend (``workers=0``) and once on a worker pool —
and checks the two properties the parallel subsystem promises:

- **determinism**: the JSON payloads of every figure are byte-identical
  across backends (always asserted, at every size);
- **speedup**: the pooled run is at least ``SPEEDUP_TARGET`` times
  faster than the serial run (ISSUE 3 acceptance: >= 3x at
  ``workers=4`` on the default profile). Asserted only when the host
  actually has >= ``BENCH_WORKERS`` CPUs and the profile is large
  enough for trial work to dominate process-pool overhead — a single
  vCPU CI runner measures scheduling noise, not the pool.

Profile defaults to ``default``; override with
``REPRO_BENCH_PARALLEL_PROFILE=quick`` for smoke runs. Worker count
defaults to 4 (``REPRO_BENCH_PARALLEL_WORKERS``). Measurements are
persisted as a ``bench-table`` result through the standard schema.
"""

from __future__ import annotations

import json
import multiprocessing
import os

from repro.experiments import (
    dataset_for,
    fig7,
    fig8,
    fig9,
    fig10,
    profile,
    to_jsonable,
)
from repro.experiments.persistence import BenchTable, load_result, save_result
from repro.experiments.reporting import format_table
from repro.experiments.runner import PLACEMENT_NAMES
from repro.parallel import TrialPool
from repro.obs import Stopwatch

SPEEDUP_TARGET = 3.0
#: Profiles too small for trial work to dominate pool overhead only
#: record measurements; the speedup target is asserted from this node
#: count upward.
ASSERT_NODE_FLOOR = 300


def _bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "4"))


def _bench_profile():
    return profile(os.environ.get("REPRO_BENCH_PARALLEL_PROFILE", "default"))


def _figure_payloads(prof, matrix, pool) -> dict:
    """Every figure of the profile, as canonical JSON strings."""
    payloads = {}
    for placement in PLACEMENT_NAMES:
        payloads[f"fig7_{placement}"] = to_jsonable(
            fig7(prof, placement, matrix=matrix, pool=pool)
        )
    payloads["fig8"] = to_jsonable(fig8(prof, matrix=matrix, pool=pool))
    payloads["fig9"] = to_jsonable(fig9(prof, matrix=matrix, pool=pool))
    for placement in PLACEMENT_NAMES:
        payloads[f"fig10_{placement}"] = to_jsonable(
            fig10(prof, placement, matrix=matrix, pool=pool)
        )
    return {
        name: json.dumps(body, sort_keys=True) for name, body in payloads.items()
    }


def test_parallel_vs_serial(benchmark, tmp_path):
    prof = _bench_profile()
    n_workers = _bench_workers()
    matrix = dataset_for(prof)

    def run():
        with Stopwatch() as serial_watch:
            with TrialPool(0) as pool:
                serial_payloads = _figure_payloads(prof, matrix, pool)
                serial_stats = pool.stats
        with Stopwatch() as pool_watch:
            with TrialPool(n_workers) as pool:
                pool_payloads = _figure_payloads(prof, matrix, pool)
                pool_stats = pool.stats
        return (
            serial_watch.elapsed,
            pool_watch.elapsed,
            serial_payloads,
            pool_payloads,
            serial_stats,
            pool_stats,
        )

    (
        serial_seconds,
        pool_seconds,
        serial_payloads,
        pool_payloads,
        serial_stats,
        pool_stats,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    # Determinism is asserted unconditionally, figure by figure, so a
    # divergence names the panel that broke.
    assert set(serial_payloads) == set(pool_payloads)
    for name, serial_json in serial_payloads.items():
        assert pool_payloads[name] == serial_json, (
            f"{name}: parallel payload differs from serial "
            f"(workers={n_workers})"
        )

    speedup = serial_seconds / max(pool_seconds, 1e-12)
    table = BenchTable(
        name="bench_parallel",
        columns=(
            "profile",
            "n_nodes",
            "workers",
            "serial_seconds",
            "parallel_seconds",
            "speedup",
            "trials",
            "cache_hits",
            "cache_lookups",
        ),
        rows=(
            (
                prof.name,
                prof.n_nodes,
                n_workers,
                serial_seconds,
                pool_seconds,
                speedup,
                pool_stats.n_trials,
                pool_stats.cache.hits,
                pool_stats.cache.lookups,
            ),
        ),
        meta={
            "cpu_count": multiprocessing.cpu_count(),
            "figures": sorted(serial_payloads),
            "serial_trials": serial_stats.n_trials,
        },
    )
    out = os.environ.get("REPRO_BENCH_OUT")
    path = (
        os.path.join(out, "bench_parallel.json")
        if out
        else str(tmp_path / "bench_parallel.json")
    )
    save_result(path, table)
    assert load_result(path) == table

    print()
    print(
        f"Figure workload, serial vs {n_workers} workers "
        f"(profile '{prof.name}', {prof.n_nodes} nodes, "
        f"{pool_stats.n_trials} trials)\n"
        + format_table(
            ["backend", "wall (s)", "cache hits"],
            [
                ["serial", f"{serial_seconds:.2f}", serial_stats.cache.hits],
                [
                    f"{n_workers} workers",
                    f"{pool_seconds:.2f}",
                    pool_stats.cache.hits,
                ],
            ],
        )
        + f"\nspeedup: {speedup:.2f}x — results written to {path}"
    )

    if (
        multiprocessing.cpu_count() >= n_workers
        and prof.n_nodes >= ASSERT_NODE_FLOOR
    ):
        assert speedup >= SPEEDUP_TARGET, (
            f"{speedup:.2f}x < {SPEEDUP_TARGET}x target "
            f"(workers={n_workers}, profile '{prof.name}')"
        )
