"""Micro-benchmarks: per-algorithm runtime at a fixed realistic instance.

These track the complexity claims of §IV — NSA O(|C||S|), LFB
O(|C|(|C|+|S|)), GA O(|S||C| log |C| + m |S||C|) — and guard against
performance regressions in the vectorized implementations.
"""

import pytest

from repro.algorithms import run_algorithm
from repro.core import ClientAssignmentProblem
from repro.placement import random_placement

ALGORITHMS = [
    "nearest-server",
    "longest-first-batch",
    "greedy",
    "distributed-greedy",
    "best-single-server",
]


@pytest.fixture(scope="module")
def instance(bench_matrix):
    servers = random_placement(bench_matrix, 40, seed=0)
    return ClientAssignmentProblem(bench_matrix, servers)


@pytest.fixture(scope="module")
def capacitated_instance(bench_matrix):
    servers = random_placement(bench_matrix, 40, seed=0)
    capacity = max(1, 2 * bench_matrix.n_nodes // 40)
    return ClientAssignmentProblem(bench_matrix, servers, capacities=capacity)


@pytest.mark.parametrize("name", ALGORITHMS)
def test_algorithm_runtime(benchmark, instance, name):
    result = benchmark(run_algorithm, name, instance, seed=0)
    assert result.d > 0


@pytest.mark.parametrize(
    "name", ["nearest-server", "longest-first-batch", "greedy", "distributed-greedy"]
)
def test_capacitated_algorithm_runtime(benchmark, capacitated_instance, name):
    result = benchmark(run_algorithm, name, capacitated_instance, seed=0)
    assert result.assignment.respects_capacities()
