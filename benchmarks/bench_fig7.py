"""Fig. 7 — normalized interactivity vs number of servers.

Regenerates all three panels (random / K-center-A / K-center-B) and
prints the same series the paper plots. Shape assertions encode the
paper's qualitative findings; see EXPERIMENTS.md for the
paper-vs-measured record.
"""

import numpy as np
import pytest

from repro.experiments import fig7, render_fig7


@pytest.mark.parametrize("placement", ["random", "k-center-a", "k-center-b"])
def test_fig7_panel(benchmark, bench_profile, bench_matrix, placement):
    series = benchmark.pedantic(
        fig7,
        args=(bench_profile, placement),
        kwargs={"matrix": bench_matrix},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig7(series))

    # Paper shapes: the greedy pair dominates; NSA is the worst overall.
    nsa = np.mean(series.series("nearest-server"))
    lfb = np.mean(series.series("longest-first-batch"))
    ga = np.mean(series.series("greedy"))
    dga = np.mean(series.series("distributed-greedy"))
    assert max(ga, dga) < min(nsa, lfb)
    assert nsa >= max(lfb, ga, dga) - 1e-9
    # Normalized interactivity is a ratio to a lower bound: >= 1.
    for name in series.points[0].mean:
        assert all(v >= 1.0 - 1e-9 for v in series.series(name))


def test_fig7_mit_dataset(benchmark, bench_profile):
    """The paper's remark: the MIT data set shows similar results."""
    import dataclasses

    from repro.datasets import synthesize_mit_like

    mit_profile = dataclasses.replace(bench_profile, dataset="mit")
    matrix = synthesize_mit_like(mit_profile.n_nodes, seed=mit_profile.seed)
    series = benchmark.pedantic(
        fig7,
        args=(mit_profile, "random"),
        kwargs={"matrix": matrix},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig7(series))
    nsa = np.mean(series.series("nearest-server"))
    dga = np.mean(series.series("distributed-greedy"))
    assert dga < nsa
