"""Scenario-harness benchmark: competitive ratio by family x policy.

Replays scaled-up versions of the bundled adversary families (|C| =
2000 by default; override with ``REPRO_BENCH_SCENARIO_CLIENTS=500``
for smoke runs) through every registered online policy and records the
empirical competitive ratio — D_online over the §V lower bound of the
revealed instance — plus replay throughput. The offline reference
solve is disabled: the lower bound is the yardstick here, and the
bound's >= 1 invariant is re-asserted on every replay.

The measurements land in ``BENCH_scenarios.json`` (written to
``REPRO_BENCH_OUT`` when set) as a bench-table through the standard
schema, including the process lower-bound cache counters — with P
policies per scenario the expected hit rate approaches (P-1)/P, the
evidence the cache actually carries the comparison load.
"""

from __future__ import annotations

import os

from repro.algorithms.policies import policy_names
from repro.experiments.persistence import BenchTable, load_result, save_result
from repro.parallel import lb_cache_stats_snapshot, lower_bound_cache
from repro.scenarios import (
    CapacityCrunch,
    CorrelatedBursts,
    DiurnalWave,
    Drain,
    FlashCrowd,
    InstanceSpec,
    NemesisChurn,
    ReplayOptions,
    Scenario,
    check_ratios,
    replay_scenario,
)

N_SERVERS = 16
N_CLUSTERS = 32


def _n_clients() -> int:
    return int(os.environ.get("REPRO_BENCH_SCENARIO_CLIENTS", "2000"))


def _families(n_clients: int) -> list:
    """The bundled adversary families, rescaled to ``n_clients``."""
    spec = dict(
        kind="planet",
        n_clients=n_clients,
        n_servers=N_SERVERS,
        n_clusters=N_CLUSTERS,
    )
    crowd = int(n_clients * 0.6)
    return [
        Scenario(
            name="flash-crowd",
            instance=InstanceSpec(seed=11, **spec),
            segments=(
                FlashCrowd(start=0.0, duration=20.0, joins=crowd // 4),
                FlashCrowd(start=25.0, duration=5.0, joins=crowd),
                Drain(start=35.0, duration=10.0, leaves=crowd // 3),
            ),
            seed=101,
        ),
        Scenario(
            name="diurnal",
            instance=InstanceSpec(seed=5, **spec),
            segments=(
                DiurnalWave(
                    start=0.0, duration=80.0, period=40.0, joins=crowd
                ),
                Drain(start=40.0, duration=20.0, leaves=crowd // 4),
            ),
            seed=303,
            rebalance_every=max(crowd // 8, 1),
        ),
        Scenario(
            name="correlated-bursts",
            instance=InstanceSpec(seed=9, **spec),
            segments=(
                CorrelatedBursts(
                    start=0.0,
                    period=20.0,
                    bursts=5,
                    joins=crowd // 5,
                    leaves=crowd // 7,
                ),
            ),
            seed=404,
        ),
        Scenario(
            name="capacity-crunch",
            instance=InstanceSpec(
                seed=13,
                capacity=max(int(n_clients * 0.45 / N_SERVERS), 1),
                **spec,
            ),
            segments=(
                FlashCrowd(start=0.0, duration=10.0, joins=crowd // 4),
                CapacityCrunch(
                    start=12.0, duration=20.0, joins=crowd, server=0
                ),
            ),
            seed=505,
        ),
        Scenario(
            name="nemesis",
            instance=InstanceSpec(seed=21, **spec),
            segments=(
                FlashCrowd(start=0.0, duration=8.0, joins=crowd // 3),
                NemesisChurn(start=10.0, duration=40.0, events=crowd),
            ),
            seed=606,
        ),
    ]


def test_scenario_families(benchmark, tmp_path):
    n_clients = _n_clients()
    scenarios = _families(n_clients)
    policies = sorted(policy_names())
    options = ReplayOptions(
        checkpoint_every=max(n_clients // 8, 32), offline_algorithm=None
    )
    lower_bound_cache().clear()

    def run():
        rows = []
        for scenario in scenarios:
            built = scenario.instance.build()
            trace = scenario.compile(built)
            for policy in policies:
                result = replay_scenario(
                    scenario,
                    policy,
                    options=options,
                    built=built,
                    trace=trace,
                )
                check_ratios(result)
                final = result.final
                rows.append(
                    [
                        scenario.name,
                        policy,
                        n_clients,
                        result.n_events,
                        result.mean_ratio,
                        result.max_ratio,
                        final.d_online if final else 0.0,
                        final.lower_bound if final else 0.0,
                        result.counters.get("rejected", 0),
                        result.events_per_second,
                        result.elapsed_seconds,
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    stats = lb_cache_stats_snapshot()
    table = BenchTable(
        name="bench_scenarios",
        columns=(
            "scenario",
            "policy",
            "n_clients",
            "n_events",
            "mean_ratio",
            "max_ratio",
            "final_d",
            "final_lower_bound",
            "rejected",
            "events_per_second",
            "elapsed_seconds",
        ),
        rows=tuple(tuple(row) for row in rows),
        meta={
            "n_servers": N_SERVERS,
            "n_clusters": N_CLUSTERS,
            "n_clients": n_clients,
            "policies": list(policies),
            "checkpoint_every": options.checkpoint_every,
            "lb_cache_hits": stats.hits,
            "lb_cache_misses": stats.misses,
        },
    )
    # Every policy after the first reuses each checkpoint's bound.
    assert stats.hits >= stats.misses * (len(policies) - 1)
    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        os.makedirs(out, exist_ok=True)
    path = (
        os.path.join(out, "BENCH_scenarios.json")
        if out
        else str(tmp_path / "BENCH_scenarios.json")
    )
    save_result(path, table)
    assert load_result(path) == table
