"""Micro-benchmarks for the metric and bound computations.

The O(|C| + |S|^2) D computation and the blocked min-plus lower bound
are the harness's inner loops; regressions here multiply across the
thousands of runs in the random-placement sweeps.
"""

import numpy as np
import pytest

from repro.algorithms import nearest_server
from repro.core import (
    ClientAssignmentProblem,
    OffsetSchedule,
    clients_on_longest_paths,
    interaction_lower_bound,
    max_interaction_path_length,
)
from repro.placement import random_placement


@pytest.fixture(scope="module")
def instance(bench_matrix):
    servers = random_placement(bench_matrix, 80, seed=0)
    return ClientAssignmentProblem(bench_matrix, servers)


@pytest.fixture(scope="module")
def assignment(instance):
    return nearest_server(instance)


def test_max_interaction_path_length(benchmark, assignment):
    d = benchmark(max_interaction_path_length, assignment)
    assert d > 0


def test_lower_bound(benchmark, instance):
    lb = benchmark(interaction_lower_bound, instance)
    assert lb > 0


def test_clients_on_longest_paths(benchmark, assignment):
    involved = benchmark(clients_on_longest_paths, assignment)
    assert involved.size >= 1


def test_offset_schedule_construction(benchmark, assignment):
    schedule = benchmark(OffsetSchedule, assignment)
    assert schedule.check_constraints().feasible


def test_problem_construction(benchmark, bench_matrix):
    servers = random_placement(bench_matrix, 80, seed=1)
    problem = benchmark(ClientAssignmentProblem, bench_matrix, servers)
    assert problem.n_servers == 80
