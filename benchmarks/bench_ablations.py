"""Ablation benchmarks (DESIGN.md design-choice studies).

Each prints its table; assertions pin the direction of each effect:

- the paper's Δl/Δn amortized greedy cost is at least as good as plain Δl
  on average;
- DGA started from nearest-server needs far fewer modifications than a
  random start for comparable quality;
- NSA's penalty grows with the triangle-violation rate of the matrix;
- assignments computed from Vivaldi-estimated latencies lose
  interactivity versus measured latencies.
"""

import numpy as np
import pytest

from repro.experiments.ablations import (
    ablation_dga_initial,
    ablation_estimated_latencies,
    ablation_greedy_cost,
    ablation_measurement_error,
    ablation_placement_strategies,
    ablation_triangle_violations,
)


def test_ablation_dga_initial(benchmark, bench_matrix):
    result = benchmark.pedantic(
        ablation_dga_initial,
        args=(bench_matrix,),
        kwargs={"n_servers": 30, "n_runs": 5, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    by_name = {row[0]: row for row in result.rows}
    # Random starts converge to similar quality but need many more moves.
    assert by_name["random"][3] > 2 * by_name["nearest-server"][3]
    # NSA start is within 15% of the best start.
    best = min(row[1] for row in result.rows)
    assert by_name["nearest-server"][1] <= 1.15 * best


def test_ablation_greedy_cost(benchmark, bench_matrix):
    result = benchmark.pedantic(
        ablation_greedy_cost,
        args=(bench_matrix,),
        kwargs={"n_servers": 30, "n_runs": 8, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    by_name = {row[0]: row[1] for row in result.rows}
    # Amortization is at worst a small loss and typically a gain.
    assert by_name["greedy"] <= by_name["greedy-absolute"] * 1.08


def test_ablation_triangle_violations(benchmark):
    result = benchmark.pedantic(
        ablation_triangle_violations,
        kwargs={
            "n_nodes": 150,
            "n_servers": 15,
            "spike_fractions": (0.0, 0.05, 0.15),
            "n_runs": 3,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    gaps = result.column("NSA/DGA")
    assert gaps[-1] > gaps[0]  # non-metricity hurts NSA relative to DGA


def test_ablation_estimated_latencies(benchmark, bench_matrix):
    result = benchmark.pedantic(
        ablation_estimated_latencies,
        args=(bench_matrix,),
        kwargs={"n_servers": 25, "embedding_rounds": 25, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    penalties = result.column("penalty")
    # Coordinates cost something somewhere (no free lunch) but keep
    # every algorithm within a bounded factor.
    assert max(penalties) > 1.0
    assert max(penalties) < 3.0


def test_ablation_placement_strategies(benchmark, bench_matrix):
    result = benchmark.pedantic(
        ablation_placement_strategies,
        args=(bench_matrix,),
        kwargs={"n_servers": 25, "n_runs": 3, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert len(result.rows) == 6


def test_ablation_measurement_error(benchmark, bench_matrix):
    result = benchmark.pedantic(
        ablation_measurement_error,
        args=(bench_matrix.submatrix(range(150)),),
        kwargs={"n_servers": 15, "probes_sweep": (1, 3, 10), "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    errors = result.column("median rel. error")
    penalties = result.column("penalty")
    # More probes -> lower measurement error (strict dose-response).
    assert errors[1] > errors[2] > errors[3]
    # The truth row is the baseline penalty 1.0.
    assert penalties[0] == pytest.approx(1.0)
