"""Coreset-pipeline benchmark: D-quality and wall-clock vs. reduction.

Sweeps synthesized planet-scale instances (|C| in {10k, 100k, 1M} by
default; override with ``REPRO_BENCH_SCALE_SIZES=10000,100000`` for
smoke runs) through :func:`repro.scale.solve_at_scale` at several
coreset cell sizes per instance, measuring the trade the coreset layer
offers: coarser cells mean fewer super-clients (bigger reduction
ratio, faster reduced solve) against a looser additive guarantee
(``D_expanded <= D_reduced + 2 * epsilon``).

Every row re-asserts the expansion bound — the pipeline raises
:class:`~repro.errors.ScaleBoundError` on violation, and the benchmark
checks the returned numbers besides — and records the process peak RSS
plus the coordinate-provider row-synthesis counters from the obs
registry, the evidence that no dense ``|C| x |S|`` block ever existed.
The measurements land in ``BENCH_scale.json`` (written to
``REPRO_BENCH_OUT`` when set) as a bench-table through the standard
schema.

Acceptance target (ISSUE 9): the 1M-client instance solves end-to-end
under 4 GiB peak RSS. Asserted whenever a size >= 1M is in the sweep.
"""

from __future__ import annotations

import os

from repro.datasets import coreset_cell_size_hint, planet_instance
from repro.experiments.persistence import BenchTable, load_result, save_result
from repro.experiments.reporting import format_table
from repro.obs import peak_rss_bytes, registry
from repro.scale import solve_at_scale

N_SERVERS = 32
N_CLUSTERS = 64
#: Cell-size multipliers swept per instance (vs. the geometry hint).
CELL_MULTIPLIERS = (0.5, 1.0, 2.0)
#: Sizes above this only run the 1.0x cell (the sweep point that
#: matters for the acceptance numbers; the trade-off curve is already
#: characterized by the smaller sizes).
FULL_SWEEP_CEILING = 100_000
#: Peak-RSS ceiling asserted for sizes >= RSS_ASSERT_FLOOR (ISSUE 9).
RSS_LIMIT_BYTES = 4 * 1024**3
RSS_ASSERT_FLOOR = 1_000_000


def _sizes() -> list:
    raw = os.environ.get(
        "REPRO_BENCH_SCALE_SIZES", "10000,100000,1000000"
    )
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def _bench_size(n_clients: int, seed: int) -> list:
    """Sweep cell sizes at one instance size; returns table rows."""
    instance = planet_instance(
        n_clients, N_SERVERS, n_clusters=N_CLUSTERS, seed=seed
    )
    hint = coreset_cell_size_hint(instance)
    multipliers = (
        CELL_MULTIPLIERS if n_clients <= FULL_SWEEP_CEILING else (1.0,)
    )
    rows = []
    counters_before = dict(
        registry().snapshot().get("counters", {})
    )
    for multiplier in multipliers:
        cell = hint * multiplier
        result = solve_at_scale(
            instance.provider,
            instance.servers,
            instance.clients,
            cell_size=cell,
            seed=seed,
        )
        # solve_at_scale already raises on violation; re-check the
        # returned numbers so the benchmark stands on its own.
        assert result.d_expanded <= result.bound + 1e-9, (
            f"|C|={n_clients} cell={cell}: expanded D {result.d_expanded} "
            f"exceeds bound {result.bound}"
        )
        rows.append(
            [
                n_clients,
                cell,
                result.coreset.n_representatives,
                result.coreset.reduction_ratio,
                result.epsilon,
                result.d_reduced,
                result.d_expanded,
                result.bound,
                result.elapsed_seconds,
                peak_rss_bytes(),
            ]
        )
    counters_after = dict(registry().snapshot().get("counters", {}))
    synthesized = counters_after.get(
        "provider.coordinate.rows", 0
    ) - counters_before.get("provider.coordinate.rows", 0)
    assert synthesized > 0, (
        "the coordinate provider synthesized no rows — the sweep did "
        "not exercise the dense-free path"
    )
    return rows


def test_scale_pipeline(benchmark, tmp_path):
    sizes = _sizes()

    def run():
        rows = []
        for i, n in enumerate(sizes):
            rows.extend(_bench_size(n, seed=300 + i))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    columns = (
        "n_clients",
        "cell_size",
        "n_representatives",
        "reduction_ratio",
        "epsilon",
        "d_reduced",
        "d_expanded",
        "bound",
        "elapsed_seconds",
        "peak_rss_bytes",
    )
    counters = registry().snapshot().get("counters", {})
    table = BenchTable(
        name="bench_scale",
        columns=columns,
        rows=tuple(tuple(row) for row in rows),
        meta={
            "n_servers": N_SERVERS,
            "n_clusters": N_CLUSTERS,
            "sizes": sizes,
            "cell_multipliers": list(CELL_MULTIPLIERS),
            "full_sweep_ceiling": FULL_SWEEP_CEILING,
            "rss_limit_bytes": RSS_LIMIT_BYTES,
            "provider_rows_synthesized": int(
                counters.get("provider.coordinate.rows", 0)
            ),
            "provider_block_calls": int(
                counters.get("provider.coordinate.calls", 0)
            ),
        },
    )
    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        os.makedirs(out, exist_ok=True)
    path = (
        os.path.join(out, "BENCH_scale.json")
        if out
        else str(tmp_path / "BENCH_scale.json")
    )
    save_result(path, table)
    assert load_result(path) == table

    print()
    print(
        "Coreset pipeline: D-quality and wall-clock vs. reduction ratio\n"
        + format_table(
            ["|C|", "cell", "reps", "ratio", "eps", "D", "bound", "s", "RSS MiB"],
            [
                [
                    r[0],
                    f"{r[1]:.2f}",
                    r[2],
                    f"{r[3]:.1f}x",
                    f"{r[4]:.2f}",
                    f"{r[6]:.2f}",
                    f"{r[7]:.2f}",
                    f"{r[8]:.2f}",
                    f"{r[9] / 2**20:.0f}",
                ]
                for r in rows
            ],
        )
        + f"\nresults written to {path}"
    )

    for row in rows:
        n, rss = row[0], row[9]
        if n >= RSS_ASSERT_FLOOR:
            assert rss < RSS_LIMIT_BYTES, (
                f"|C|={n}: peak RSS {rss / 2**30:.2f} GiB exceeds the "
                f"{RSS_LIMIT_BYTES / 2**30:.0f} GiB ceiling"
            )
