"""Old-vs-new candidate-evaluation benchmark for the incremental engine.

Sweeps instance sizes (|C| in {500, 2000, 8000} by default; override
with ``REPRO_BENCH_INCREMENTAL_SIZES=60,120`` for smoke runs) and, per
size, times the candidate-evaluation hot path of the two local-search
style consumers both ways:

- **local-search style**: score all |S| destinations of a sampled
  client — from-scratch ``_objective_after_move`` per destination vs
  one ``IncrementalObjective.batch_delta_D`` call;
- **distributed-greedy style**: compute the ``L(s')`` reply vector for
  a sampled client — from-scratch ``l``-vector rebuild over all |C|
  clients vs one ``IncrementalObjective.candidate_paths`` call.

Both paths score the *same* candidates, and the benchmark asserts they
agree. At sizes where a full from-scratch run is still affordable
(|C| <= 2000) it additionally runs hill-climbing and Distributed-Greedy
end-to-end under both evaluators and asserts identical final D. The
measurements (wall time and evaluation counts) are persisted as a
``bench-table`` result through the standard schema.

Acceptance target (ISSUE 2): >= 5x speedup for both styles at
|C| = 8000. The assertion is gated on |C| >= 4000 so smoke sizes don't
assert on noise.

A second sweep (``test_kernel_backends``) adds the **kernel backend
axis** (ISSUE 8): the same move-batch workload is timed per backend
(``numpy`` and, when importable, ``numba``) and per matrix dtype
(float64 and float32), with bit-identical cross-backend parity asserted
within a dtype and ~1e-5 relative agreement asserted across dtypes. The
measurements land in ``BENCH_incremental.json`` (written to
``REPRO_BENCH_OUT`` when set): a bench-table carrying the run config in
``meta`` and one row per (size, dtype, backend) with seconds and the
speedup versus the numpy twin. The >= 5x numba-vs-numpy target
(ISSUE 8) is asserted only when numba is importable **and**
|C| >= 50000 — below that the compiled kernels are not expected to
dominate, and containers without numba record numpy-only rows.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms.distributed_greedy import (
    _candidate_lengths_recompute,
    distributed_greedy_detailed,
)
from repro.algorithms.local_search import _objective_after_move, hill_climbing
from repro.algorithms.nearest import nearest_server
from repro.core import (
    ClientAssignmentProblem,
    IncrementalObjective,
    max_interaction_path_length,
)
from repro.experiments.persistence import BenchTable, load_result, save_result
from repro.experiments.reporting import format_table
from repro.kernels import available_backends, numba_available
from repro.net.latency import LatencyMatrix
from repro.obs import Stopwatch

N_SERVERS = 25
N_SAMPLED_CLIENTS = 64
SPEEDUP_TARGET = 5.0
#: Sizes below this only record measurements; at or above it the
#: speedup target is asserted.
ASSERT_FLOOR = 4000
FULL_RUN_CEILING = 2000
#: numba-vs-numpy target for the kernel-backend sweep (ISSUE 8).
KERNEL_SPEEDUP_TARGET = 5.0
#: The kernel speedup is asserted only at |C| >= this (and only when
#: numba is importable); smaller batches measure dispatch, not kernels.
KERNEL_ASSERT_FLOOR = 50_000


def _sizes() -> list:
    raw = os.environ.get("REPRO_BENCH_INCREMENTAL_SIZES", "500,2000,8000")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def _make_problem(n_clients: int, seed: int) -> ClientAssignmentProblem:
    """A seeded asymmetric instance with |C| clients and N_SERVERS servers."""
    rng = np.random.default_rng(seed)
    n_nodes = n_clients
    values = rng.uniform(5.0, 300.0, size=(n_nodes, n_nodes))
    np.fill_diagonal(values, 0.0)
    matrix = LatencyMatrix(values)
    servers = rng.choice(n_nodes, size=min(N_SERVERS, n_nodes // 2), replace=False)
    return ClientAssignmentProblem(matrix, np.sort(servers))


def _bench_size(n_clients: int, seed: int) -> list:
    """Measure both styles at one size; returns table rows."""
    problem = _make_problem(n_clients, seed)
    initial = nearest_server(problem)
    server_of = initial.server_of.copy()
    n_servers = problem.n_servers
    rng = np.random.default_rng(seed + 1)
    sampled = rng.choice(
        problem.n_clients,
        size=min(N_SAMPLED_CLIENTS, problem.n_clients),
        replace=False,
    )

    # Engine construction is not timed: it corresponds to state a
    # running algorithm maintains anyway, amortized over every query.
    engine = IncrementalObjective(problem, server_of, history=False)
    engine.d()

    rows = []

    # --- local-search style: all destinations of each sampled client.
    with Stopwatch() as old_watch:
        old_scores = np.array(
            [
                [
                    _objective_after_move(problem, server_of, int(c), s)
                    for s in range(n_servers)
                ]
                for c in sampled
            ]
        )
    old_evals = sampled.size * n_servers
    with Stopwatch() as new_watch:
        new_scores = np.array(
            [
                engine.batch_delta_D(int(c), respect_capacities=False)
                for c in sampled
            ]
        )
    assert np.allclose(old_scores, new_scores, rtol=1e-9), (
        "incremental local-search scores diverge from the from-scratch path"
    )
    rows.append(
        [
            n_clients,
            "local-search",
            old_watch.elapsed,
            new_watch.elapsed,
            old_watch.elapsed / max(new_watch.elapsed, 1e-12),
            old_evals,
            old_evals,
        ]
    )

    # --- distributed-greedy style: the L(s') reply vector per client.
    with Stopwatch() as old_watch:
        old_replies = np.array(
            [
                _candidate_lengths_recompute(problem, server_of, int(c))
                for c in sampled
            ]
        )
    with Stopwatch() as new_watch:
        new_replies = np.array(
            [engine.candidate_paths(int(c))[0] for c in sampled]
        )
    assert np.allclose(old_replies, new_replies, rtol=1e-9), (
        "incremental L(s') replies diverge from the from-scratch path"
    )
    rows.append(
        [
            n_clients,
            "distributed-greedy",
            old_watch.elapsed,
            new_watch.elapsed,
            old_watch.elapsed / max(new_watch.elapsed, 1e-12),
            old_evals,
            old_evals,
        ]
    )

    # --- end-to-end equivalence where the from-scratch run is affordable.
    if n_clients <= FULL_RUN_CEILING:
        hc_new = hill_climbing(
            problem, seed=seed, max_rounds=2, evaluator="incremental"
        )
        hc_old = hill_climbing(
            problem, seed=seed, max_rounds=2, evaluator="recompute"
        )
        assert np.array_equal(hc_new.server_of, hc_old.server_of)
        d_new = max_interaction_path_length(hc_new)
        d_old = max_interaction_path_length(hc_old)
        assert d_new == pytest.approx(d_old, rel=1e-12)

        dga_new = distributed_greedy_detailed(
            problem, initial=initial, evaluator="incremental"
        )
        dga_old = distributed_greedy_detailed(
            problem, initial=initial, evaluator="recompute"
        )
        assert dga_new.trace == dga_old.trace
        assert np.array_equal(
            dga_new.assignment.server_of, dga_old.assignment.server_of
        )
    return rows


def test_incremental_vs_recompute(benchmark, tmp_path):
    sizes = _sizes()

    def run():
        rows = []
        for i, n in enumerate(sizes):
            rows.extend(_bench_size(n, seed=100 + i))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    columns = (
        "n_clients",
        "style",
        "old_seconds",
        "new_seconds",
        "speedup",
        "old_evaluations",
        "new_evaluations",
    )
    table = BenchTable(
        name="bench_incremental",
        columns=columns,
        rows=tuple(tuple(row) for row in rows),
        meta={
            "n_servers": N_SERVERS,
            "n_sampled_clients": N_SAMPLED_CLIENTS,
            "sizes": sizes,
        },
    )
    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        os.makedirs(out, exist_ok=True)
    path = (
        os.path.join(out, "bench_incremental.json")
        if out
        else str(tmp_path / "bench_incremental.json")
    )
    save_result(path, table)
    assert load_result(path) == table

    print()
    print(
        "Candidate evaluation: from-scratch vs incremental "
        f"({N_SAMPLED_CLIENTS} clients x {N_SERVERS} destinations each)\n"
        + format_table(
            ["|C|", "style", "old (s)", "new (s)", "speedup", "evals"],
            [
                [r[0], r[1], f"{r[2]:.4f}", f"{r[3]:.4f}", f"{r[4]:.1f}x", r[5]]
                for r in rows
            ],
        )
        + f"\nresults written to {path}"
    )

    for row in rows:
        n, style, _old_s, _new_s, speedup = row[0], row[1], row[2], row[3], row[4]
        if n >= ASSERT_FLOOR:
            assert speedup >= SPEEDUP_TARGET, (
                f"{style} at |C|={n}: {speedup:.1f}x < "
                f"{SPEEDUP_TARGET}x target"
            )


# ----------------------------------------------------------------------
# Kernel backend axis (ISSUE 8)
# ----------------------------------------------------------------------


def _bench_backends_size(n_clients: int, seed: int) -> list:
    """Time the move-batch workload per (dtype, backend) at one size.

    The workload is the local-search inner loop: one
    ``batch_delta_D`` call (all |S| destinations) per sampled client.
    The initial assignment is computed once, in float64, and shared by
    every engine so all cells score identical candidate sets.
    """
    problem64 = _make_problem(n_clients, seed)
    initial = nearest_server(problem64).server_of
    rng = np.random.default_rng(seed + 1)
    sampled = rng.choice(
        problem64.n_clients,
        size=min(N_SAMPLED_CLIENTS, problem64.n_clients),
        replace=False,
    )

    rows = []
    numpy_runs = {}  # dtype name -> (scores, d)
    for dtype_name, problem in (
        ("float64", problem64),
        ("float32", problem64.astype(np.float32)),
    ):
        per_backend = {}
        for backend in available_backends():
            engine = IncrementalObjective(
                problem, initial.copy(), history=False, backend=backend
            )
            # Warm-up outside the timed region: D refresh plus one
            # batch call, so numba's first-call compilation (and the
            # lazy per-server list builds) never pollute the timing.
            engine.d()
            engine.batch_delta_D(int(sampled[0]), respect_capacities=False)
            with Stopwatch() as watch:
                scores = np.array(
                    [
                        engine.batch_delta_D(int(c), respect_capacities=False)
                        for c in sampled
                    ]
                )
            per_backend[backend] = (watch.elapsed, scores, engine.d())

        numpy_seconds, numpy_scores, numpy_d = per_backend["numpy"]
        numpy_runs[dtype_name] = (numpy_scores, numpy_d)
        for backend, (seconds, scores, d) in sorted(per_backend.items()):
            rows.append(
                [
                    n_clients,
                    dtype_name,
                    backend,
                    seconds,
                    numpy_seconds / max(seconds, 1e-12),
                    float(d),
                ]
            )
        if "numba" in per_backend:
            # Parity contract: within one dtype the backends are
            # bit-identical — same D, same candidate scores.
            _, numba_scores, numba_d = per_backend["numba"]
            assert numba_d == numpy_d, (
                f"numba D diverges from numpy at |C|={n_clients} "
                f"({dtype_name}): {numba_d!r} != {numpy_d!r}"
            )
            assert np.array_equal(numba_scores, numpy_scores, equal_nan=True), (
                f"numba candidate scores diverge from numpy at "
                f"|C|={n_clients} ({dtype_name})"
            )

    # float32 tracks float64 to the matrix rounding (~1e-6 relative on
    # entries; summed paths tolerate a bit more).
    scores64, d64 = numpy_runs["float64"]
    scores32, d32 = numpy_runs["float32"]
    assert d32 == pytest.approx(d64, rel=1e-5)
    assert np.allclose(scores32, scores64, rtol=1e-5, atol=1e-3, equal_nan=True), (
        f"float32 candidate scores drift beyond tolerance at |C|={n_clients}"
    )
    return rows


def test_kernel_backends(benchmark, tmp_path):
    sizes = _sizes()

    def run():
        rows = []
        for i, n in enumerate(sizes):
            rows.extend(_bench_backends_size(n, seed=200 + i))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    columns = (
        "n_clients",
        "dtype",
        "backend",
        "seconds",
        "speedup_vs_numpy",
        "objective_d",
    )
    table = BenchTable(
        name="bench_incremental_backends",
        columns=columns,
        rows=tuple(tuple(row) for row in rows),
        meta={
            "n_servers": N_SERVERS,
            "n_sampled_clients": N_SAMPLED_CLIENTS,
            "sizes": sizes,
            "backends": list(available_backends()),
            "numba_available": numba_available(),
            "dtypes": ["float64", "float32"],
            "speedup_target": KERNEL_SPEEDUP_TARGET,
            "assert_floor": KERNEL_ASSERT_FLOOR,
        },
    )
    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        os.makedirs(out, exist_ok=True)
    path = (
        os.path.join(out, "BENCH_incremental.json")
        if out
        else str(tmp_path / "BENCH_incremental.json")
    )
    save_result(path, table)
    assert load_result(path) == table

    print()
    print(
        "Kernel backends: move-batch workload per (dtype, backend) "
        f"({N_SAMPLED_CLIENTS} clients x {N_SERVERS} destinations each)\n"
        + format_table(
            ["|C|", "dtype", "backend", "seconds", "vs numpy"],
            [
                [r[0], r[1], r[2], f"{r[3]:.4f}", f"{r[4]:.1f}x"]
                for r in rows
            ],
        )
        + f"\nresults written to {path}"
    )

    if numba_available():
        for row in rows:
            n, _dtype, bknd, _s, speedup = row[0], row[1], row[2], row[3], row[4]
            if bknd == "numba" and n >= KERNEL_ASSERT_FLOOR:
                assert speedup >= KERNEL_SPEEDUP_TARGET, (
                    f"numba at |C|={n}: {speedup:.1f}x < "
                    f"{KERNEL_SPEEDUP_TARGET}x target"
                )
