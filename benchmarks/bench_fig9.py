"""Fig. 9 — Distributed-Greedy convergence over assignment modifications.

The paper: interactivity improves monotonically with modifications,
converging after a few tens of moves; ~99% of the improvement arrives
within a budget that is a small fraction of the client population at
paper scale.
"""

import pytest

from repro.experiments import fig9, render_fig9


def test_fig9_convergence(benchmark, bench_profile, bench_matrix):
    traces = benchmark.pedantic(
        fig9,
        args=(bench_profile,),
        kwargs={"matrix": bench_matrix},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig9(traces))

    assert [t.placement for t in traces] == [
        "random",
        "k-center-a",
        "k-center-b",
    ]
    for trace in traces:
        series = trace.normalized_trace
        # Monotone non-increasing normalized D.
        assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))
        # The run improves on the initial nearest-server assignment
        # (strictly, for every placement at bench scale).
        assert series[-1] < series[0]
        # Convergence within the modification budget.
        assert trace.converged
        # >= 99% of the improvement within 2 moves per server.
        assert trace.improvement_fraction_at(2 * trace.n_servers) >= 0.99
