"""Scale sweep benchmark: normalized interactivity vs instance size.

Documents EXPERIMENTS.md's "known deviation #2": the algorithm gap is
scale-stable while absolute normalized levels drift slowly. Kept at
modest sizes by default; the `paper` direction (1600+ nodes) runs in a
couple of minutes via REPRO_PROFILE=default.
"""

import pytest

from repro.experiments.scaling import render_scale_sweep, scale_sweep


def test_scale_sweep(benchmark, bench_profile):
    sizes = (100, 200, 400) if bench_profile.name != "paper" else (200, 800, 1796)
    points = benchmark.pedantic(
        scale_sweep,
        kwargs={"sizes": sizes, "n_runs": 4, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_scale_sweep(points))
    # The paper's claims are about gaps, and the gap is scale-robust:
    # NSA is at least ~20% worse than DGA at every size.
    for point in points:
        assert point.nsa_over_dga > 1.15
    # Greedy-pair normalized levels stay in a narrow band across scales
    # (no blow-up at larger instances).
    dga_levels = [p.normalized["distributed-greedy"] for p in points]
    assert max(dga_levels) - min(dga_levels) < 0.25
