"""Benchmark: the δ-feasibility knee (§II-C's theorem, end to end).

Prints the lateness-vs-lag table; the assertion pins the knee exactly at
δ/D = 1 — the strongest single certification in the harness (analysis,
offset construction and simulator must all agree).
"""

import pytest

from repro.algorithms import distributed_greedy
from repro.core import ClientAssignmentProblem
from repro.experiments.delta_sweep import delta_sweep, render_delta_sweep
from repro.placement import kcenter_b


def test_delta_knee(benchmark, bench_matrix):
    matrix = bench_matrix.submatrix(range(60))
    problem = ClientAssignmentProblem(matrix, kcenter_b(matrix, 6, seed=0))
    assignment = distributed_greedy(problem)

    points = benchmark.pedantic(
        delta_sweep,
        args=(assignment,),
        kwargs={"seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_delta_sweep(points))
    for p in points:
        if p.delta_ratio >= 1.0:
            assert p.late_messages == 0 and p.constraints_feasible
        else:
            assert p.late_messages > 0 and not p.constraints_feasible
