"""Fig. 10 — impact of server capacity on normalized interactivity.

The paper: interactivity degrades as capacity tightens (sharply when
severely limited); NSA and DGA are least affected; LFB and GA degrade
more (their assignments are less balanced) and can approach or exceed
NSA under severe limits; DGA is the best overall.
"""

import numpy as np
import pytest

from repro.experiments import fig10, render_fig10


@pytest.mark.parametrize("placement", ["random", "k-center-a", "k-center-b"])
def test_fig10_panel(benchmark, bench_profile, bench_matrix, placement):
    series = benchmark.pedantic(
        fig10,
        args=(bench_profile, placement),
        kwargs={"matrix": bench_matrix},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig10(series))

    algorithms = list(series.points[0].mean)
    # Tightest capacity is never better than the loosest (per algorithm).
    for name in algorithms:
        vals = series.series(name)
        assert vals[0] >= vals[-1] - 1e-9
    # DGA best overall (mean across the sweep).
    means = {a: float(np.mean(series.series(a))) for a in algorithms}
    assert means["distributed-greedy"] <= min(means.values()) + 1e-9


def test_fig10_dga_improves_capacitated_nsa(benchmark, bench_profile, bench_matrix):
    """DGA consistently and significantly improves over NSA across
    capacities (paper §V-B)."""
    series = benchmark.pedantic(
        fig10,
        args=(bench_profile, "random"),
        kwargs={"matrix": bench_matrix},
        rounds=1,
        iterations=1,
    )
    nsa = series.series("nearest-server")
    dga = series.series("distributed-greedy")
    assert all(d <= n + 1e-9 for d, n in zip(dga, nsa))
