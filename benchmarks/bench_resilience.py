"""Durability benchmarks: WAL/checkpoint overhead and recovery time.

Drives the same 10k-event churn-under-faults stream (the chaos
workload) through two configurations of the durable runtime stack:

- **no-WAL baseline** — the full ``DurableRuntime`` event path with the
  log swapped for an in-memory null appender and checkpoints disabled,
  so the measured delta is exactly the durability cost (encode + CRC +
  write + fsync + snapshot), not wrapper bookkeeping;
- **group-commit WAL** — the amortized configuration
  (``fsync_every=1024``, ``checkpoint_every=2500``), asserted to stay
  within ``OVERHEAD_BUDGET`` of the baseline. The runtime's default
  group of 8 and strict per-record fsync are measured and reported as
  extra rows, not asserted: their cost is one ``fsync(2)`` per 8 (resp.
  1) events, which is a property of the disk, not of the append path.

A second test measures ``DurableRuntime.recover`` wall time against
WAL tail length (no checkpoints, so recovery replays the whole log)
and checks every recovery is byte-identical to the live runtime it
replaces.

Scale knobs (smoke runs shrink them; see the ``bench-smoke`` CI job):
``REPRO_BENCH_RESILIENCE_EVENTS`` (default 10000),
``REPRO_BENCH_RESILIENCE_NODES`` (default 2000),
``REPRO_BENCH_RESILIENCE_SERVERS`` (default 48). The overhead budget
is asserted only from ``ASSERT_NODE_FLOOR`` nodes upward — below that
the per-event assignment work is a few tens of microseconds and the
benchmark measures filesystem latency, not the append path.
"""

from __future__ import annotations

import os
import shutil
import time

import pytest

from repro.datasets import synthesize_meridian_like
from repro.experiments.persistence import BenchTable, load_result, save_result
from repro.experiments.reporting import format_table
from repro.placement import kcenter_b
from repro.resilience import DurableRuntime, chaos_workload
from repro.resilience.chaos import apply_event
from repro.resilience.wal import WalRecord

OVERHEAD_BUDGET = 1.10
#: Below this node count the workload's per-event cost is too small for
#: durability to amortize against; measurements are recorded, the
#: budget is not asserted (same pattern as bench_parallel's floor).
ASSERT_NODE_FLOOR = 2000


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


N_EVENTS = _env_int("REPRO_BENCH_RESILIENCE_EVENTS", 10_000)
N_NODES = _env_int("REPRO_BENCH_RESILIENCE_NODES", 2_000)
N_SERVERS = _env_int("REPRO_BENCH_RESILIENCE_SERVERS", 48)


class _NullWal:
    """In-memory stand-in for the write-ahead log (no-WAL baseline).

    Stamps records exactly like the real appender so the runtime's
    event path is unchanged; nothing touches disk.
    """

    def __init__(self, next_seq: int = 1) -> None:
        self._next_seq = next_seq
        self.closed = False

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def append(self, kind, data=None) -> WalRecord:
        record = WalRecord(seq=self._next_seq, kind=kind, data=dict(data or {}))
        self._next_seq += 1
        return record

    def sync(self) -> None:
        pass

    def close(self) -> None:
        self.closed = True

    def abandon(self) -> None:
        self.closed = True


@pytest.fixture(scope="module")
def setup():
    matrix = synthesize_meridian_like(N_NODES, seed=0)
    servers = kcenter_b(matrix, N_SERVERS, seed=0)
    events = chaos_workload(matrix, servers, n_events=N_EVENTS, seed=0)
    return matrix, servers, events


def _drive(directory, matrix, servers, events, *, fsync_every, checkpoint_every):
    """Apply the event stream; returns (seconds, final D)."""
    runtime = DurableRuntime(
        directory,
        matrix,
        servers,
        checkpoint_every=checkpoint_every,
        fsync_every=fsync_every if fsync_every is not None else 0,
    )
    if fsync_every is None:  # no-WAL baseline: swap in the null appender
        runtime._wal.abandon()
        runtime._wal = _NullWal(runtime.applied_seq + 1)
    start = time.perf_counter()
    for event in events:
        apply_event(runtime, event)
    elapsed = time.perf_counter() - start
    final_d = runtime.current_d()
    runtime.abandon()
    shutil.rmtree(directory, ignore_errors=True)
    return elapsed, final_d


def _out_path(tmp_path, filename: str) -> str:
    out = os.environ.get("REPRO_BENCH_OUT")
    return os.path.join(out, filename) if out else str(tmp_path / filename)


def test_wal_overhead(benchmark, setup, tmp_path):
    matrix, servers, events = setup
    checkpoint_every = max(1, N_EVENTS // 4)
    configs = (
        # (label, fsync_every, checkpoint_every, repeats)
        ("no-wal", None, 0, 2),
        ("wal group-1024", 1024, checkpoint_every, 2),
        ("wal group-8 (default)", 8, checkpoint_every, 1),
        ("wal strict fsync", 1, checkpoint_every, 1),
    )

    def run():
        measured = []
        for label, fsync_every, cpe, repeats in configs:
            best, final_d = min(
                _drive(
                    tmp_path / f"{label.split()[0]}-{fsync_every}-{rep}",
                    matrix,
                    servers,
                    events,
                    fsync_every=fsync_every,
                    checkpoint_every=cpe,
                )
                for rep in range(repeats)
            )
            measured.append((label, best, final_d))
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline_seconds = measured[0][1]
    baseline_d = measured[0][2]
    rows = tuple(
        (label, len(events), seconds, seconds / baseline_seconds)
        for label, seconds, _ in measured
    )
    table = BenchTable(
        name="bench_resilience_overhead",
        columns=("config", "events", "seconds", "slowdown"),
        rows=rows,
        meta={
            "n_nodes": N_NODES,
            "n_servers": N_SERVERS,
            "checkpoint_every": checkpoint_every,
            "overhead_budget": OVERHEAD_BUDGET,
            "asserted": N_NODES >= ASSERT_NODE_FLOOR,
        },
    )
    path = _out_path(tmp_path, "bench_resilience_overhead.json")
    save_result(path, table)
    assert load_result(path) == table

    print()
    print(
        f"Durability overhead ({len(events)} events, {N_NODES} nodes, "
        f"{N_SERVERS} servers)\n"
        + format_table(
            ["config", "wall (s)", "slowdown"],
            [[label, f"{s:.3f}", f"{s / baseline_seconds:.3f}x"] for label, s, _ in measured],
        )
        + f"\nresults written to {path}"
    )

    # Durability must never change the assignment trajectory.
    for label, _, final_d in measured[1:]:
        assert final_d == baseline_d, f"{label}: final D diverged from baseline"
    if N_NODES >= ASSERT_NODE_FLOOR:
        group = dict((label, s) for label, s, _ in measured)["wal group-1024"]
        slowdown = group / baseline_seconds
        assert slowdown < OVERHEAD_BUDGET, (
            f"group-commit WAL slowdown {slowdown:.3f}x exceeds the "
            f"{OVERHEAD_BUDGET}x budget"
        )


def test_recovery_time_vs_tail_length(benchmark, setup, tmp_path):
    """Recovery wall time as the un-checkpointed WAL tail grows."""
    matrix, servers, events = setup
    tails = sorted(
        {
            max(1, N_EVENTS // 8),
            max(1, N_EVENTS // 4),
            max(1, N_EVENTS // 2),
            N_EVENTS,
        }
    )

    def run():
        measured = []
        for tail in tails:
            directory = tmp_path / f"recover-{tail}"
            runtime = DurableRuntime(
                directory, matrix, servers, checkpoint_every=0, fsync_every=1024
            )
            for event in events[:tail]:
                apply_event(runtime, event)
            expected = runtime.digest()
            runtime.abandon()
            start = time.perf_counter()
            recovered = DurableRuntime.recover(directory, matrix)
            seconds = time.perf_counter() - start
            measured.append((tail, seconds, recovered.digest() == expected))
            recovered.close()
            shutil.rmtree(directory, ignore_errors=True)
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = tuple(
        (tail, seconds, tail / max(seconds, 1e-12))
        for tail, seconds, _ in measured
    )
    table = BenchTable(
        name="bench_resilience_recovery",
        columns=("tail_records", "seconds", "records_per_second"),
        rows=rows,
        meta={"n_nodes": N_NODES, "n_servers": N_SERVERS},
    )
    path = _out_path(tmp_path, "bench_resilience_recovery.json")
    save_result(path, table)
    assert load_result(path) == table

    print()
    print(
        f"Recovery time vs WAL tail ({N_NODES} nodes, no checkpoints)\n"
        + format_table(
            ["tail records", "recover (s)", "records/s"],
            [[t, f"{s:.3f}", f"{t / max(s, 1e-12):.0f}"] for t, s, _ in measured],
        )
        + f"\nresults written to {path}"
    )
    # Every recovery is byte-identical to the runtime it replaces.
    assert all(match for _, _, match in measured)
