"""Shared fixtures for the benchmark harness.

The benchmark profile defaults to ``bench`` (250 nodes, 8 runs per
random point) so the full harness finishes in a few minutes while
preserving every qualitative shape from the paper. Set
``REPRO_PROFILE=default`` (400 nodes) or ``REPRO_PROFILE=paper``
(1796 nodes, 1000 runs — hours) to scale up.
"""

from __future__ import annotations

import pytest

from repro.experiments import dataset_for, profile_from_env


@pytest.fixture(scope="session")
def bench_profile():
    return profile_from_env("bench")


@pytest.fixture(scope="session")
def bench_matrix(bench_profile):
    """The synthetic Meridian-like matrix shared by all benchmarks."""
    return dataset_for(bench_profile)
