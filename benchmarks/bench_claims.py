"""The §V-A/B claims checklist as a single benchmark.

Regenerates all four figures at the benchmark profile and verifies every
qualitative claim of the paper's evaluation narrative.
"""

import pytest

from repro.experiments import (
    fig7,
    fig8,
    fig9,
    fig10,
    render_claims,
    run_all_claims,
)


def _all_claims(profile, matrix):
    return run_all_claims(
        fig7(profile, "random", matrix=matrix),
        fig8(profile, matrix=matrix),
        fig9(profile, matrix=matrix),
        fig10(profile, "random", matrix=matrix),
        n_clients=matrix.n_nodes,
    )


def test_paper_claims(benchmark, bench_profile, bench_matrix):
    claims = benchmark.pedantic(
        _all_claims, args=(bench_profile, bench_matrix), rounds=1, iterations=1
    )
    print()
    print(render_claims(claims))
    failing = [c for c in claims if not c.holds]
    assert not failing, "failed claims: " + "; ".join(
        f"{c.claim} [{c.measured}]" for c in failing
    )
