"""Figs. 4 and 5 — the paper's worked gadget examples, as benchmarks.

Prints the ratio series for the Fig. 4 gadget (NSA approaching its
3-approximation bound as epsilon -> 0) and the Fig. 5 comparison.
"""

import pytest

from repro.algorithms import longest_first_batch, nearest_server
from repro.core import (
    ClientAssignmentProblem,
    max_interaction_path_length,
    solve_bruteforce,
)
from repro.experiments.reporting import format_table
from repro.net.topology import approx_ratio_gadget, lfb_gadget


def _fig4_series():
    rows = []
    a = 10.0
    for eps in (4.0, 2.0, 1.0, 0.5, 0.1, 0.01):
        g = approx_ratio_gadget(a, eps)
        problem = ClientAssignmentProblem(g.matrix, g.servers, g.clients)
        nsa = max_interaction_path_length(nearest_server(problem))
        opt = solve_bruteforce(problem).objective
        rows.append([eps, nsa, opt, nsa / opt])
    return rows


def test_fig4_ratio_series(benchmark):
    rows = benchmark.pedantic(_fig4_series, rounds=1, iterations=1)
    print()
    print(
        "Fig.4 gadget: NSA approximation ratio vs epsilon (a = 10)\n"
        + format_table(["epsilon", "NSA D", "optimal D", "ratio"], rows)
    )
    ratios = [row[3] for row in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] == pytest.approx(3.0, abs=0.005)
    assert all(r < 3.0 for r in ratios)


def _fig5_comparison():
    g = lfb_gadget()
    problem = ClientAssignmentProblem(g.matrix, g.servers, g.clients)
    return {
        "nsa": max_interaction_path_length(nearest_server(problem)),
        "lfb": max_interaction_path_length(longest_first_batch(problem)),
        "opt": solve_bruteforce(problem).objective,
    }


def test_fig5_comparison(benchmark):
    result = benchmark.pedantic(_fig5_comparison, rounds=1, iterations=1)
    print()
    print(
        "Fig.5 gadget: NSA D = {nsa:g}, LFB D = {lfb:g}, optimal D = {opt:g} "
        "(paper prose reports LFB = 9 by omitting the self-interaction "
        "round trip; the formulation gives 10)".format(**result)
    )
    assert result["nsa"] == pytest.approx(12.0)
    assert result["lfb"] == pytest.approx(10.0)
    assert result["lfb"] == pytest.approx(result["opt"])
