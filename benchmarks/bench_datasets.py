"""Dataset-substrate benchmarks: generation throughput and realism stats.

Prints the realism profile of the synthetic Meridian-like matrix (the
DESIGN.md §5 substitution evidence) alongside generation timing.
"""

import pytest

from repro.datasets import synthesize_meridian_like, synthesize_mit_like
from repro.experiments.reporting import format_table
from repro.net.analysis import stretch_report
from repro.net.coordinates import embed_latencies


def test_meridian_generation(benchmark):
    matrix = benchmark(synthesize_meridian_like, 400, seed=0)
    assert matrix.n_nodes == 400


def test_mit_generation(benchmark):
    matrix = benchmark(synthesize_mit_like, 400, seed=0)
    assert matrix.n_nodes == 400


def test_realism_profile(benchmark, bench_matrix):
    def profile():
        tri = bench_matrix.triangle_inequality_report(max_triples=100_000)
        stretch = stretch_report(bench_matrix)
        return [
            ["nodes", bench_matrix.n_nodes],
            ["median latency (ms)", bench_matrix.latency_percentile(50)],
            ["p99 latency (ms)", bench_matrix.latency_percentile(99)],
            ["triangle violation rate", tri.violation_rate],
            ["mean violation severity", tri.mean_severity],
            ["mean stretch vs metric closure", stretch.mean_stretch],
            ["pairs with available detour", stretch.fraction_stretched],
        ]

    rows = benchmark.pedantic(profile, rounds=1, iterations=1)
    print()
    print(
        "Synthetic Meridian-like realism profile\n"
        + format_table(["property", "value"], rows)
    )
    values = dict((r[0], r[1]) for r in rows)
    assert 0.005 < values["triangle violation rate"] < 0.25
    assert values["p99 latency (ms)"] > 2 * values["median latency (ms)"]


def test_vivaldi_embedding_speed(benchmark, bench_matrix):
    small = bench_matrix.submatrix(range(120))

    def embed():
        return embed_latencies(small, rounds=10, seed=0)

    _matrix, quality = benchmark.pedantic(embed, rounds=1, iterations=1)
    print(
        f"\nVivaldi on 120 nodes, 10 rounds: median relative error "
        f"{quality.median_relative_error:.1%}"
    )
    assert quality.median_relative_error < 0.6


def test_cross_dataset_similarity(benchmark):
    """The paper's 'MIT shows similar results' remark, quantified."""
    from repro.experiments.cross_dataset import (
        compare_datasets,
        render_cross_dataset,
    )

    result = benchmark.pedantic(
        compare_datasets,
        kwargs={
            "n_nodes": 200,
            "server_counts": (20, 40, 60),
            "n_runs": 5,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(render_cross_dataset(result))
    assert result.similar(min_correlation=0.7, max_level_gap=0.35)
