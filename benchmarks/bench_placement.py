"""Placement-algorithm benchmarks: runtime and K-center quality.

Prints the coverage radius achieved by each strategy at the benchmark
scale, the quantity the minimum-K-center problem optimizes. K-center-B
(greedy) typically edges out K-center-A (2-approx) in quality at higher
cost — the classic approximation-vs-heuristic tradeoff the paper
inherits from Jamin et al.
"""

import pytest

from repro.experiments.reporting import format_table
from repro.placement import (
    best_of_random_placement,
    coverage_radius,
    k_median_placement,
    kcenter_a,
    kcenter_b,
    medoid_placement,
    random_placement,
)

STRATEGIES = {
    "random": random_placement,
    "best-of-16-random": best_of_random_placement,
    "k-center-a": kcenter_a,
    "k-center-b": kcenter_b,
    "k-median": k_median_placement,
    "medoids": medoid_placement,
}


@pytest.mark.parametrize("name", sorted(STRATEGIES))
def test_placement_runtime(benchmark, bench_matrix, name):
    strategy = STRATEGIES[name]
    servers = benchmark(strategy, bench_matrix, 40, seed=0)
    assert servers.shape == (40,)


def test_placement_quality_table(benchmark, bench_matrix):
    def build():
        rows = []
        for name, strategy in STRATEGIES.items():
            servers = strategy(bench_matrix, 40, seed=0)
            rows.append([name, coverage_radius(bench_matrix, servers)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(
        "Placement quality: coverage radius at 40 servers\n"
        + format_table(["strategy", "coverage radius (ms)"], rows)
    )
    by_name = dict(rows)
    # Both K-center algorithms beat plain random placement.
    assert by_name["k-center-a"] < by_name["random"]
    assert by_name["k-center-b"] < by_name["random"]
