"""Benchmarks for the DIA event simulator and the §II-E jitter study.

Prints the percentile-planning tradeoff table: planning the lag against
higher latency percentiles trades interactivity (longer delta) for a
lower late-message rate — the paper's §II-E discussion, quantified.
"""

import pytest

from repro.algorithms import greedy
from repro.core import ClientAssignmentProblem, OffsetSchedule
from repro.experiments.reporting import format_table
from repro.net.jitter import LogNormalJitter
from repro.placement import random_placement
from repro.sim import poisson_workload, simulate_assignment
from repro.sim.dia import percentile_schedule


@pytest.fixture(scope="module")
def solved(bench_matrix):
    small = bench_matrix.submatrix(range(80))
    problem = ClientAssignmentProblem(small, random_placement(small, 8, seed=0))
    return problem, greedy(problem)


def test_simulation_throughput(benchmark, solved):
    problem, assignment = solved
    schedule = OffsetSchedule(assignment)
    ops = poisson_workload(problem.n_clients, rate=0.005, horizon=1000, seed=0)

    def run():
        return simulate_assignment(schedule, ops)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.healthy
    print(
        f"\nsimulated {report.n_operations} operations / "
        f"{report.n_messages} messages"
    )


def test_percentile_planning_tradeoff(benchmark, solved):
    problem, assignment = solved
    jitter = LogNormalJitter(0.3)
    ops = poisson_workload(problem.n_clients, rate=0.005, horizon=1000, seed=1)

    def sweep():
        rows = []
        for q in (50.0, 90.0, 99.0, 99.9):
            schedule = percentile_schedule(assignment, jitter, q)
            report = simulate_assignment(
                schedule,
                ops,
                jitter=jitter,
                seed=2,
                allow_late=True,
                base_matrix=problem.matrix.values,
            )
            late = report.late_server_arrivals + report.late_client_updates
            rows.append(
                [q, schedule.delta, late, late / report.n_messages, report.repairs]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        "§II-E percentile planning tradeoff (lognormal jitter, sigma=0.3)\n"
        + format_table(
            ["percentile", "delta (ms)", "late msgs", "late rate", "repairs"],
            rows,
        )
    )
    deltas = [row[1] for row in rows]
    lates = [row[2] for row in rows]
    assert deltas == sorted(deltas)  # delta grows with the percentile
    assert lates[-1] <= lates[0]  # lateness shrinks
    assert lates[-1] <= 0.01 * lates[0] + 5  # p99.9 nearly eliminates it


def test_flash_crowd_processing_backlog(benchmark, solved):
    """§IV-E quantified: a flash crowd on an unbalanced assignment
    builds server backlogs that a balanced (capacitated) assignment
    avoids."""
    import numpy as np

    from repro.core import Assignment
    from repro.sim import ProcessingModel, flash_crowd_workload

    problem, balanced_assignment = solved
    n = problem.n_clients
    lopsided = Assignment(problem, np.zeros(n, dtype=np.int64))
    ops = flash_crowd_workload(
        n, base_rate=0.002, burst_rate=0.2, burst_start=300.0,
        burst_duration=60.0, horizon=600.0, seed=3,
    )
    model = ProcessingModel(0.5, load_factor=0.05)

    def run():
        out = {}
        for label, assignment in (
            ("lopsided", lopsided),
            ("balanced", balanced_assignment),
        ):
            report = simulate_assignment(
                OffsetSchedule(assignment), ops,
                processing=model, allow_late=True,
            )
            out[label] = report
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, report in reports.items():
        print(
            f"{label:>9}: backlog max = {report.max_processing_backlog:7.1f} ms, "
            f"late updates = {report.late_client_updates}"
        )
    assert (
        reports["lopsided"].max_processing_backlog
        > reports["balanced"].max_processing_backlog
    )
