"""Online churn benchmarks (the §VI "prompt adaptation" argument).

Compares join policies and periodic rebalancing over a Poisson
join/leave process, printing the mean and final D of each policy.
"""

import pytest

from repro.algorithms.online import simulate_churn
from repro.experiments.reporting import format_table
from repro.placement import kcenter_b


@pytest.fixture(scope="module")
def setup(bench_matrix):
    servers = kcenter_b(bench_matrix, 20, seed=0)
    return bench_matrix, servers


def test_churn_policies(benchmark, setup):
    matrix, servers = setup

    def run():
        rows = []
        for label, policy, rebalance in (
            ("nearest joins", "nearest", None),
            ("greedy joins", "greedy", None),
            ("greedy + rebalance/25", "greedy", 25),
        ):
            result = simulate_churn(
                matrix,
                servers,
                n_events=250,
                join_policy=policy,
                rebalance_every=rebalance,
                seed=0,
            )
            rows.append(
                [label, result.mean_d(), result.final_d(), result.moves_by_rebalance]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        "Online churn (250 events, 20 K-center-B servers)\n"
        + format_table(
            ["policy", "mean D (ms)", "final D (ms)", "repair moves"], rows
        )
    )
    by_label = {row[0]: row for row in rows}
    # Greedy joins are myopic, so per-seed they can land a hair above
    # nearest joins — but never far above.
    assert by_label["greedy joins"][1] <= 1.05 * by_label["nearest joins"][1]
    # Periodic rebalancing beats both join-only policies on the mean.
    assert (
        by_label["greedy + rebalance/25"][1]
        <= min(by_label["greedy joins"][1], by_label["nearest joins"][1]) + 1e-9
    )


def test_join_latency(benchmark, setup):
    """A single join decision must stay cheap (O(|S|^2 + |C|))."""
    matrix, servers = setup
    from repro.algorithms.online import OnlineAssignmentManager

    manager = OnlineAssignmentManager(matrix, servers)
    server_set = set(int(s) for s in servers)
    candidates = [u for u in range(matrix.n_nodes) if u not in server_set]
    for node in candidates[:150]:
        manager.join(node)
    remaining = iter(candidates[150:])

    def one_join():
        node = next(remaining)
        manager.join(node)
        manager.leave(node)

    benchmark.pedantic(one_join, rounds=30, iterations=1)
    assert manager.n_clients == 150
