"""Joint server-selection + assignment vs the decoupled pipeline.

An extension experiment: the paper argues placement and assignment are
complementary stages; this bench quantifies what optimizing them jointly
buys over K-center placement followed by the best assignment heuristic.
"""

import pytest

from repro.algorithms import distributed_greedy_detailed
from repro.core import ClientAssignmentProblem, interaction_lower_bound
from repro.experiments.reporting import format_table
from repro.placement import joint_selection_greedy, kcenter_a, kcenter_b


def test_joint_vs_decoupled(benchmark, bench_matrix):
    matrix = bench_matrix.submatrix(range(120))
    k = 10

    def run():
        rows = []
        joint = joint_selection_greedy(matrix, k, algorithm="greedy", seed=0)
        joint_problem = ClientAssignmentProblem(matrix, joint.servers)
        joint_lb = interaction_lower_bound(joint_problem)
        # Polish the joint pick with DGA for a fair comparison.
        joint_final = distributed_greedy_detailed(
            joint_problem, initial=joint.assignment
        ).final_d
        rows.append(
            ["joint greedy selection + DGA", joint_final / joint_lb, joint.evaluations]
        )
        for name, place in (("k-center-a", kcenter_a), ("k-center-b", kcenter_b)):
            servers = place(matrix, k, seed=0)
            problem = ClientAssignmentProblem(matrix, servers)
            lb = interaction_lower_bound(problem)
            final = distributed_greedy_detailed(problem).final_d
            rows.append([f"{name} + DGA", final / lb, 1])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"Joint vs decoupled server selection ({k} servers, 120 nodes)\n"
        + format_table(
            ["pipeline", "normalized interactivity", "evaluations"], rows
        )
    )
    by_name = {row[0]: row[1] for row in rows}
    joint_norm = by_name["joint greedy selection + DGA"]
    best_decoupled = min(
        by_name["k-center-a + DGA"], by_name["k-center-b + DGA"]
    )
    # Joint selection should be competitive with (typically better than)
    # the decoupled pipeline.
    assert joint_norm <= best_decoupled * 1.10
