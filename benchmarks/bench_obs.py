"""Observability overhead benchmark: instrumentation must stay cheap.

The metrics layer is on by default, so its cost is a standing tax on
every solver run. This benchmark times the two most instrumented
algorithms (Greedy and Distributed-Greedy) twice per instance:

- **instrumented** — the shipping configuration: the process-global
  :class:`~repro.obs.metrics.MetricsRegistry` live, null trace sink;
- **baseline** — a :class:`~repro.obs.metrics.NullMetricsRegistry`
  installed via :func:`~repro.obs.metrics.use_registry`, so every
  ``inc``/``observe`` becomes a no-op while the algorithm's own work is
  unchanged.

Each configuration takes the **minimum of several repeats** (the
standard way to strip scheduler noise from a lower-bound cost
measurement) and the benchmark asserts the instrumented minimum is
within ``REPRO_BENCH_OBS_TOLERANCE`` (default 5%) of the baseline.
Results persist as a ``bench-table`` through the standard schema.

Scale knobs: ``REPRO_BENCH_OBS_NODES`` (default 250),
``REPRO_BENCH_OBS_REPEATS`` (default 5).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.algorithms import distributed_greedy, greedy
from repro.core import ClientAssignmentProblem
from repro.net.latency import LatencyMatrix
from repro.obs.metrics import NullMetricsRegistry, use_registry
from repro.placement import random_placement

#: Instrumented-over-baseline runtime ratio ceiling (1.05 = within 5%).
TOLERANCE = 1.0 + float(os.environ.get("REPRO_BENCH_OBS_TOLERANCE", "0.05"))
N_NODES = int(os.environ.get("REPRO_BENCH_OBS_NODES", "250"))
N_REPEATS = int(os.environ.get("REPRO_BENCH_OBS_REPEATS", "5"))
N_SERVERS = 30

ALGORITHMS = {
    "greedy": lambda problem: greedy(problem),
    "distributed-greedy": lambda problem: distributed_greedy(problem, seed=0),
}


def _make_problem() -> ClientAssignmentProblem:
    matrix = LatencyMatrix.random_metric(N_NODES, seed=7)
    servers = random_placement(matrix, N_SERVERS, seed=7)
    return ClientAssignmentProblem(matrix, servers)


def _min_runtime(fn, problem, repeats: int = N_REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(problem)
        best = min(best, time.perf_counter() - start)
    return best


def measure_overhead(name: str):
    """(instrumented_s, baseline_s, ratio) for one algorithm."""
    fn = ALGORITHMS[name]
    problem = _make_problem()
    fn(problem)  # warm caches / JIT-free but touches lazy structures
    instrumented = _min_runtime(fn, problem)
    with use_registry(NullMetricsRegistry()):
        fn(problem)
        baseline = _min_runtime(fn, problem)
    return instrumented, baseline, instrumented / baseline


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_instrumentation_overhead(name):
    instrumented, baseline, ratio = measure_overhead(name)
    print(
        f"\n{name}: instrumented {instrumented * 1000:.2f} ms, "
        f"baseline {baseline * 1000:.2f} ms, ratio {ratio:.3f} "
        f"(tolerance {TOLERANCE:.2f})"
    )
    assert ratio <= TOLERANCE, (
        f"{name} instrumentation overhead {ratio:.3f}x exceeds "
        f"{TOLERANCE:.2f}x — a hot path is doing per-event telemetry work"
    )


def test_results_identical_under_null_registry():
    """The baseline leg measures the same computation, not a variant."""
    problem = _make_problem()
    expected = greedy(problem).server_of
    with use_registry(NullMetricsRegistry()):
        nulled = greedy(problem).server_of
    assert (expected == nulled).all()


def main() -> int:
    from repro.experiments.persistence import BenchTable, save_result
    from repro.experiments.reporting import format_table

    rows = []
    failures = 0
    for name in sorted(ALGORITHMS):
        instrumented, baseline, ratio = measure_overhead(name)
        ok = ratio <= TOLERANCE
        failures += 0 if ok else 1
        rows.append(
            (
                name,
                round(instrumented * 1000, 3),
                round(baseline * 1000, 3),
                round(ratio, 4),
                "ok" if ok else "FAIL",
            )
        )
    columns = (
        "algorithm", "instrumented_ms", "baseline_ms", "ratio", "status"
    )
    print(format_table(columns, rows))
    out = os.environ.get("REPRO_BENCH_OBS_OUT")
    if out:
        save_result(
            out,
            BenchTable(
                name="bench_obs",
                columns=columns,
                rows=tuple(tuple(row) for row in rows),
                meta={
                    "n_nodes": N_NODES,
                    "n_servers": N_SERVERS,
                    "repeats": N_REPEATS,
                    "tolerance": TOLERANCE,
                },
            ),
        )
        print(f"saved measurements to {out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
