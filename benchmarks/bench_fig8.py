"""Fig. 8 — CDF of normalized interactivity over random placements.

The paper's observation: over 1000 runs with 80 random servers,
Nearest-Server exceeds 2x the lower bound in a substantial fraction of
runs (and 3x in some), while the other three algorithms hardly ever
exceed 2x.
"""

import pytest

from repro.experiments import fig8, render_fig8


def test_fig8_cdf(benchmark, bench_profile, bench_matrix):
    series = benchmark.pedantic(
        fig8,
        args=(bench_profile,),
        kwargs={"matrix": bench_matrix},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig8(series))

    nsa_tail = series.fraction_above("nearest-server", 2.0)
    ga_tail = series.fraction_above("greedy", 2.0)
    dga_tail = series.fraction_above("distributed-greedy", 2.0)
    # NSA's tail dominates; the greedy algorithms essentially never
    # exceed 2x.
    assert nsa_tail > max(ga_tail, dga_tail)
    assert ga_tail <= 0.05
    assert dga_tail <= 0.05
    # CDFs are proper distributions.
    for name in series.samples:
        x, f = series.cdf(name)
        assert f[-1] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(x, x[1:]))
